//! Point-in-time telemetry exports: a [`TelemetrySnapshot`] captures the
//! counter plane, the latency histograms, and the top-K tracker without
//! stopping the world, serializes losslessly as JSON (buckets included, so
//! consumers re-derive any quantile), renders as Prometheus text
//! exposition format, and diffs against an earlier snapshot to yield
//! interval metrics (`starqo-obs live --since`).

use crate::hist::{Histogram, BUCKETS};
use crate::json::JsonObj;
use crate::read::{parse_json, JsonValue};
use crate::telemetry::heal::HealRecord;
use crate::telemetry::phases::PhaseReading;
use crate::telemetry::qerror::QErrorSketch;
use crate::telemetry::topk::HotQuery;

/// A consistent-enough copy of the whole telemetry plane: counters in
/// [`super::Metric::ALL`] order, one histogram per latency path, and the
/// hot-fingerprint top-K. "Consistent enough": each field is read
/// atomically but the plane keeps serving while the snapshot is taken, so
/// cross-field invariants may lag by in-flight requests.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TelemetrySnapshot {
    /// Nanos since the telemetry plane was created (interval rates divide
    /// counter deltas by the delta of this).
    pub uptime_nanos: u64,
    /// `(name, value)` in stable catalog order.
    pub counters: Vec<(String, u64)>,
    /// `(path, histogram)`: optimize, cache_hit, execute, end_to_end.
    pub latency: Vec<(String, Histogram)>,
    /// Hottest fingerprints by request count, descending.
    pub topk: Vec<HotQuery>,
    /// The feedback plane's per-fingerprint plan-quality sketches, worst
    /// geomean Q-error first (empty when feedback is off or nothing has
    /// executed).
    pub qerror: Vec<QErrorSketch>,
    /// Cold-path phase attribution: `(phase, nanos, count)` in
    /// [`super::PhaseKind::ALL`] order (empty in pre-v3 documents).
    pub phases: Vec<PhaseReading>,
    /// Span trees currently resident in the span store (0 = spans off or
    /// pre-v3 document).
    pub span_resident: u64,
    /// Span-store retention capacity (0 = spans off).
    pub span_capacity: u64,
    /// Retained trees recycled to make room, cumulatively.
    pub span_evicted: u64,
    /// The serving layer's per-fingerprint heal records (suspect-triggered
    /// re-optimization state), fingerprint ascending. Empty when healing
    /// is off or the snapshot came from a bare telemetry plane (the
    /// service stitches these in; absent in pre-v4 documents).
    pub heal: Vec<HealRecord>,
}

impl TelemetrySnapshot {
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| *v)
    }

    pub fn hist(&self, path: &str) -> Option<&Histogram> {
        self.latency.iter().find(|(k, _)| k == path).map(|(_, v)| v)
    }

    /// One fingerprint's plan-quality sketch, if resident.
    pub fn qerror_for(&self, fp: u64) -> Option<&QErrorSketch> {
        self.qerror.iter().find(|e| e.fp == fp)
    }

    /// The suspect registry view: flagged sketches, in snapshot order.
    pub fn suspects(&self) -> Vec<&QErrorSketch> {
        self.qerror.iter().filter(|e| e.suspect).collect()
    }

    /// One fingerprint's heal record, if the serving layer attempted any
    /// healing for it.
    pub fn heal_for(&self, fp: u64) -> Option<&HealRecord> {
        self.heal.iter().find(|h| h.fp == fp)
    }

    /// Warm serves over all serves that produced a plan.
    pub fn hit_ratio(&self) -> f64 {
        let hits = self.counter("serve_cache_hit").unwrap_or(0)
            + self.counter("serve_cache_coalesced").unwrap_or(0);
        let served = hits + self.counter("serve_cache_miss").unwrap_or(0);
        if served == 0 {
            0.0
        } else {
            hits as f64 / served as f64
        }
    }

    /// Requests per second over this snapshot's window (lifetime for a
    /// point-in-time snapshot, the interval for a delta).
    pub fn requests_per_sec(&self) -> f64 {
        let reqs = self.counter("serve_requests").unwrap_or(0);
        let secs = self.uptime_nanos as f64 / 1e9;
        if secs <= 0.0 {
            0.0
        } else {
            reqs as f64 / secs
        }
    }

    /// Serialize losslessly (histograms carry their buckets).
    pub fn to_json(&self) -> String {
        let mut counters = JsonObj::new();
        for (k, v) in &self.counters {
            counters = counters.u64(k, *v);
        }
        let mut latency = JsonObj::new();
        for (k, h) in &self.latency {
            latency = latency.raw(k, &h.to_json_full());
        }
        let topk: Vec<String> = self
            .topk
            .iter()
            .map(|e| {
                JsonObj::new()
                    .u64("fp", e.fp)
                    .u64("count", e.count)
                    .u64("err", e.err)
                    .u64("nanos", e.nanos)
                    .u64("last_epoch", e.last_epoch)
                    .finish()
            })
            .collect();
        let qerror: Vec<String> = self
            .qerror
            .iter()
            .map(|e| {
                JsonObj::new()
                    .u64("fp", e.fp)
                    .u64("runs", e.runs)
                    .u64("q_runs", e.q_runs)
                    .u64("qlog_sum_micro", e.qlog_sum_micro)
                    .u64("qlog_max_micro", e.qlog_max_micro)
                    .u64("est_rows", e.est_rows)
                    .u64("actual_min", e.actual_min)
                    .u64("actual_max", e.actual_max)
                    .raw("nanos", &e.nanos.to_json_full())
                    .u64("last_epoch", e.last_epoch)
                    .bool("suspect", e.suspect)
                    .finish()
            })
            .collect();
        let mut phases = JsonObj::new();
        for (name, nanos, count) in &self.phases {
            phases = phases.raw(
                name,
                &JsonObj::new()
                    .u64("nanos", *nanos)
                    .u64("count", *count)
                    .finish(),
            );
        }
        let span_store = JsonObj::new()
            .u64("resident", self.span_resident)
            .u64("capacity", self.span_capacity)
            .u64("evicted", self.span_evicted);
        let heal: Vec<String> = self.heal.iter().map(HealRecord::to_json).collect();
        JsonObj::new()
            .u64("version", 4)
            .u64("uptime_nanos", self.uptime_nanos)
            .raw("counters", &counters.finish())
            .raw("latency", &latency.finish())
            .raw("topk", &format!("[{}]", topk.join(",")))
            .raw("qerror", &format!("[{}]", qerror.join(",")))
            .raw("phases", &phases.finish())
            .raw("span_store", &span_store.finish())
            .raw("heal", &format!("[{}]", heal.join(",")))
            .finish()
    }

    /// Parse the [`Self::to_json`] form back.
    pub fn from_json(text: &str) -> Result<TelemetrySnapshot, String> {
        let v = parse_json(text).map_err(|e| format!("snapshot JSON: {e}"))?;
        let uptime_nanos = v
            .get("uptime_nanos")
            .and_then(JsonValue::as_u64)
            .ok_or("snapshot missing uptime_nanos")?;
        let counters = v
            .get("counters")
            .and_then(JsonValue::fields)
            .ok_or("snapshot missing counters")?
            .iter()
            .map(|(k, c)| {
                c.as_u64()
                    .map(|n| (k.clone(), n))
                    .ok_or_else(|| format!("counter {k} is not a u64"))
            })
            .collect::<Result<Vec<_>, String>>()?;
        let latency = v
            .get("latency")
            .and_then(JsonValue::fields)
            .ok_or("snapshot missing latency")?
            .iter()
            .map(|(k, h)| {
                Histogram::from_json_value(h)
                    .map(|parsed| (k.clone(), parsed))
                    .ok_or_else(|| format!("latency {k} is not a full histogram"))
            })
            .collect::<Result<Vec<_>, String>>()?;
        let topk = match v.get("topk") {
            Some(JsonValue::Arr(items)) => items
                .iter()
                .map(|e| {
                    let f = |k: &str| e.get(k).and_then(JsonValue::as_u64);
                    Some(HotQuery {
                        fp: f("fp")?,
                        count: f("count")?,
                        err: f("err")?,
                        nanos: f("nanos")?,
                        last_epoch: f("last_epoch")?,
                    })
                })
                .collect::<Option<Vec<_>>>()
                .ok_or("malformed topk entry")?,
            _ => return Err("snapshot missing topk".to_string()),
        };
        // Version-1 documents predate the feedback plane: absent qerror
        // parses as empty rather than failing.
        let qerror = match v.get("qerror") {
            Some(JsonValue::Arr(items)) => items
                .iter()
                .map(|e| {
                    let f = |k: &str| e.get(k).and_then(JsonValue::as_u64);
                    Some(QErrorSketch {
                        fp: f("fp")?,
                        runs: f("runs")?,
                        // Pre-v4 documents predate the Q window: the whole
                        // lifetime was the window.
                        q_runs: f("q_runs").or_else(|| f("runs"))?,
                        qlog_sum_micro: f("qlog_sum_micro")?,
                        qlog_max_micro: f("qlog_max_micro")?,
                        est_rows: f("est_rows")?,
                        actual_min: f("actual_min")?,
                        actual_max: f("actual_max")?,
                        nanos: e.get("nanos").and_then(Histogram::from_json_value)?,
                        last_epoch: f("last_epoch")?,
                        suspect: e.get("suspect").and_then(JsonValue::as_bool)?,
                    })
                })
                .collect::<Option<Vec<_>>>()
                .ok_or("malformed qerror entry")?,
            None => Vec::new(),
            _ => return Err("snapshot qerror is not an array".to_string()),
        };
        // Version-2 documents predate the phase plane and the span store:
        // both parse as empty/zero rather than failing.
        let phases = match v.get("phases") {
            Some(obj) => obj
                .fields()
                .ok_or("snapshot phases is not an object")?
                .iter()
                .map(|(k, p)| {
                    let f = |key: &str| p.get(key).and_then(JsonValue::as_u64);
                    Some((k.clone(), f("nanos")?, f("count")?))
                })
                .collect::<Option<Vec<_>>>()
                .ok_or("malformed phase entry")?,
            None => Vec::new(),
        };
        let span = |k: &str| {
            v.get("span_store")
                .and_then(|s| s.get(k))
                .and_then(JsonValue::as_u64)
                .unwrap_or(0)
        };
        // Version-3 documents predate the heal plane: absent parses as
        // empty rather than failing.
        let heal = match v.get("heal") {
            Some(JsonValue::Arr(items)) => items
                .iter()
                .map(HealRecord::from_json_value)
                .collect::<Option<Vec<_>>>()
                .ok_or("malformed heal entry")?,
            None => Vec::new(),
            _ => return Err("snapshot heal is not an array".to_string()),
        };
        Ok(TelemetrySnapshot {
            uptime_nanos,
            counters,
            latency,
            topk,
            qerror,
            phases,
            span_resident: span("resident"),
            span_capacity: span("capacity"),
            span_evicted: span("evicted"),
            heal,
        })
    }

    /// Prometheus text exposition format (0.0.4): counters as `_total`
    /// counters, latency paths as summaries (quantiles + sum + count), the
    /// top-K as labeled gauges. Values are nanoseconds where the name says
    /// so — unit conversion belongs to the scrape config, not the emitter.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        out.push_str("# TYPE starqo_uptime_nanos gauge\n");
        out.push_str(&format!("starqo_uptime_nanos {}\n", self.uptime_nanos));
        for (k, v) in &self.counters {
            out.push_str(&format!("# TYPE starqo_{k}_total counter\n"));
            out.push_str(&format!("starqo_{k}_total {v}\n"));
        }
        out.push_str("# TYPE starqo_latency_nanos summary\n");
        for (path, h) in &self.latency {
            for (q, val) in [
                ("0.5", h.p50()),
                ("0.9", h.p90()),
                ("0.99", h.p99()),
                ("0.999", h.p999()),
            ] {
                out.push_str(&format!(
                    "starqo_latency_nanos{{path=\"{path}\",quantile=\"{q}\"}} {}\n",
                    val.unwrap_or(0)
                ));
            }
            out.push_str(&format!(
                "starqo_latency_nanos_sum{{path=\"{path}\"}} {}\n",
                u64::try_from(h.sum()).unwrap_or(u64::MAX)
            ));
            out.push_str(&format!(
                "starqo_latency_nanos_count{{path=\"{path}\"}} {}\n",
                h.count()
            ));
        }
        // The same data as a standard Prometheus histogram: cumulative
        // `le` buckets (log₂ bounds) ending in +Inf, plus _sum/_count.
        out.push_str("# TYPE starqo_latency_hist_nanos histogram\n");
        for (path, h) in &self.latency {
            let counts = h.bucket_counts();
            let mut cumulative = 0u64;
            for (b, &n) in counts.iter().enumerate() {
                if n == 0 {
                    continue;
                }
                cumulative += n;
                out.push_str(&format!(
                    "starqo_latency_hist_nanos_bucket{{path=\"{path}\",le=\"{}\"}} {cumulative}\n",
                    Histogram::bucket_bounds(b).1
                ));
            }
            out.push_str(&format!(
                "starqo_latency_hist_nanos_bucket{{path=\"{path}\",le=\"+Inf\"}} {}\n",
                h.count()
            ));
            out.push_str(&format!(
                "starqo_latency_hist_nanos_sum{{path=\"{path}\"}} {}\n",
                u64::try_from(h.sum()).unwrap_or(u64::MAX)
            ));
            out.push_str(&format!(
                "starqo_latency_hist_nanos_count{{path=\"{path}\"}} {}\n",
                h.count()
            ));
        }
        if !self.phases.is_empty() {
            out.push_str("# TYPE starqo_phase_nanos counter\n");
            out.push_str("# TYPE starqo_phase_count counter\n");
            for (name, nanos, count) in &self.phases {
                out.push_str(&format!("starqo_phase_nanos{{phase=\"{name}\"}} {nanos}\n"));
                out.push_str(&format!("starqo_phase_count{{phase=\"{name}\"}} {count}\n"));
            }
        }
        if self.span_capacity > 0 {
            out.push_str("# TYPE starqo_span_store_resident gauge\n");
            out.push_str(&format!(
                "starqo_span_store_resident {}\n",
                self.span_resident
            ));
            out.push_str("# TYPE starqo_span_store_capacity gauge\n");
            out.push_str(&format!(
                "starqo_span_store_capacity {}\n",
                self.span_capacity
            ));
            out.push_str("# TYPE starqo_span_store_evicted_total counter\n");
            out.push_str(&format!(
                "starqo_span_store_evicted_total {}\n",
                self.span_evicted
            ));
        }
        out.push_str("# TYPE starqo_hot_query_requests gauge\n");
        out.push_str("# TYPE starqo_hot_query_nanos gauge\n");
        for (rank, e) in self.topk.iter().enumerate() {
            let labels = format!("fp=\"{:#018x}\",rank=\"{}\"", e.fp, rank + 1);
            out.push_str(&format!(
                "starqo_hot_query_requests{{{labels}}} {}\n",
                e.count
            ));
            out.push_str(&format!("starqo_hot_query_nanos{{{labels}}} {}\n", e.nanos));
        }
        if !self.qerror.is_empty() {
            out.push_str("# TYPE starqo_plan_qerror_geomean gauge\n");
            out.push_str("# TYPE starqo_plan_qerror_max gauge\n");
            out.push_str("# TYPE starqo_plan_qerror_runs gauge\n");
            out.push_str("# TYPE starqo_plan_suspect gauge\n");
            for e in &self.qerror {
                let labels = format!("fp=\"{:#018x}\"", e.fp);
                out.push_str(&format!(
                    "starqo_plan_qerror_geomean{{{labels}}} {}\n",
                    crate::json::num(e.geomean_q().unwrap_or(1.0))
                ));
                out.push_str(&format!(
                    "starqo_plan_qerror_max{{{labels}}} {}\n",
                    crate::json::num(e.max_q().unwrap_or(1.0))
                ));
                out.push_str(&format!("starqo_plan_qerror_runs{{{labels}}} {}\n", e.runs));
                out.push_str(&format!(
                    "starqo_plan_suspect{{{labels}}} {}\n",
                    u64::from(e.suspect)
                ));
            }
        }
        if !self.heal.is_empty() {
            out.push_str("# TYPE starqo_heal_attempts gauge\n");
            out.push_str("# TYPE starqo_heal_swaps gauge\n");
            out.push_str("# TYPE starqo_heal_pins gauge\n");
            out.push_str("# TYPE starqo_heal_retry_capped gauge\n");
            for h in &self.heal {
                let labels = format!("fp=\"{:#018x}\"", h.fp);
                out.push_str(&format!(
                    "starqo_heal_attempts{{{labels}}} {}\n",
                    h.attempts
                ));
                out.push_str(&format!("starqo_heal_swaps{{{labels}}} {}\n", h.swaps));
                out.push_str(&format!("starqo_heal_pins{{{labels}}} {}\n", h.pins));
                out.push_str(&format!(
                    "starqo_heal_retry_capped{{{labels}}} {}\n",
                    u64::from(h.retry_capped)
                ));
            }
        }
        out
    }

    /// The interval view: what happened between `prev` and `self`
    /// (counters subtract, histogram buckets subtract, top-K counts
    /// subtract for fingerprints present in both). `self` must be the
    /// later snapshot of the same plane; values saturate at zero if not.
    /// Interval histogram min/max are approximated from the surviving
    /// bucket bounds (exact min/max are not recoverable from two
    /// endpoints).
    pub fn delta_since(&self, prev: &TelemetrySnapshot) -> TelemetrySnapshot {
        let counters = self
            .counters
            .iter()
            .map(|(k, v)| (k.clone(), v.saturating_sub(prev.counter(k).unwrap_or(0))))
            .collect();
        let latency = self
            .latency
            .iter()
            .map(|(k, h)| {
                let empty = Histogram::default();
                let base = prev.hist(k).unwrap_or(&empty);
                (k.clone(), hist_delta(h, base))
            })
            .collect();
        let topk: Vec<HotQuery> = self
            .topk
            .iter()
            .filter_map(|e| {
                let (pc, pn) = prev
                    .topk
                    .iter()
                    .find(|p| p.fp == e.fp)
                    .map(|p| (p.count, p.nanos))
                    .unwrap_or((0, 0));
                (e.count > pc).then(|| HotQuery {
                    fp: e.fp,
                    count: e.count - pc,
                    err: e.err,
                    nanos: e.nanos - pn.min(e.nanos),
                    last_epoch: e.last_epoch,
                })
            })
            .collect();
        let qerror: Vec<QErrorSketch> = self
            .qerror
            .iter()
            .filter_map(|e| {
                let base = prev.qerror_for(e.fp);
                let (pr, ps) = base.map(|p| (p.runs, p.qlog_sum_micro)).unwrap_or((0, 0));
                (e.runs > pr).then(|| QErrorSketch {
                    fp: e.fp,
                    runs: e.runs - pr,
                    q_runs: e.q_runs.saturating_sub(base.map(|p| p.q_runs).unwrap_or(0)),
                    qlog_sum_micro: e.qlog_sum_micro.saturating_sub(ps),
                    // Max/min folds and the epoch-keyed estimate are not
                    // interval-decomposable; the later snapshot's values
                    // are the correct bounds for the window.
                    qlog_max_micro: e.qlog_max_micro,
                    est_rows: e.est_rows,
                    actual_min: e.actual_min,
                    actual_max: e.actual_max,
                    nanos: base
                        .map(|p| hist_delta(&e.nanos, &p.nanos))
                        .unwrap_or_else(|| e.nanos.clone()),
                    last_epoch: e.last_epoch,
                    suspect: e.suspect,
                })
            })
            .collect();
        // Phase nanos/counts are monotonic: subtract pairwise (a phase
        // absent earlier — e.g. a v1/v2 baseline — deltas from zero).
        let phases = self
            .phases
            .iter()
            .map(|(name, nanos, count)| {
                let (pn, pc) = prev
                    .phases
                    .iter()
                    .find(|(k, _, _)| k == name)
                    .map(|(_, n, c)| (*n, *c))
                    .unwrap_or((0, 0));
                (
                    name.clone(),
                    nanos.saturating_sub(pn),
                    count.saturating_sub(pc),
                )
            })
            .collect();
        TelemetrySnapshot {
            uptime_nanos: self.uptime_nanos.saturating_sub(prev.uptime_nanos),
            counters,
            latency,
            topk,
            qerror,
            phases,
            // Occupancy is a gauge (the later absolute is the interval's
            // truth); evictions are monotonic.
            span_resident: self.span_resident,
            span_capacity: self.span_capacity,
            span_evicted: self.span_evicted.saturating_sub(prev.span_evicted),
            // Heal tallies subtract; a fingerprint absent earlier deltas
            // from zero.
            heal: self
                .heal
                .iter()
                .map(|h| match prev.heal_for(h.fp) {
                    Some(p) => h.delta_since(p),
                    None => h.clone(),
                })
                .collect(),
        }
    }
}

/// Bucket-wise histogram subtraction. Min/max of the interval are
/// approximated by the bounds of the extremal non-empty delta buckets,
/// tightened by the later snapshot's observed range.
fn hist_delta(cur: &Histogram, prev: &Histogram) -> Histogram {
    let (cc, pc) = (cur.bucket_counts(), prev.bucket_counts());
    let mut counts = [0u64; BUCKETS];
    for b in 0..BUCKETS {
        counts[b] = cc[b].saturating_sub(pc[b]);
    }
    let lo_bucket = counts.iter().position(|&c| c > 0);
    let hi_bucket = counts.iter().rposition(|&c| c > 0);
    let (Some(lo), Some(hi)) = (lo_bucket, hi_bucket) else {
        return Histogram::default();
    };
    let min = Histogram::bucket_bounds(lo).0.max(cur.min().unwrap_or(0));
    let max = Histogram::bucket_bounds(hi)
        .1
        .min(cur.max().unwrap_or(u64::MAX));
    Histogram::from_raw(counts, cur.sum().saturating_sub(prev.sum()), min, max)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_snapshot() -> TelemetrySnapshot {
        let mut opt = Histogram::new();
        let mut e2e = Histogram::new();
        for v in [1_000u64, 2_000, 4_000, 150_000] {
            opt.record(v);
        }
        for v in [500u64, 600, 700, 5_000, 160_000] {
            e2e.record(v);
        }
        TelemetrySnapshot {
            uptime_nanos: 2_000_000_000,
            counters: vec![
                ("serve_requests".into(), 100),
                ("serve_cache_hit".into(), 90),
                ("serve_cache_coalesced".into(), 5),
                ("serve_cache_miss".into(), 5),
            ],
            latency: vec![("optimize".into(), opt), ("end_to_end".into(), e2e)],
            phases: vec![
                ("prepare".into(), 40_000, 100),
                ("enumerate".into(), 900_000, 5),
                ("execute".into(), 700_000, 95),
            ],
            span_resident: 2,
            span_capacity: 64,
            span_evicted: 1,
            topk: vec![
                HotQuery {
                    fp: 0xDEAD_BEEF,
                    count: 60,
                    err: 0,
                    nanos: 90_000,
                    last_epoch: 2,
                },
                HotQuery {
                    fp: 7,
                    count: 40,
                    err: 3,
                    nanos: 70_000,
                    last_epoch: 1,
                },
            ],
            qerror: vec![sample_sketch()],
            heal: vec![HealRecord {
                fp: 0xDEAD_BEEF,
                epoch: 2,
                attempts: 2,
                swaps: 1,
                pins: 1,
                backoff_hits: 3,
                retry_capped: false,
                last_reason: "swapped".into(),
                backoff_until_nanos: 0,
            }],
        }
    }

    fn sample_sketch() -> QErrorSketch {
        let plane = crate::telemetry::qerror::FeedbackPlane::new(
            1,
            4,
            crate::telemetry::qerror::SuspectConfig {
                min_runs: 2,
                ..Default::default()
            },
        );
        for (est, actual, nanos) in [
            (100u64, 400u64, 3_000u64),
            (100, 800, 4_000),
            (100, 400, 3_500),
        ] {
            plane.record(0xDEAD_BEEF, est, actual, nanos, 2);
        }
        plane.snapshot().remove(0)
    }

    #[test]
    fn json_roundtrips_exactly() {
        let snap = sample_snapshot();
        let parsed = TelemetrySnapshot::from_json(&snap.to_json()).expect("parse");
        assert_eq!(parsed, snap);
    }

    #[test]
    fn derived_rates_are_hand_computable() {
        let snap = sample_snapshot();
        assert!((snap.hit_ratio() - 0.95).abs() < 1e-9);
        assert!((snap.requests_per_sec() - 50.0).abs() < 1e-9);
        assert_eq!(snap.counter("serve_requests"), Some(100));
        assert_eq!(snap.counter("absent"), None);
    }

    #[test]
    fn prometheus_exposition_contains_every_series() {
        let text = sample_snapshot().to_prometheus();
        assert!(text.contains("starqo_serve_requests_total 100"));
        assert!(text.contains("starqo_latency_nanos{path=\"optimize\",quantile=\"0.99\"}"));
        assert!(text.contains("starqo_latency_nanos_count{path=\"end_to_end\"} 5"));
        assert!(text.contains("starqo_latency_hist_nanos_bucket{path=\"optimize\",le=\"+Inf\"} 4"));
        assert!(text.contains("starqo_latency_hist_nanos_count{path=\"optimize\"} 4"));
        assert!(text.contains("starqo_hot_query_requests{fp=\"0x00000000deadbeef\",rank=\"1\"} 60"));
        assert!(text.contains("starqo_plan_qerror_runs{fp=\"0x00000000deadbeef\"} 3"));
        assert!(text.contains("starqo_plan_suspect{fp=\"0x00000000deadbeef\"} 1"));
        assert!(text.contains("starqo_heal_swaps{fp=\"0x00000000deadbeef\"} 1"));
        assert!(text.contains("starqo_heal_retry_capped{fp=\"0x00000000deadbeef\"} 0"));
        assert!(text.contains("starqo_phase_nanos{phase=\"enumerate\"} 900000"));
        assert!(text.contains("starqo_phase_count{phase=\"execute\"} 95"));
        assert!(text.contains("starqo_span_store_resident 2"));
        assert!(text.contains("starqo_span_store_evicted_total 1"));
        // Every non-comment line is `name{labels} value` with a numeric value.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let (_, value) = line.rsplit_once(' ').expect("name value");
            value
                .parse::<f64>()
                .unwrap_or_else(|_| panic!("bad value in {line}"));
        }
    }

    #[test]
    fn delta_subtracts_counters_histograms_and_topk() {
        let later = sample_snapshot();
        let mut earlier = sample_snapshot();
        earlier.uptime_nanos = 1_000_000_000;
        earlier.counters = vec![
            ("serve_requests".into(), 40),
            ("serve_cache_hit".into(), 36),
            ("serve_cache_coalesced".into(), 2),
            ("serve_cache_miss".into(), 2),
        ];
        // Earlier optimize histogram: the first two observations.
        let mut opt = Histogram::new();
        opt.record(1_000);
        opt.record(2_000);
        earlier.latency = vec![
            ("optimize".into(), opt),
            ("end_to_end".into(), Histogram::new()),
        ];
        earlier.topk = vec![HotQuery {
            fp: 0xDEAD_BEEF,
            count: 25,
            err: 0,
            nanos: 40_000,
            last_epoch: 1,
        }];

        let d = later.delta_since(&earlier);
        assert_eq!(d.uptime_nanos, 1_000_000_000);
        assert_eq!(d.counter("serve_requests"), Some(60));
        assert!((d.requests_per_sec() - 60.0).abs() < 1e-9);
        let opt = d.hist("optimize").expect("optimize");
        assert_eq!(opt.count(), 2);
        assert_eq!(opt.sum(), 4_000 + 150_000);
        // The interval's two observations: 4_000 (bucket 12) and 150_000.
        assert_eq!(opt.quantile(0.0), Some(Histogram::bucket_bounds(12).1));
        let hot = &d.topk[0];
        assert_eq!((hot.fp, hot.count, hot.nanos), (0xDEAD_BEEF, 35, 50_000));
        // fp 7 absent earlier: full count survives the delta.
        assert_eq!(d.topk[1].count, 40);
    }

    #[test]
    fn version1_documents_parse_with_empty_qerror() {
        // A pre-feedback-plane export: no qerror key at all.
        let text = r#"{"version":1,"uptime_nanos":5,"counters":{"serve_requests":2},"latency":{},"topk":[]}"#;
        let parsed = TelemetrySnapshot::from_json(text).expect("v1 parses");
        assert!(parsed.qerror.is_empty());
        assert_eq!(parsed.counter("serve_requests"), Some(2));
        // Pre-v3 fields default to empty/zero too.
        assert!(parsed.phases.is_empty());
        assert_eq!(parsed.span_capacity, 0);
    }

    #[test]
    fn version2_documents_parse_with_empty_phases() {
        // A v2 export (feedback plane, no phase/span tiers): strip the
        // v3 keys from a current document and it must still parse.
        let full = sample_snapshot().to_json();
        let phases_at = full.find(",\"phases\"").expect("phases key");
        let v2 = format!("{}}}", &full[..phases_at]);
        let parsed = TelemetrySnapshot::from_json(&v2).expect("v2 parses");
        assert!(parsed.phases.is_empty());
        assert_eq!(
            (
                parsed.span_resident,
                parsed.span_capacity,
                parsed.span_evicted
            ),
            (0, 0, 0)
        );
        assert_eq!(parsed.qerror, sample_snapshot().qerror);
    }

    #[test]
    fn delta_subtracts_phases_and_keeps_span_gauges() {
        let later = sample_snapshot();
        let mut earlier = sample_snapshot();
        earlier.phases = vec![("prepare".into(), 10_000, 30)];
        earlier.span_evicted = 0;
        let d = later.delta_since(&earlier);
        assert_eq!(d.phases[0], ("prepare".into(), 30_000, 70));
        // Phases absent from the earlier snapshot delta from zero.
        assert_eq!(d.phases[1], ("enumerate".into(), 900_000, 5));
        assert_eq!(d.span_evicted, 1);
        assert_eq!((d.span_resident, d.span_capacity), (2, 64));
    }

    #[test]
    fn version3_documents_parse_with_empty_heal() {
        // A v3 export (no heal plane): strip the heal key from a current
        // document and it must still parse, with q_runs defaulting to
        // runs in pre-window sketches.
        let full = sample_snapshot().to_json();
        let heal_at = full.find(",\"heal\"").expect("heal key");
        let v3 = format!("{}}}", &full[..heal_at]);
        let v3 = v3.replace(",\"q_runs\":3", "");
        let parsed = TelemetrySnapshot::from_json(&v3).expect("v3 parses");
        assert!(parsed.heal.is_empty());
        assert_eq!(parsed.qerror[0].q_runs, parsed.qerror[0].runs);
    }

    #[test]
    fn delta_subtracts_heal_tallies() {
        let later = sample_snapshot();
        let mut earlier = sample_snapshot();
        earlier.heal[0].swaps = 0;
        earlier.heal[0].pins = 0;
        earlier.heal[0].backoff_hits = 1;
        let d = later.delta_since(&earlier);
        let h = d.heal_for(0xDEAD_BEEF).expect("heal delta");
        assert_eq!((h.swaps, h.pins, h.backoff_hits), (1, 1, 2));
        // Absent earlier: the full record survives the delta.
        earlier.heal.clear();
        let d = later.delta_since(&earlier);
        assert_eq!(d.heal, later.heal);
    }

    #[test]
    fn delta_drops_unchanged_sketches_and_subtracts_run_counts() {
        let later = sample_snapshot();
        let mut earlier = sample_snapshot();
        // Earlier saw only the first run of the sketch's three.
        earlier.qerror[0].runs = 1;
        earlier.qerror[0].qlog_sum_micro = 2_000_000;
        let d = later.delta_since(&earlier);
        assert_eq!(d.qerror.len(), 1);
        assert_eq!(d.qerror[0].runs, 2);
        assert_eq!(
            d.qerror[0].qlog_sum_micro,
            later.qerror[0].qlog_sum_micro - 2_000_000
        );
        // Identical endpoints: the sketch vanishes from the interval.
        let none = later.delta_since(&later);
        assert!(none.qerror.is_empty());
    }

    #[test]
    fn from_json_rejects_malformed_documents() {
        assert!(TelemetrySnapshot::from_json("not json").is_err());
        assert!(TelemetrySnapshot::from_json(r#"{"version":1}"#).is_err());
        assert!(TelemetrySnapshot::from_json(
            r#"{"version":1,"uptime_nanos":1,"counters":{"x":1},"latency":{},"topk":[{"fp":1}]}"#
        )
        .is_err());
    }
}

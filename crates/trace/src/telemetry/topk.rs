//! Per-fingerprint hot-query tracking in bounded memory: the space-saving
//! algorithm (Metwally et al.), sharded by fingerprint hash.
//!
//! Each shard owns at most `capacity` entries behind its own mutex; the
//! critical section is a linear scan of that tiny array (tens of entries),
//! so contention is negligible next to the work each request already does —
//! and memory stays fixed however many distinct fingerprints flow past.
//! When every distinct fingerprint fits (the common case for template-
//! driven workloads), counts and cumulative latencies are *exact*; under
//! overflow, space-saving guarantees any fingerprint with true count above
//! the evicted minimum is retained, and `err` bounds the overcount.

use std::sync::Mutex;

use crate::telemetry::sample::mix64;

/// One tracked fingerprint: exact or space-saving-approximate totals.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HotQuery {
    /// Canonical query fingerprint hash.
    pub fp: u64,
    /// Requests observed (overcounted by at most `err`).
    pub count: u64,
    /// Space-saving overcount bound: 0 while the entry never recycled.
    pub err: u64,
    /// Cumulative end-to-end latency nanos attributed to this entry.
    pub nanos: u64,
    /// Catalog epoch of the most recent request.
    pub last_epoch: u64,
}

/// The sharded tracker. `snapshot(k)` merges shards and returns the global
/// top-K by count; sharding by fingerprint hash means each fingerprint
/// lives in exactly one shard, so the merge never double-counts.
pub struct TopKTracker {
    shards: Box<[Mutex<Vec<HotQuery>>]>,
    mask: usize,
    capacity: usize,
}

impl std::fmt::Debug for TopKTracker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TopKTracker")
            .field("shards", &self.shards.len())
            .field("capacity", &self.capacity)
            .finish()
    }
}

impl TopKTracker {
    /// A tracker with `shards` shards (rounded up to a power of two) each
    /// holding at most `capacity` entries. Total memory: `shards ×
    /// capacity` entries, fixed.
    pub fn new(shards: usize, capacity: usize) -> TopKTracker {
        let n = shards.max(1).next_power_of_two();
        TopKTracker {
            shards: (0..n).map(|_| Mutex::new(Vec::new())).collect(),
            mask: n - 1,
            capacity: capacity.max(1),
        }
    }

    /// Record one request for `fp`.
    pub fn record(&self, fp: u64, nanos: u64, epoch: u64) {
        let shard = &self.shards[(mix64(fp) as usize) & self.mask];
        let mut entries = shard.lock().unwrap_or_else(|p| p.into_inner());
        if let Some(e) = entries.iter_mut().find(|e| e.fp == fp) {
            e.count += 1;
            e.nanos += nanos;
            e.last_epoch = e.last_epoch.max(epoch);
        } else if entries.len() < self.capacity {
            entries.push(HotQuery {
                fp,
                count: 1,
                err: 0,
                nanos,
                last_epoch: epoch,
            });
        } else if let Some(victim) = entries.iter_mut().min_by_key(|e| e.count) {
            // Space-saving recycle: the newcomer inherits the evicted
            // minimum's count as its overcount bound. Latency restarts —
            // the victim's nanos belong to the evicted fingerprint.
            *victim = HotQuery {
                fp,
                count: victim.count + 1,
                err: victim.count,
                nanos,
                last_epoch: epoch,
            };
        }
    }

    /// The global top `k` entries by count (ties broken by fingerprint for
    /// determinism), merged across shards.
    pub fn snapshot(&self, k: usize) -> Vec<HotQuery> {
        let mut all: Vec<HotQuery> = self
            .shards
            .iter()
            .flat_map(|s| s.lock().unwrap_or_else(|p| p.into_inner()).clone())
            .collect();
        all.sort_unstable_by(|a, b| b.count.cmp(&a.count).then(a.fp.cmp(&b.fp)));
        all.truncate(k);
        all
    }

    /// Tracked entries across all shards (≤ shards × capacity).
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(|p| p.into_inner()).len())
            .sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_counts_when_under_capacity() {
        let t = TopKTracker::new(4, 8);
        for (fp, n) in [(7u64, 5u64), (9, 3), (11, 1)] {
            for i in 0..n {
                t.record(fp, 100 + i, i);
            }
        }
        let snap = t.snapshot(10);
        assert_eq!(snap.len(), 3);
        assert_eq!((snap[0].fp, snap[0].count, snap[0].err), (7, 5, 0));
        assert_eq!(snap[0].nanos, 100 + 101 + 102 + 103 + 104);
        assert_eq!(snap[0].last_epoch, 4);
        assert_eq!((snap[1].fp, snap[1].count), (9, 3));
        assert_eq!((snap[2].fp, snap[2].count), (11, 1));
    }

    #[test]
    fn snapshot_truncates_to_k_deterministically() {
        let t = TopKTracker::new(1, 16);
        for fp in 0..10u64 {
            t.record(fp, 1, 0);
            if fp < 5 {
                t.record(fp, 1, 0);
            }
        }
        let snap = t.snapshot(5);
        assert_eq!(snap.len(), 5);
        // All five have count 2; ties break by ascending fingerprint.
        assert_eq!(
            snap.iter().map(|e| e.fp).collect::<Vec<_>>(),
            vec![0, 1, 2, 3, 4]
        );
    }

    #[test]
    fn memory_stays_bounded_and_heavy_hitter_survives() {
        let t = TopKTracker::new(1, 4);
        // One heavy hitter among a stream of one-off fingerprints.
        for i in 0..1_000u64 {
            t.record(42, 10, 0);
            t.record(1_000_000 + i, 10, 0);
        }
        assert!(t.len() <= 4, "capacity must bound memory");
        let snap = t.snapshot(4);
        let heavy = snap.iter().find(|e| e.fp == 42).expect("heavy hitter");
        assert_eq!(heavy.count, 1_000);
        assert_eq!(heavy.err, 0, "never evicted, so exact");
        // Recycled entries carry a non-zero overcount bound.
        assert!(snap.iter().any(|e| e.fp != 42 && e.err > 0));
        // Space-saving invariant: count never below the true count.
        for e in &snap {
            assert!(e.count >= 1);
            assert!(e.err < e.count);
        }
    }

    #[test]
    fn concurrent_records_stay_exact_under_capacity() {
        let t = std::sync::Arc::new(TopKTracker::new(8, 8));
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let t = t.clone();
                scope.spawn(move || {
                    for i in 0..1_000u64 {
                        t.record(i % 6, 2, 1);
                    }
                });
            }
        });
        let snap = t.snapshot(6);
        assert_eq!(snap.len(), 6);
        for e in &snap {
            // 8 threads × 1000 records over 6 fps: 166 or 167 each... but
            // exactly: each thread records fp (i % 6), i in 0..1000 →
            // fps 0..3 get 167, fps 4..5 get 166; ×8 threads.
            let per_thread = if e.fp < 4 { 167 } else { 166 };
            assert_eq!(e.count, per_thread * 8, "fp {}", e.fp);
            assert_eq!(e.nanos, e.count * 2);
            assert_eq!(e.err, 0);
        }
    }
}

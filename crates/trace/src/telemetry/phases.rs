//! Cold-path phase attribution: where request time goes, by stage, as
//! always-on striped counters (nanos + occurrence count per phase).
//!
//! The span layer answers "where did *this* request's time go"; this
//! plane answers the aggregate form — what fraction of all serve time is
//! cache lookup vs. STAR enumeration vs. execution — cheaply enough to
//! stay on in production. Writers pay one relaxed `fetch_add` pair per
//! phase per request; readers fold on demand into snapshots (JSON,
//! Prometheus `starqo_phase_nanos`/`starqo_phase_count` counters).

use std::sync::atomic::{AtomicU64, Ordering};

use crate::telemetry::counters::{stripe_count, thread_stripe};

/// The request stages the plane attributes time to. `Glue` nanos are a
/// subset of `Enumerate` (glue rules fire inside STAR expansion); the
/// other phases are disjoint slices of a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum PhaseKind {
    /// Parse + fingerprint canonicalization (`Service::prepare`).
    Prepare,
    /// Plan-cache probe on the serve path (resident hit or miss check).
    CacheLookup,
    /// Waiting on another thread's in-flight optimization (coalesced).
    FlightWait,
    /// STAR expansion / memo DP inside a cold optimization.
    Enumerate,
    /// Glue-rule invocations (nested inside enumerate).
    Glue,
    /// Rule compilation folded into a cold optimization.
    Compile,
    /// Plan execution.
    Execute,
    /// Suspect-triggered re-optimization (overlay build, re-plan,
    /// shadow verify, and probation — the whole heal pipeline).
    Reopt,
}

impl PhaseKind {
    pub const COUNT: usize = 8;

    pub const ALL: [PhaseKind; PhaseKind::COUNT] = [
        PhaseKind::Prepare,
        PhaseKind::CacheLookup,
        PhaseKind::FlightWait,
        PhaseKind::Enumerate,
        PhaseKind::Glue,
        PhaseKind::Compile,
        PhaseKind::Execute,
        PhaseKind::Reopt,
    ];

    /// Stable exported name (snapshot JSON keys, Prometheus `phase`
    /// label). Matches the optimizer's `MetricsRegistry` phase names
    /// where both exist.
    pub fn name(self) -> &'static str {
        match self {
            PhaseKind::Prepare => "prepare",
            PhaseKind::CacheLookup => "cache_lookup",
            PhaseKind::FlightWait => "flight_wait",
            PhaseKind::Enumerate => "enumerate",
            PhaseKind::Glue => "glue",
            PhaseKind::Compile => "compile",
            PhaseKind::Execute => "execute",
            PhaseKind::Reopt => "reopt",
        }
    }

    /// Parse an optimizer `MetricsRegistry` phase name into a kind.
    pub fn from_name(name: &str) -> Option<PhaseKind> {
        PhaseKind::ALL.iter().copied().find(|p| p.name() == name)
    }
}

/// One folded phase reading: `(name, nanos, count)`.
pub type PhaseReading = (String, u64, u64);

#[repr(align(128))]
struct PhaseStripe {
    nanos: [AtomicU64; PhaseKind::COUNT],
    counts: [AtomicU64; PhaseKind::COUNT],
}

impl PhaseStripe {
    fn new() -> PhaseStripe {
        PhaseStripe {
            nanos: std::array::from_fn(|_| AtomicU64::new(0)),
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// The striped phase-attribution plane.
pub struct PhasePlane {
    stripes: Box<[PhaseStripe]>,
    mask: usize,
}

impl std::fmt::Debug for PhasePlane {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PhasePlane")
            .field("stripes", &self.stripes.len())
            .finish()
    }
}

impl PhasePlane {
    /// A plane with `stripes` stripes (0 = one per available core).
    pub fn new(stripes: usize) -> PhasePlane {
        let n = stripe_count(stripes);
        PhasePlane {
            stripes: (0..n).map(|_| PhaseStripe::new()).collect(),
            mask: n - 1,
        }
    }

    /// Attribute `nanos` to one phase occurrence.
    #[inline]
    pub fn add(&self, phase: PhaseKind, nanos: u64) {
        let stripe = &self.stripes[thread_stripe() & self.mask];
        stripe.nanos[phase as usize].fetch_add(nanos, Ordering::Relaxed);
        stripe.counts[phase as usize].fetch_add(1, Ordering::Relaxed);
    }

    /// Fold one phase across stripes: `(nanos, count)`.
    pub fn get(&self, phase: PhaseKind) -> (u64, u64) {
        let mut nanos = 0u64;
        let mut count = 0u64;
        for s in self.stripes.iter() {
            nanos += s.nanos[phase as usize].load(Ordering::Relaxed);
            count += s.counts[phase as usize].load(Ordering::Relaxed);
        }
        (nanos, count)
    }

    /// Fold every phase, in [`PhaseKind::ALL`] order.
    pub fn fold(&self) -> Vec<PhaseReading> {
        PhaseKind::ALL
            .iter()
            .map(|p| {
                let (nanos, count) = self.get(*p);
                (p.name().to_string(), nanos, count)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_names_are_unique_and_ordered_like_all() {
        let names: Vec<&str> = PhaseKind::ALL.iter().map(|p| p.name()).collect();
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), PhaseKind::COUNT, "duplicate phase name");
        for (i, p) in PhaseKind::ALL.iter().enumerate() {
            assert_eq!(*p as usize, i, "ALL order must match discriminants");
        }
        assert_eq!(PhaseKind::from_name("glue"), Some(PhaseKind::Glue));
        assert_eq!(PhaseKind::from_name("parse"), None);
    }

    #[test]
    fn adds_fold_across_threads() {
        let plane = std::sync::Arc::new(PhasePlane::new(4));
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let plane = plane.clone();
                scope.spawn(move || {
                    for _ in 0..500 {
                        plane.add(PhaseKind::Enumerate, 10);
                        plane.add(PhaseKind::Execute, 3);
                    }
                });
            }
        });
        assert_eq!(plane.get(PhaseKind::Enumerate), (40_000, 4_000));
        assert_eq!(plane.get(PhaseKind::Execute), (12_000, 4_000));
        let fold = plane.fold();
        assert_eq!(fold[PhaseKind::Enumerate as usize].1, 40_000);
        assert_eq!(fold[PhaseKind::Prepare as usize], ("prepare".into(), 0, 0));
    }
}

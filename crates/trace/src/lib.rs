//! # starqo-trace
//!
//! Structured observability for the STAR optimizer and the plan executor:
//! typed [`TraceEvent`]s flowing into pluggable [`TraceSink`]s, named spans,
//! and a [`MetricsRegistry`] of counters plus per-phase timers.
//!
//! The crate is dependency-free by design (JSON serialization is
//! hand-rolled in [`json`]) and its hot path is free when tracing is off:
//! [`Tracer::emit`] takes a *closure* producing the event, and the closure
//! is never invoked — no strings formatted, no allocations — unless a sink
//! is attached and enabled. A global "events constructed" counter
//! ([`events_constructed`]) lets tests assert that guarantee.

// Library code surfaces failures as typed errors (or degrades), never by
// panicking; tests may unwrap freely (the gate is off under cfg(test)).
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod event;
pub mod hist;
pub mod json;
pub mod metrics;
pub mod read;
pub mod sink;
pub mod telemetry;

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

pub use event::{load_jsonl, read_events, CostBreakdownEv, NodeActuals, TraceEvent};
pub use hist::Histogram;
pub use metrics::{MetricsRegistry, MetricsSummary, Phase, PhaseTimer};
pub use read::{parse_json, JsonError, JsonValue};
pub use sink::{JsonLinesSink, MemorySink, NullSink, TraceSink};
pub use telemetry::{
    from_chrome_trace, qlog_micro, read_span_trees, to_chrome_trace, FeedbackPlane, HealRecord,
    HotQuery, LatencyPath, Metric, PhaseKind, PhasePlane, QErrorSketch, SnapshotRing, SpanContext,
    SpanGuard, SpanMode, SpanRecord, SpanStore, SpanTree, SuspectConfig, SuspectVerdict,
    TailConfig, TailSampler, Telemetry, TelemetryConfig, TelemetrySnapshot, TraceSampler,
};

/// Global count of trace events ever constructed in this process. Only
/// advanced when a tracer is enabled; tests use it to verify the
/// zero-overhead-when-off guarantee.
static EVENTS_CONSTRUCTED: AtomicU64 = AtomicU64::new(0);

/// Total trace events constructed so far in this process.
pub fn events_constructed() -> u64 {
    EVENTS_CONSTRUCTED.load(Ordering::Relaxed)
}

/// A cheap, cloneable handle that instrumented components hold.
///
/// `Tracer::off()` (also `Default`) carries no sink: `emit` is a branch on
/// an `Option` and nothing else. Cloning shares the underlying sink.
#[derive(Clone, Default)]
pub struct Tracer {
    inner: Option<Arc<dyn TraceSink>>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("enabled", &self.enabled())
            .finish()
    }
}

impl Tracer {
    /// The disabled tracer: every call collapses to a branch-not-taken.
    pub fn off() -> Self {
        Tracer { inner: None }
    }

    /// Wrap a sink. A sink reporting `enabled() == false` (e.g.
    /// [`NullSink`]) yields the off tracer — the event closures will never
    /// run.
    pub fn new(sink: impl TraceSink + 'static) -> Self {
        if sink.enabled() {
            Tracer {
                inner: Some(Arc::new(sink)),
            }
        } else {
            Tracer::off()
        }
    }

    /// Wrap an already-shared sink (lets the caller keep a handle, e.g. to
    /// a [`MemorySink`] it wants to inspect afterwards).
    pub fn shared(sink: Arc<dyn TraceSink>) -> Self {
        if sink.enabled() {
            Tracer { inner: Some(sink) }
        } else {
            Tracer::off()
        }
    }

    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Emit one event. The closure only runs — and the event is only
    /// constructed — when a sink is attached.
    #[inline]
    pub fn emit(&self, make: impl FnOnce() -> TraceEvent) {
        if let Some(sink) = &self.inner {
            let ev = make();
            EVENTS_CONSTRUCTED.fetch_add(1, Ordering::Relaxed);
            sink.emit(&ev);
        }
    }

    /// Open a named span; the guard emits `span_end` with elapsed nanos on
    /// drop. With tracing off this is a no-op guard.
    pub fn span(&self, name: &str) -> Span {
        if self.enabled() {
            self.emit(|| TraceEvent::SpanStart {
                name: name.to_string(),
            });
            Span {
                tracer: self.clone(),
                name: Some(name.to_string()),
                start: Instant::now(),
            }
        } else {
            Span {
                tracer: Tracer::off(),
                name: None,
                start: Instant::now(),
            }
        }
    }

    /// Flush the underlying sink, if any.
    pub fn flush(&self) {
        if let Some(sink) = &self.inner {
            sink.flush();
        }
    }
}

/// RAII guard for a named span; see [`Tracer::span`].
#[derive(Debug)]
pub struct Span {
    tracer: Tracer,
    name: Option<String>,
    start: Instant,
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(name) = self.name.take() {
            let nanos = self.start.elapsed().as_nanos() as u64;
            self.tracer.emit(|| TraceEvent::SpanEnd { name, nanos });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_tracer_constructs_no_events() {
        let t = Tracer::off();
        let before = events_constructed();
        for _ in 0..100 {
            t.emit(|| panic!("event closure must not run when tracing is off"));
        }
        assert_eq!(events_constructed(), before);
    }

    #[test]
    fn null_sink_collapses_to_off() {
        let t = Tracer::new(NullSink);
        assert!(!t.enabled());
        let before = events_constructed();
        t.emit(|| panic!("NullSink tracer must not construct events"));
        assert_eq!(events_constructed(), before);
    }

    #[test]
    fn enabled_tracer_delivers_events() {
        let sink = Arc::new(MemorySink::new());
        let t = Tracer::shared(sink.clone());
        assert!(t.enabled());
        let before = events_constructed();
        t.emit(|| TraceEvent::Counter {
            name: "n".into(),
            value: 3,
        });
        assert_eq!(events_constructed(), before + 1);
        assert_eq!(
            sink.events(),
            vec![TraceEvent::Counter {
                name: "n".into(),
                value: 3
            }]
        );
    }

    #[test]
    fn spans_pair_start_and_end() {
        let sink = Arc::new(MemorySink::new());
        let t = Tracer::shared(sink.clone());
        {
            let _s = t.span("enumerate");
            t.emit(|| TraceEvent::Counter {
                name: "inside".into(),
                value: 1,
            });
        }
        let evs = sink.events();
        assert_eq!(evs.len(), 3);
        assert_eq!(
            evs[0],
            TraceEvent::SpanStart {
                name: "enumerate".into()
            }
        );
        assert_eq!(evs[1].kind(), "counter");
        assert!(matches!(&evs[2], TraceEvent::SpanEnd { name, .. } if name == "enumerate"));
    }

    #[test]
    fn clones_share_the_sink() {
        let sink = Arc::new(MemorySink::new());
        let t = Tracer::shared(sink.clone());
        let t2 = t.clone();
        t2.emit(|| TraceEvent::Counter {
            name: "a".into(),
            value: 1,
        });
        t.emit(|| TraceEvent::Counter {
            name: "b".into(),
            value: 2,
        });
        assert_eq!(sink.len(), 2);
    }
}

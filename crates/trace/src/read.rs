//! A zero-dependency JSON reader — the inverse of [`crate::json`].
//!
//! Trace consumers (the `starqo-obs` analytics tooling, the bench gate)
//! need to read back what [`crate::json::JsonObj`] and the bench harness
//! wrote, without pulling serde into a dependency-free crate. This is a
//! small recursive-descent parser for general JSON with one deliberate
//! refinement: integer literals that fit a `u64`/`i64` are kept lossless
//! (JSON-as-f64 would corrupt 64-bit plan fingerprints above 2⁵³).

use std::fmt;

/// A parsed JSON value. Integers keep full 64-bit precision.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    Null,
    Bool(bool),
    /// Non-negative integer literal (no fraction/exponent).
    UInt(u64),
    /// Negative integer literal.
    Int(i64),
    /// Any other number.
    Num(f64),
    Str(String),
    Arr(Vec<JsonValue>),
    /// Key order is preserved; duplicate keys keep the last occurrence
    /// reachable via [`JsonValue::get`]'s first-match (writers never emit
    /// duplicates).
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::UInt(v) => Some(*v),
            JsonValue::Num(v) if *v >= 0.0 && v.fract() == 0.0 && *v <= u64::MAX as f64 => {
                Some(*v as u64)
            }
            _ => None,
        }
    }

    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().map(|v| v as usize)
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(v) => Some(*v),
            JsonValue::UInt(v) => Some(*v as f64),
            JsonValue::Int(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// Object fields, when this is an object.
    pub fn fields(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Obj(fields) => Some(fields),
            _ => None,
        }
    }
}

/// A parse failure: byte offset plus a short message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    pub offset: usize,
    pub msg: &'static str,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.msg)
    }
}

impl std::error::Error for JsonError {}

/// Parse one complete JSON value; trailing non-whitespace is an error.
pub fn parse_json(text: &str) -> Result<JsonValue, JsonError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &'static str) -> JsonError {
        JsonError {
            offset: self.pos,
            msg,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8, msg: &'static str) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(msg))
        }
    }

    fn literal(&mut self, word: &str, v: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'{', "expected '{'")?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':', "expected ':' after object key")?;
            self.skip_ws();
            let v = self.value()?;
            fields.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u16, JsonError> {
        let mut v: u16 = 0;
        for _ in 0..4 {
            let d = match self.peek() {
                Some(c @ b'0'..=b'9') => c - b'0',
                Some(c @ b'a'..=b'f') => c - b'a' + 10,
                Some(c @ b'A'..=b'F') => c - b'A' + 10,
                _ => return Err(self.err("invalid \\u escape")),
            };
            v = v << 4 | d as u16;
            self.pos += 1;
        }
        Ok(v)
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            if (0xD800..0xDC00).contains(&hi) {
                                // High surrogate: a low surrogate must follow.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u', "expected low surrogate")?;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let c = 0x10000
                                        + ((hi as u32 - 0xD800) << 10)
                                        + (lo as u32 - 0xDC00);
                                    out.push(
                                        char::from_u32(c)
                                            .ok_or_else(|| self.err("invalid surrogate pair"))?,
                                    );
                                } else {
                                    return Err(self.err("unpaired high surrogate"));
                                }
                            } else if (0xDC00..0xE000).contains(&hi) {
                                return Err(self.err("unpaired low surrogate"));
                            } else {
                                out.push(
                                    char::from_u32(hi as u32)
                                        .ok_or_else(|| self.err("invalid \\u escape"))?,
                                );
                            }
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control character in string")),
                Some(_) => {
                    // Copy one UTF-8 scalar (the input is a &str, so bytes
                    // form valid sequences; find the char covering pos).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let ch = s
                        .chars()
                        .next()
                        .ok_or_else(|| self.err("unexpected end of string"))?;
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut integral = true;
        if self.peek() == Some(b'.') {
            integral = false;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            integral = false;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        // Only ASCII digit/sign/dot/exponent bytes were consumed, so the
        // slice is valid UTF-8; still fail typed rather than panic.
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid UTF-8 in number"))?;
        if integral {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(JsonValue::UInt(v));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(JsonValue::Int(v));
            }
        }
        text.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|_| JsonError {
                offset: start,
                msg: "invalid number",
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_flat_objects() {
        let v = parse_json(r#"{"a":"x","b":2,"c":1.5,"d":true,"e":null}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("b").unwrap().as_u64(), Some(2));
        assert_eq!(v.get("c").unwrap().as_f64(), Some(1.5));
        assert_eq!(v.get("d").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("e"), Some(&JsonValue::Null));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse_json(r#"{"m":{"counters":{"x":1}},"xs":[1,[2,3],{"k":"v"}]}"#).unwrap();
        let x = v.get("m").unwrap().get("counters").unwrap().get("x");
        assert_eq!(x.unwrap().as_u64(), Some(1));
        match v.get("xs").unwrap() {
            JsonValue::Arr(items) => assert_eq!(items.len(), 3),
            other => panic!("not an array: {other:?}"),
        }
    }

    #[test]
    fn u64_fingerprints_stay_lossless() {
        // 2^53 + 1 is not representable as f64.
        let big = (1u64 << 53) + 1;
        let v = parse_json(&format!("{{\"fp\":{big}}}")).unwrap();
        assert_eq!(v.get("fp").unwrap().as_u64(), Some(big));
        let max = u64::MAX;
        let v = parse_json(&format!("{{\"fp\":{max}}}")).unwrap();
        assert_eq!(v.get("fp").unwrap().as_u64(), Some(max));
    }

    #[test]
    fn negative_and_float_numbers() {
        let v = parse_json(r#"[-3,-1.25,2e3,-9223372036854775808]"#).unwrap();
        match v {
            JsonValue::Arr(items) => {
                assert_eq!(items[0], JsonValue::Int(-3));
                assert_eq!(items[1], JsonValue::Num(-1.25));
                assert_eq!(items[2], JsonValue::Num(2000.0));
                assert_eq!(items[3], JsonValue::Int(i64::MIN));
            }
            other => panic!("not an array: {other:?}"),
        }
    }

    #[test]
    fn unescapes_strings() {
        let v = parse_json("\"a\\\"b\\\\c\\nd\\u0001e\\u00e9\"").unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\nd\u{1}e\u{e9}"));
        // Surrogate pair: U+1F600.
        let v = parse_json(r#""😀""#).unwrap();
        assert_eq!(v.as_str(), Some("\u{1F600}"));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            r#"{"a"}"#,
            r#"{"a":1,}"#,
            "[1,]",
            "tru",
            r#""unterminated"#,
            r#""\q""#,
            r#""\ud800x""#,
            "1 2",
            "{\"a\":\u{1}\"x\"}",
        ] {
            assert!(parse_json(bad).is_err(), "accepted: {bad:?}");
        }
    }

    #[test]
    fn roundtrips_the_writer() {
        let written = crate::json::JsonObj::new()
            .str("s", "π \"quoted\"\n")
            .u64("n", u64::MAX)
            .f64("f", -0.5)
            .bool("b", false)
            .finish();
        let v = parse_json(&written).unwrap();
        assert_eq!(v.get("s").unwrap().as_str(), Some("π \"quoted\"\n"));
        assert_eq!(v.get("n").unwrap().as_u64(), Some(u64::MAX));
        assert_eq!(v.get("f").unwrap().as_f64(), Some(-0.5));
        assert_eq!(v.get("b").unwrap().as_bool(), Some(false));
    }
}

//! Named monotonic counters and per-phase wall-clock timers, aggregated
//! into a [`MetricsSummary`] that optimization results expose.

use std::collections::BTreeMap;
use std::time::Instant;

use crate::hist::Histogram;
use crate::json::JsonObj;

/// The optimizer/executor lifecycle phases that get first-class timers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Phase {
    /// SQL-subset text → `Query`.
    Parse,
    /// DSL rule text → executable rule structures.
    Compile,
    /// Bottom-up STAR-driven plan enumeration.
    Enumerate,
    /// Glue invocations (property enforcement).
    Glue,
    /// Plan execution.
    Execute,
}

impl Phase {
    pub const ALL: [Phase; 5] = [
        Phase::Parse,
        Phase::Compile,
        Phase::Enumerate,
        Phase::Glue,
        Phase::Execute,
    ];

    pub fn name(self) -> &'static str {
        match self {
            Phase::Parse => "parse",
            Phase::Compile => "compile",
            Phase::Enumerate => "enumerate",
            Phase::Glue => "glue",
            Phase::Execute => "execute",
        }
    }
}

/// An in-flight phase measurement; hand it back to
/// [`MetricsRegistry::finish`] to record it.
#[derive(Debug)]
#[must_use = "finish() this timer to record the phase"]
pub struct PhaseTimer {
    phase: Phase,
    start: Instant,
}

/// Mutable collection point for counters, phase timers, and histograms.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<&'static str, u64>,
    phase_nanos: BTreeMap<&'static str, u64>,
    hists: BTreeMap<&'static str, Histogram>,
}

impl MetricsRegistry {
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Bump a named monotonic counter.
    pub fn count(&mut self, name: &'static str, delta: u64) {
        *self.counters.entry(name).or_insert(0) += delta;
    }

    /// Record one observation into a named log-bucketed histogram.
    pub fn observe(&mut self, name: &'static str, value: u64) {
        self.hists.entry(name).or_default().record(value);
    }

    /// Fold an externally built histogram into a named one.
    pub fn merge_hist(&mut self, name: &'static str, hist: &Histogram) {
        if !hist.is_empty() {
            self.hists.entry(name).or_default().merge(hist);
        }
    }

    /// Start timing a phase.
    pub fn start(&self, phase: Phase) -> PhaseTimer {
        PhaseTimer {
            phase,
            start: Instant::now(),
        }
    }

    /// Stop a phase timer and accumulate its elapsed time. Phases may run
    /// multiple times (e.g. `Glue`); durations add up.
    pub fn finish(&mut self, timer: PhaseTimer) {
        self.add_phase_nanos(timer.phase, timer.start.elapsed().as_nanos() as u64);
    }

    /// Accumulate an externally measured duration for a phase.
    pub fn add_phase_nanos(&mut self, phase: Phase, nanos: u64) {
        *self.phase_nanos.entry(phase.name()).or_insert(0) += nanos;
    }

    /// Time a closure under a phase.
    pub fn time<R>(&mut self, phase: Phase, f: impl FnOnce() -> R) -> R {
        let t = self.start(phase);
        let r = f();
        self.finish(t);
        r
    }

    /// Freeze into an immutable summary.
    pub fn summary(&self) -> MetricsSummary {
        MetricsSummary {
            counters: self
                .counters
                .iter()
                .map(|(k, v)| (k.to_string(), *v))
                .collect(),
            phase_nanos: self
                .phase_nanos
                .iter()
                .map(|(k, v)| (k.to_string(), *v))
                .collect(),
            hists: self
                .hists
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect(),
        }
    }
}

/// Immutable aggregation of a run: counters, per-phase wall time, and
/// log-bucketed value distributions.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSummary {
    counters: Vec<(String, u64)>,
    phase_nanos: Vec<(String, u64)>,
    hists: Vec<(String, Histogram)>,
}

impl MetricsSummary {
    pub fn counters(&self) -> &[(String, u64)] {
        &self.counters
    }

    pub fn phase_nanos(&self) -> &[(String, u64)] {
        &self.phase_nanos
    }

    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| *v)
    }

    pub fn phase(&self, phase: Phase) -> Option<u64> {
        self.phase_nanos
            .iter()
            .find(|(k, _)| k == phase.name())
            .map(|(_, v)| *v)
    }

    pub fn hists(&self) -> &[(String, Histogram)] {
        &self.hists
    }

    pub fn hist(&self, name: &str) -> Option<&Histogram> {
        self.hists.iter().find(|(k, _)| k == name).map(|(_, v)| v)
    }

    /// Merge another summary into this one (counters and phases add).
    pub fn absorb(&mut self, other: &MetricsSummary) {
        for (k, v) in &other.counters {
            match self.counters.iter_mut().find(|(ek, _)| ek == k) {
                Some((_, ev)) => *ev += v,
                None => self.counters.push((k.clone(), *v)),
            }
        }
        for (k, v) in &other.phase_nanos {
            match self.phase_nanos.iter_mut().find(|(ek, _)| ek == k) {
                Some((_, ev)) => *ev += v,
                None => self.phase_nanos.push((k.clone(), *v)),
            }
        }
        for (k, v) in &other.hists {
            match self.hists.iter_mut().find(|(ek, _)| ek == k) {
                Some((_, ev)) => ev.merge(v),
                None => self.hists.push((k.clone(), v.clone())),
            }
        }
    }

    /// `{"counters": {...}, "phase_nanos": {...}}`, plus a
    /// `"histograms"` object when any histogram was recorded.
    pub fn to_json(&self) -> String {
        let mut counters = JsonObj::new();
        for (k, v) in &self.counters {
            counters = counters.u64(k, *v);
        }
        let mut phases = JsonObj::new();
        for (k, v) in &self.phase_nanos {
            phases = phases.u64(k, *v);
        }
        let mut out = JsonObj::new()
            .raw("counters", &counters.finish())
            .raw("phase_nanos", &phases.finish());
        if !self.hists.is_empty() {
            let mut hists = JsonObj::new();
            for (k, v) in &self.hists {
                hists = hists.raw(k, &v.to_json());
            }
            out = out.raw("histograms", &hists.finish());
        }
        out.finish()
    }

    /// Multi-line human rendering (for reports and explain output).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("phases:\n");
        for (k, v) in &self.phase_nanos {
            out.push_str(&format!("  {:<12} {:>12.3} ms\n", k, *v as f64 / 1e6));
        }
        out.push_str("counters:\n");
        for (k, v) in &self.counters {
            out.push_str(&format!("  {k:<28} {v}\n"));
        }
        if !self.hists.is_empty() {
            out.push_str("histograms:\n");
            for (k, v) in &self.hists {
                out.push_str(&format!("  {k:<28} {}\n", v.render_line(|x| x.to_string())));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut m = MetricsRegistry::new();
        m.count("memo_hits", 2);
        m.count("memo_hits", 3);
        m.count("plans", 1);
        let s = m.summary();
        assert_eq!(s.counter("memo_hits"), Some(5));
        assert_eq!(s.counter("plans"), Some(1));
        assert_eq!(s.counter("absent"), None);
    }

    #[test]
    fn phases_accumulate_across_runs() {
        let mut m = MetricsRegistry::new();
        m.add_phase_nanos(Phase::Glue, 10);
        m.add_phase_nanos(Phase::Glue, 5);
        assert_eq!(m.summary().phase(Phase::Glue), Some(15));
    }

    #[test]
    fn timing_a_closure_records_nonzero() {
        let mut m = MetricsRegistry::new();
        let out = m.time(Phase::Enumerate, || {
            std::hint::black_box((0..1000).sum::<u64>())
        });
        assert_eq!(out, 499_500);
        assert!(m.summary().phase(Phase::Enumerate).unwrap() > 0);
    }

    #[test]
    fn summary_json_shape() {
        let mut m = MetricsRegistry::new();
        m.count("x", 1);
        m.add_phase_nanos(Phase::Parse, 42);
        let j = m.summary().to_json();
        assert_eq!(j, r#"{"counters":{"x":1},"phase_nanos":{"parse":42}}"#);
    }

    #[test]
    fn absorb_merges() {
        let mut a = MetricsSummary::default();
        let mut reg = MetricsRegistry::new();
        reg.count("x", 1);
        reg.add_phase_nanos(Phase::Execute, 5);
        a.absorb(&reg.summary());
        a.absorb(&reg.summary());
        assert_eq!(a.counter("x"), Some(2));
        assert_eq!(a.phase(Phase::Execute), Some(10));
    }
}

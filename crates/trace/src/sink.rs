//! Trace sinks: where events go.
//!
//! * [`NullSink`] — reports itself disabled, so a [`crate::Tracer`] built on
//!   it never even constructs events (zero allocation on the hot path);
//! * [`JsonLinesSink`] — one JSON object per event on any `Write`;
//! * [`MemorySink`] — captures events in memory, for tests and tools.

use std::io::Write;
use std::sync::Mutex;

use crate::event::TraceEvent;

/// A destination for trace events. Implementations must be `Send + Sync`;
/// the tracer shares one sink across optimizer and executor.
pub trait TraceSink: Send + Sync {
    /// Whether events should be constructed at all. A tracer wrapping a sink
    /// that returns `false` collapses to the no-op tracer.
    fn enabled(&self) -> bool {
        true
    }

    /// Receive one event.
    fn emit(&self, event: &TraceEvent);

    /// Flush buffered output, if any.
    fn flush(&self) {}
}

/// The no-op sink: everything compiles away.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn enabled(&self) -> bool {
        false
    }

    fn emit(&self, _event: &TraceEvent) {}
}

/// Writes one JSON object per line to an arbitrary writer.
pub struct JsonLinesSink {
    out: Mutex<Box<dyn Write + Send>>,
}

impl JsonLinesSink {
    pub fn new(out: Box<dyn Write + Send>) -> Self {
        JsonLinesSink {
            out: Mutex::new(out),
        }
    }

    /// Convenience: trace to standard output.
    pub fn stdout() -> Self {
        JsonLinesSink::new(Box::new(std::io::stdout()))
    }

    /// Convenience: trace to a file (truncates).
    pub fn to_file(path: impl AsRef<std::path::Path>) -> std::io::Result<Self> {
        Ok(JsonLinesSink::new(Box::new(std::fs::File::create(path)?)))
    }
}

impl TraceSink for JsonLinesSink {
    fn emit(&self, event: &TraceEvent) {
        // A failed trace write (or a writer poisoned by a panicking rule)
        // must never take the optimizer down.
        let mut out = self.out.lock().unwrap_or_else(|p| p.into_inner());
        let _ = writeln!(out, "{}", event.to_json());
    }

    fn flush(&self) {
        let _ = self.out.lock().unwrap_or_else(|p| p.into_inner()).flush();
    }
}

/// Captures events in memory; `events()` clones them out.
#[derive(Debug, Default)]
pub struct MemorySink {
    events: Mutex<Vec<TraceEvent>>,
}

impl MemorySink {
    pub fn new() -> Self {
        MemorySink::default()
    }

    pub fn events(&self) -> Vec<TraceEvent> {
        self.events
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .clone()
    }

    pub fn len(&self) -> usize {
        self.events.lock().unwrap_or_else(|p| p.into_inner()).len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl TraceSink for MemorySink {
    fn emit(&self, event: &TraceEvent) {
        self.events
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .push(event.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_sink_is_disabled() {
        assert!(!NullSink.enabled());
    }

    #[test]
    fn json_lines_sink_writes_one_line_per_event() {
        let buf: Vec<u8> = Vec::new();
        let shared = std::sync::Arc::new(Mutex::new(buf));
        struct SharedWriter(std::sync::Arc<Mutex<Vec<u8>>>);
        impl Write for SharedWriter {
            fn write(&mut self, b: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(b);
                Ok(b.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let sink = JsonLinesSink::new(Box::new(SharedWriter(shared.clone())));
        sink.emit(&TraceEvent::SpanStart { name: "a".into() });
        sink.emit(&TraceEvent::SpanEnd {
            name: "a".into(),
            nanos: 7,
        });
        sink.flush();
        let text = String::from_utf8(shared.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0], r#"{"type":"span_start","name":"a"}"#);
        assert_eq!(lines[1], r#"{"type":"span_end","name":"a","nanos":7}"#);
    }

    #[test]
    fn memory_sink_captures() {
        let sink = MemorySink::new();
        assert!(sink.is_empty());
        sink.emit(&TraceEvent::Counter {
            name: "x".into(),
            value: 1,
        });
        assert_eq!(sink.len(), 1);
        assert_eq!(sink.events()[0].kind(), "counter");
    }
}

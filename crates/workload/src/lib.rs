//! # starqo-workload
//!
//! Synthetic catalogs, databases, and queries for benches, examples, and
//! property tests. Everything is deterministic under a caller-supplied
//! seed, so experiment tables are reproducible run to run.
//!
//! The paper has no workload of its own (its evaluation is worked examples
//! and strategy-space arguments), so this crate supplies:
//!
//! * [`paper`] — the DEPT/EMP catalog, data, and query of Figures 1–3,
//!   in local and distributed (N.Y./L.A.) variants;
//! * [`rng`] — the tiny deterministic PRNG all generators draw from;
//! * [`synth`] — parameterized random catalogs + databases (table count,
//!   cardinality ranges, index density, site count, storage mix);
//! * [`queries`] — chain / star / clique join-query generators over a
//!   synthetic catalog.

pub mod paper;
pub mod queries;
pub mod rng;
pub mod synth;

pub use paper::{dept_emp_catalog, dept_emp_database, dept_emp_query, PAPER_SQL};
pub use queries::{query_shape, query_shape_param, QueryShape};
pub use rng::Rng64;
pub use synth::{synth_catalog, synth_database, synth_database_scaled, SynthSpec};

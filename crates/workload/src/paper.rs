//! The paper's own example: DEPT ⋈ EMP with an index on EMP.DNO
//! (Figure 1), stored at N.Y. (and EMP optionally at L.A. for the
//! distributed experiments of §4.2 and Figure 3).

use std::sync::Arc;

use starqo_catalog::{Catalog, DataType, StorageKind, Value};
use starqo_query::{parse_query, Query};
use starqo_storage::{Database, DatabaseBuilder};

/// The running-example query of §2.1:
/// employees of departments managed by Haas.
pub const PAPER_SQL: &str = "SELECT E.NAME, E.ADDRESS FROM DEPT D, EMP E \
                             WHERE D.MGR = 'Haas' AND D.DNO = E.DNO";

/// Build the DEPT/EMP catalog. With `distributed`, EMP lives at L.A. while
/// DEPT and the query stay at N.Y.
pub fn dept_emp_catalog(distributed: bool, emp_card: u64) -> Arc<Catalog> {
    let emp_site = if distributed { "L.A." } else { "N.Y." };
    Arc::new(
        Catalog::builder()
            .site("N.Y.")
            .site("L.A.")
            .table("DEPT", "N.Y.", StorageKind::Heap, 50)
            .column("DNO", DataType::Int, Some(50))
            .column("MGR", DataType::Str, Some(50))
            .table("EMP", emp_site, StorageKind::Heap, emp_card)
            .column("ENO", DataType::Int, Some(emp_card))
            .column("NAME", DataType::Str, None)
            .column("ADDRESS", DataType::Str, None)
            .column("DNO", DataType::Int, Some(50))
            .index("EMP_DNO", "EMP", &["DNO"], false, false)
            .build()
            .expect("paper catalog is well-formed"),
    )
}

/// Load data matching the catalog statistics: 50 departments (exactly one
/// managed by 'Haas'), `emp_card` employees spread uniformly over the 50
/// departments.
pub fn dept_emp_database(cat: Arc<Catalog>) -> Database {
    let emp_card = cat.table_by_name("EMP").expect("EMP").card as i64;
    let mut b = DatabaseBuilder::new(cat);
    for d in 0..50i64 {
        let mgr = if d == 7 {
            "Haas".to_string()
        } else {
            format!("mgr{d}")
        };
        b.insert("DEPT", vec![Value::Int(d), Value::str(mgr)])
            .expect("dept row");
    }
    for e in 0..emp_card {
        b.insert(
            "EMP",
            vec![
                Value::Int(e),
                Value::str(format!("name{e}")),
                Value::str(format!("addr{e}")),
                Value::Int(e % 50),
            ],
        )
        .expect("emp row");
    }
    b.build().expect("paper database loads")
}

/// Parse the paper's query against the catalog.
pub fn dept_emp_query(cat: &Catalog) -> Query {
    parse_query(cat, PAPER_SQL).expect("paper query parses")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_fixture_is_consistent() {
        let cat = dept_emp_catalog(false, 1000);
        let q = dept_emp_query(&cat);
        assert_eq!(q.quantifiers.len(), 2);
        assert_eq!(q.predicates.len(), 2);
        let db = dept_emp_database(cat);
        assert_eq!(db.actual_card(starqo_catalog::TableId(0)), 50);
        assert_eq!(db.actual_card(starqo_catalog::TableId(1)), 1000);
    }

    #[test]
    fn distributed_variant_moves_emp() {
        let cat = dept_emp_catalog(true, 100);
        let emp = cat.table_by_name("EMP").unwrap();
        let dept = cat.table_by_name("DEPT").unwrap();
        assert_ne!(emp.site, dept.site);
    }
}

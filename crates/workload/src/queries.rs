//! Join-query generators over synthetic catalogs.

use starqo_catalog::{Catalog, ColId, Value};
use starqo_query::{CmpOp, PredExpr, QCol, Query, QueryBuilder, Scalar};

/// Join-graph shapes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryShape {
    /// `T0.FK = T1.ID AND T1.FK = T2.ID AND ...`
    Chain,
    /// `T0.FK = T1.ID AND T0.FK = T2.ID AND ...` (T0 is the hub).
    Star,
    /// Chain plus a closing predicate `T(n-1).FK = T0.ID`.
    Cycle,
    /// Every pair joined: `Ti.FK = Tj.ID` for all i < j — the densest join
    /// graph, where bushy enumeration has the most partitions to consider.
    Clique,
}

/// Build a query of the given shape over the first `n` tables of a
/// synthetic catalog (`synth_catalog` naming conventions), optionally with a
/// selective local predicate `T0.P0 = 0` to exercise pushdown.
pub fn query_shape(cat: &Catalog, shape: QueryShape, n: usize, local_pred: bool) -> Query {
    query_shape_param(cat, shape, n, if local_pred { Some(0) } else { None })
}

/// Like [`query_shape`], but the local predicate compares `T0.P0` against a
/// caller-supplied constant. Queries built with different constants are
/// canonically equivalent (the literal becomes a bind slot), which is what
/// the serving benchmark leans on: one cached plan, many parameter values.
pub fn query_shape_param(cat: &Catalog, shape: QueryShape, n: usize, param: Option<i64>) -> Query {
    assert!(n >= 2, "need at least two tables to join");
    let mut b = QueryBuilder::new();
    let mut qs = Vec::with_capacity(n);
    for i in 0..n {
        let alias = format!("t{i}");
        qs.push(
            b.quantifier(cat, &format!("T{i}"), &alias)
                .expect("synthetic table exists"),
        );
    }
    let fk = ColId(1);
    let id = ColId(0);
    let eq = |a: Scalar, b: Scalar| PredExpr::Cmp(CmpOp::Eq, a, b);
    match shape {
        QueryShape::Chain => {
            for i in 0..n - 1 {
                b.predicate(eq(Scalar::col(qs[i], fk), Scalar::col(qs[i + 1], id)))
                    .expect("pred");
            }
        }
        QueryShape::Star => {
            for i in 1..n {
                b.predicate(eq(Scalar::col(qs[0], fk), Scalar::col(qs[i], id)))
                    .expect("pred");
            }
        }
        QueryShape::Cycle => {
            for i in 0..n - 1 {
                b.predicate(eq(Scalar::col(qs[i], fk), Scalar::col(qs[i + 1], id)))
                    .expect("pred");
            }
            b.predicate(eq(Scalar::col(qs[n - 1], fk), Scalar::col(qs[0], id)))
                .expect("pred");
        }
        QueryShape::Clique => {
            for i in 0..n {
                for j in i + 1..n {
                    b.predicate(eq(Scalar::col(qs[i], fk), Scalar::col(qs[j], id)))
                        .expect("pred");
                }
            }
        }
    }
    if let Some(c) = param {
        // T0.P0 = c (payload column, if present).
        if cat.tables()[0].columns.len() > 2 {
            b.predicate(PredExpr::Cmp(
                CmpOp::Eq,
                Scalar::col(qs[0], ColId(2)),
                Scalar::Const(Value::Int(c)),
            ))
            .expect("pred");
        }
    }
    b.select(QCol::new(qs[0], id));
    b.select(QCol::new(qs[n - 1], id));
    b.build().expect("generated query is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{synth_catalog, SynthSpec};
    use starqo_query::QSet;

    fn cat() -> std::sync::Arc<Catalog> {
        synth_catalog(
            1,
            &SynthSpec {
                tables: 5,
                ..Default::default()
            },
        )
    }

    #[test]
    fn chain_is_connected_in_sequence() {
        let cat = cat();
        let q = query_shape(&cat, QueryShape::Chain, 4, false);
        assert_eq!(q.predicates.len(), 3);
        for i in 0..3u32 {
            assert!(q.connects(
                QSet::single(starqo_query::QId(i)),
                QSet::single(starqo_query::QId(i + 1))
            ));
        }
        assert!(!q.connects(
            QSet::single(starqo_query::QId(0)),
            QSet::single(starqo_query::QId(3))
        ));
    }

    #[test]
    fn star_hubs_on_t0() {
        let cat = cat();
        let q = query_shape(&cat, QueryShape::Star, 4, false);
        assert_eq!(q.predicates.len(), 3);
        for i in 1..4u32 {
            assert!(q.connects(
                QSet::single(starqo_query::QId(0)),
                QSet::single(starqo_query::QId(i))
            ));
        }
        assert!(!q.connects(
            QSet::single(starqo_query::QId(1)),
            QSet::single(starqo_query::QId(2))
        ));
    }

    #[test]
    fn cycle_closes_the_loop() {
        let cat = cat();
        let q = query_shape(&cat, QueryShape::Cycle, 3, false);
        assert_eq!(q.predicates.len(), 3);
        assert!(q.connects(
            QSet::single(starqo_query::QId(2)),
            QSet::single(starqo_query::QId(0))
        ));
    }

    #[test]
    fn clique_connects_every_pair() {
        let cat = cat();
        let q = query_shape(&cat, QueryShape::Clique, 4, false);
        assert_eq!(q.predicates.len(), 6); // C(4,2)
        for i in 0..4u32 {
            for j in 0..4u32 {
                if i != j {
                    assert!(q.connects(
                        QSet::single(starqo_query::QId(i)),
                        QSet::single(starqo_query::QId(j))
                    ));
                }
            }
        }
    }

    #[test]
    fn local_pred_added_when_requested() {
        let cat = cat();
        let with = query_shape(&cat, QueryShape::Chain, 3, true);
        let without = query_shape(&cat, QueryShape::Chain, 3, false);
        assert_eq!(with.predicates.len(), without.predicates.len() + 1);
    }
}

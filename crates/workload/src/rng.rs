//! A tiny deterministic PRNG, so the workspace builds fully offline.
//!
//! The generators only need reproducibility under a caller-supplied seed and
//! reasonable uniformity — not cryptographic quality — so a hand-rolled
//! splitmix64/xoshiro256** pair (public-domain algorithms by Vigna et al.)
//! replaces the external `rand` crate.

/// Deterministic 64-bit PRNG (xoshiro256** seeded via splitmix64).
#[derive(Debug, Clone)]
pub struct Rng64 {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

impl Rng64 {
    /// Seed the generator; equal seeds yield equal streams.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        Rng64 {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }

    /// Uniform double in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[lo, hi]` (inclusive). The modulo bias is
    /// negligible for the ranges the generators use (≪ 2⁶⁴).
    pub fn range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        let span = hi - lo + 1; // never 0: hi < u64::MAX in all call sites
        lo + self.next_u64() % span
    }

    /// Uniform integer in `[0, n)`; `n` must be positive.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }

    /// Uniform index in `[0, n)`; `n` must be positive.
    pub fn index(&mut self, n: usize) -> usize {
        self.below(n as u64) as usize
    }

    /// Bernoulli draw with probability `p` of `true`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Fair coin flip.
    pub fn flip(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = Rng64::new(42);
        let mut b = Rng64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng64::new(43);
        assert_ne!(Rng64::new(42).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = Rng64::new(7);
        for _ in 0..1000 {
            let v = r.range_inclusive(10, 20);
            assert!((10..=20).contains(&v));
            let f = r.next_f64();
            assert!((0.0..1.0).contains(&f));
            assert!(r.index(3) < 3);
        }
        // Degenerate range.
        assert_eq!(r.range_inclusive(5, 5), 5);
    }

    #[test]
    fn chance_extremes() {
        let mut r = Rng64::new(1);
        for _ in 0..100 {
            assert!(!r.chance(0.0));
            assert!(r.chance(1.0));
        }
    }

    #[test]
    fn roughly_uniform() {
        let mut r = Rng64::new(99);
        let mut buckets = [0u32; 10];
        for _ in 0..10_000 {
            buckets[r.index(10)] += 1;
        }
        for b in buckets {
            assert!(
                (700..1300).contains(&b),
                "bucket count {b} far from uniform"
            );
        }
    }
}

//! Parameterized synthetic catalogs and databases.

use std::sync::Arc;

use crate::rng::Rng64;
use starqo_catalog::{Catalog, DataType, StorageKind, Value};
use starqo_storage::{Database, DatabaseBuilder};

/// Shape of a synthetic schema.
#[derive(Debug, Clone)]
pub struct SynthSpec {
    pub tables: usize,
    /// Cardinality range per table (inclusive).
    pub card_range: (u64, u64),
    /// Number of sites; tables are assigned round-robin.
    pub sites: usize,
    /// Probability that a table gets a secondary index on its join column.
    pub index_prob: f64,
    /// Probability that a table is B-tree-stored on its ID column.
    pub btree_prob: f64,
    /// Extra payload columns per table.
    pub payload_cols: usize,
}

impl Default for SynthSpec {
    fn default() -> Self {
        SynthSpec {
            tables: 4,
            card_range: (100, 10_000),
            sites: 1,
            index_prob: 0.5,
            btree_prob: 0.25,
            payload_cols: 2,
        }
    }
}

/// Generate a catalog: table `Ti` has columns `ID` (unique-ish), `FK`
/// (joins to `T(i+1).ID` in chain queries), and `payload_cols` extras.
pub fn synth_catalog(seed: u64, spec: &SynthSpec) -> Arc<Catalog> {
    let mut rng = Rng64::new(seed);
    let mut b = Catalog::builder();
    for s in 0..spec.sites.max(1) {
        b = b.site(format!("site{s}"));
    }
    let cards: Vec<u64> = (0..spec.tables)
        .map(|_| rng.range_inclusive(spec.card_range.0, spec.card_range.1))
        .collect();
    for (i, &card) in cards.iter().enumerate() {
        let site = format!("site{}", i % spec.sites.max(1));
        let storage = if rng.chance(spec.btree_prob) {
            StorageKind::BTree {
                key: vec![starqo_catalog::ColId(0)],
            }
        } else {
            StorageKind::Heap
        };
        b = b.table(format!("T{i}"), &site, storage, card);
        b = b.column("ID", DataType::Int, Some(card));
        // FK domain sized to the next table's cardinality (chain-friendly).
        let next_card = cards[(i + 1) % cards.len()].max(1);
        b = b.column("FK", DataType::Int, Some(next_card.min(card).max(1)));
        for p in 0..spec.payload_cols {
            b = b.column(format!("P{p}"), DataType::Int, Some((card / 10).max(2)));
        }
        if rng.chance(spec.index_prob) {
            b = b.index(format!("T{i}_FK"), &format!("T{i}"), &["FK"], false, false);
        }
    }
    Arc::new(b.build().expect("synthetic catalog is well-formed"))
}

/// Load data consistent with the catalog statistics. `FK` of `Ti` is drawn
/// uniformly from `T(i+1)`'s ID domain so chain joins have predictable
/// selectivity.
pub fn synth_database(seed: u64, cat: Arc<Catalog>) -> Database {
    synth_database_scaled(seed, cat, 1)
}

/// Like [`synth_database`], but loads `scale`× the catalog's stated
/// cardinality into every table *without touching the catalog*: published
/// statistics and the catalog epoch stay exactly as they were, so every
/// estimate — and every cached plan built from one — is stale by
/// construction. `FK` values are drawn from the *scaled* ID domain of the
/// next table, so chain/star join outputs grow ~`scale`× while cycle and
/// clique closures keep their (scale-invariant) tiny cardinalities. This
/// is the drift-injection primitive of the E20 benchmark; `scale == 1` is
/// bit-identical to [`synth_database`].
pub fn synth_database_scaled(seed: u64, cat: Arc<Catalog>, scale: u64) -> Database {
    let scale = scale.max(1);
    let mut rng = Rng64::new(seed.wrapping_add(0x9E3779B97F4A7C15));
    let tables: Vec<_> = cat.tables().to_vec();
    let n = tables.len();
    let mut b = DatabaseBuilder::new(cat);
    for (i, t) in tables.iter().enumerate() {
        let next_card = tables[(i + 1) % n].card.max(1);
        for id in 0..t.card * scale {
            let mut row = vec![
                Value::Int(id as i64),
                Value::Int(rng.below(next_card * scale) as i64),
            ];
            for c in 2..t.columns.len() {
                let ndv = t.columns[c].distinct.unwrap_or(10).max(1);
                row.push(Value::Int(rng.below(ndv) as i64));
            }
            b.insert_id(t.id, starqo_storage::Tuple(row))
                .expect("synthetic row");
        }
    }
    b.build().expect("synthetic database loads")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_under_seed() {
        let spec = SynthSpec::default();
        let a = synth_catalog(42, &spec);
        let b = synth_catalog(42, &spec);
        assert_eq!(a.tables().len(), b.tables().len());
        for (x, y) in a.tables().iter().zip(b.tables()) {
            assert_eq!(x.card, y.card);
            assert_eq!(x.storage, y.storage);
        }
        let c = synth_catalog(43, &spec);
        // Overwhelmingly likely to differ somewhere.
        let same = a
            .tables()
            .iter()
            .zip(c.tables())
            .all(|(x, y)| x.card == y.card);
        assert!(!same, "different seeds should differ");
    }

    #[test]
    fn database_matches_catalog_cards() {
        let spec = SynthSpec {
            tables: 3,
            card_range: (10, 50),
            ..Default::default()
        };
        let cat = synth_catalog(7, &spec);
        let db = synth_database(7, cat.clone());
        for t in cat.tables() {
            assert_eq!(db.actual_card(t.id), t.card);
        }
    }

    #[test]
    fn scaled_database_drifts_from_catalog_stats() {
        let spec = SynthSpec {
            tables: 3,
            card_range: (10, 50),
            index_prob: 1.0,
            ..Default::default()
        };
        let cat = synth_catalog(7, &spec);
        let db = synth_database_scaled(7, cat.clone(), 8);
        for t in cat.tables() {
            // The data is 8x the published statistic — the statistic itself
            // (and so every estimate) is untouched.
            assert_eq!(db.actual_card(t.id), t.card * 8);
        }
        for ix in cat.indexes() {
            assert_eq!(
                db.index(ix.id).unwrap().entries(),
                cat.table(ix.table).card * 8
            );
        }
    }

    #[test]
    fn sites_assigned_round_robin() {
        let spec = SynthSpec {
            tables: 4,
            sites: 2,
            ..Default::default()
        };
        let cat = synth_catalog(1, &spec);
        assert_eq!(cat.sites().len(), 2);
        assert_eq!(cat.tables()[0].site, cat.tables()[2].site);
        assert_ne!(cat.tables()[0].site, cat.tables()[1].site);
    }

    #[test]
    fn indexes_built_and_usable() {
        let spec = SynthSpec {
            tables: 6,
            index_prob: 1.0,
            ..Default::default()
        };
        let cat = synth_catalog(5, &spec);
        assert_eq!(cat.indexes().len(), 6);
        let db = synth_database(5, cat.clone());
        for ix in cat.indexes() {
            assert_eq!(db.index(ix.id).unwrap().entries(), cat.table(ix.table).card);
        }
    }
}

//! The rule-file lexer.

use crate::error::{DslError, Result};

/// Token kinds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    Ident(String),
    Num(i64),
    Str(String),
    // Punctuation and operators.
    LParen,
    RParen,
    LBracket,
    RBracket,
    LBrace,
    RBrace,
    EmptySet, // "{}"
    Comma,
    Semi,
    Colon,
    Assign, // =
    EqEq,   // ==
    Ne,     // !=
    Lt,
    Le,
    Gt,
    Ge,
    PathsGe, // >= inside requirement lists is the same token as Ge
    Minus,
    Amp,
    Star, // *
    Eof,
}

/// A token with its position.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    pub tok: Tok,
    pub line: u32,
    pub col: u32,
}

/// Lex a whole rule file. `//` and `--` comments run to end of line.
pub fn lex(src: &str) -> Result<Vec<Token>> {
    let mut out = Vec::new();
    let bytes = src.as_bytes();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut col = 1u32;

    macro_rules! push {
        ($t:expr, $l:expr, $c:expr) => {
            out.push(Token {
                tok: $t,
                line: $l,
                col: $c,
            })
        };
    }

    while i < bytes.len() {
        let c = bytes[i] as char;
        let (l0, c0) = (line, col);
        match c {
            '\n' => {
                line += 1;
                col = 1;
                i += 1;
            }
            ' ' | '\t' | '\r' => {
                col += 1;
                i += 1;
            }
            '/' if i + 1 < bytes.len() && bytes[i + 1] == b'/' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '-' if i + 1 < bytes.len() && bytes[i + 1] == b'-' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            'a'..='z' | 'A'..='Z' | '_' => {
                let start = i;
                // ASCII-only identifiers: a byte-wise scan must never step
                // into the middle of a multi-byte UTF-8 sequence.
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                    col += 1;
                }
                push!(Tok::Ident(src[start..i].to_string()), l0, c0);
            }
            '0'..='9' => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                    col += 1;
                }
                let n: i64 = src[start..i]
                    .parse()
                    .map_err(|_| DslError::new("number too large", l0, c0))?;
                push!(Tok::Num(n), l0, c0);
            }
            '\'' | '"' => {
                let quote = bytes[i];
                i += 1;
                col += 1;
                let start = i;
                while i < bytes.len() && bytes[i] != quote && bytes[i] != b'\n' {
                    i += 1;
                    col += 1;
                }
                if i >= bytes.len() || bytes[i] != quote {
                    return Err(DslError::new("unterminated string", l0, c0));
                }
                push!(Tok::Str(src[start..i].to_string()), l0, c0);
                i += 1;
                col += 1;
            }
            '(' => {
                push!(Tok::LParen, l0, c0);
                i += 1;
                col += 1;
            }
            ')' => {
                push!(Tok::RParen, l0, c0);
                i += 1;
                col += 1;
            }
            '[' => {
                push!(Tok::LBracket, l0, c0);
                i += 1;
                col += 1;
            }
            ']' => {
                push!(Tok::RBracket, l0, c0);
                i += 1;
                col += 1;
            }
            '{' => {
                // "{}" is the empty-set literal.
                let mut j = i + 1;
                while j < bytes.len() && (bytes[j] == b' ' || bytes[j] == b'\t') {
                    j += 1;
                }
                if j < bytes.len() && bytes[j] == b'}' {
                    push!(Tok::EmptySet, l0, c0);
                    col += (j + 1 - i) as u32;
                    i = j + 1;
                } else {
                    push!(Tok::LBrace, l0, c0);
                    i += 1;
                    col += 1;
                }
            }
            '}' => {
                push!(Tok::RBrace, l0, c0);
                i += 1;
                col += 1;
            }
            ',' => {
                push!(Tok::Comma, l0, c0);
                i += 1;
                col += 1;
            }
            ';' => {
                push!(Tok::Semi, l0, c0);
                i += 1;
                col += 1;
            }
            ':' => {
                push!(Tok::Colon, l0, c0);
                i += 1;
                col += 1;
            }
            '=' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    push!(Tok::EqEq, l0, c0);
                    i += 2;
                    col += 2;
                } else {
                    push!(Tok::Assign, l0, c0);
                    i += 1;
                    col += 1;
                }
            }
            '!' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    push!(Tok::Ne, l0, c0);
                    i += 2;
                    col += 2;
                } else {
                    return Err(DslError::new("unexpected '!'", l0, c0));
                }
            }
            '<' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    push!(Tok::Le, l0, c0);
                    i += 2;
                    col += 2;
                } else {
                    push!(Tok::Lt, l0, c0);
                    i += 1;
                    col += 1;
                }
            }
            '>' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    push!(Tok::Ge, l0, c0);
                    i += 2;
                    col += 2;
                } else {
                    push!(Tok::Gt, l0, c0);
                    i += 1;
                    col += 1;
                }
            }
            '-' => {
                push!(Tok::Minus, l0, c0);
                i += 1;
                col += 1;
            }
            '&' => {
                push!(Tok::Amp, l0, c0);
                i += 1;
                col += 1;
            }
            '*' => {
                push!(Tok::Star, l0, c0);
                i += 1;
                col += 1;
            }
            other => {
                return Err(DslError::new(
                    format!("unexpected character {other:?}"),
                    l0,
                    c0,
                ));
            }
        }
    }
    out.push(Token {
        tok: Tok::Eof,
        line,
        col,
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn lexes_basic_star_header() {
        let k = kinds("star JoinRoot(T1, T2, P) = [");
        assert_eq!(
            k,
            vec![
                Tok::Ident("star".into()),
                Tok::Ident("JoinRoot".into()),
                Tok::LParen,
                Tok::Ident("T1".into()),
                Tok::Comma,
                Tok::Ident("T2".into()),
                Tok::Comma,
                Tok::Ident("P".into()),
                Tok::RParen,
                Tok::Assign,
                Tok::LBracket,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn empty_set_vs_brace() {
        assert_eq!(kinds("{}")[0], Tok::EmptySet);
        assert_eq!(kinds("{ }")[0], Tok::EmptySet);
        assert_eq!(kinds("{ x }")[0], Tok::LBrace);
    }

    #[test]
    fn comments_are_skipped() {
        let k = kinds("a // comment\nb -- another\nc");
        assert_eq!(k.len(), 4); // a b c EOF
    }

    #[test]
    fn operators() {
        let k = kinds("== != <= >= < > = - & *");
        assert_eq!(
            k,
            vec![
                Tok::EqEq,
                Tok::Ne,
                Tok::Le,
                Tok::Ge,
                Tok::Lt,
                Tok::Gt,
                Tok::Assign,
                Tok::Minus,
                Tok::Amp,
                Tok::Star,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn strings_and_numbers() {
        let k = kinds("'heap' \"btree\" 42");
        assert_eq!(
            k,
            vec![
                Tok::Str("heap".into()),
                Tok::Str("btree".into()),
                Tok::Num(42),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn positions_reported() {
        let toks = lex("a\n  b").unwrap();
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }

    #[test]
    fn errors() {
        assert!(lex("'unterminated").is_err());
        assert!(lex("a ! b").is_err());
        assert!(lex("a $ b").is_err());
        assert!(lex("99999999999999999999999999").is_err());
    }
}

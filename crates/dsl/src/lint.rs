//! Structural lints over the parsed rule AST.
//!
//! The DSL deliberately accepts any well-formed rule text — §5's promise is
//! that "new STARs can be added ... without impacting the Starburst system
//! code at all", and a too-eager compiler would undercut that. These checks
//! instead flag *legal but suspect* shapes as warnings at load time:
//!
//! * a declared parameter that no binding or alternative ever reads,
//! * an alternative that can never fire because an earlier unconditional
//!   (or `otherwise`) alternative in an *exclusive* group shadows it,
//! * a STAR whose every alternative references itself — recursion with no
//!   base case, guaranteed to hit the engine's depth limit.
//!
//! Warnings carry the STAR name and source line so a rule author can fix
//! the file without reading compiler internals.

use crate::ast::{AltAst, ExprAst, GuardAst, RuleFileAst, StarDefAst};

/// What a lint warning is about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LintKind {
    /// A STAR parameter is never referenced by any binding or alternative.
    UnusedParameter,
    /// An alternative in an exclusive group follows an unconditional or
    /// `otherwise` alternative and can never be selected.
    UnreachableAlternative,
    /// Every alternative of the STAR references the STAR itself: the
    /// recursion has no base case and can only end at the depth limit.
    NoBaseCase,
}

impl std::fmt::Display for LintKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LintKind::UnusedParameter => write!(f, "unused-parameter"),
            LintKind::UnreachableAlternative => write!(f, "unreachable-alternative"),
            LintKind::NoBaseCase => write!(f, "no-base-case"),
        }
    }
}

/// One structural warning, tied to a STAR and a source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintWarning {
    pub kind: LintKind,
    pub star: String,
    pub line: u32,
    pub message: String,
}

impl std::fmt::Display for LintWarning {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[{}] STAR {} (line {}): {}",
            self.kind, self.star, self.line, self.message
        )
    }
}

/// Run every lint over a parsed rule file.
pub fn lint_rules(ast: &RuleFileAst) -> Vec<LintWarning> {
    let mut out = Vec::new();
    for star in &ast.stars {
        lint_unused_params(star, &mut out);
        lint_unreachable_alts(star, &mut out);
        lint_no_base_case(star, &mut out);
    }
    out
}

fn lint_unused_params(star: &StarDefAst, out: &mut Vec<LintWarning>) {
    let mut used = Vec::new();
    for (_, e) in &star.bindings {
        collect_idents(e, &mut used);
    }
    for alt in star.body.alternatives() {
        collect_alt_idents(alt, &mut used);
    }
    for p in &star.params {
        // A leading underscore is the conventional "intentionally unused"
        // marker, as in Rust.
        if !p.starts_with('_') && !used.iter().any(|u| u == p) {
            out.push(LintWarning {
                kind: LintKind::UnusedParameter,
                star: star.name.clone(),
                line: star.line,
                message: format!("parameter '{p}' is never referenced"),
            });
        }
    }
}

fn lint_unreachable_alts(star: &StarDefAst, out: &mut Vec<LintWarning>) {
    // Only exclusive groups commit to the first alternative whose guard
    // holds; in an inclusive group every alternative is considered.
    if !star.body.exclusive() {
        return;
    }
    let alts = star.body.alternatives();
    let mut terminal: Option<u32> = None;
    for alt in alts {
        if let Some(term_line) = terminal {
            out.push(LintWarning {
                kind: LintKind::UnreachableAlternative,
                star: star.name.clone(),
                line: alt.line,
                message: format!(
                    "alternative can never fire: the unconditional alternative \
                     at line {term_line} always wins in this exclusive group"
                ),
            });
            continue;
        }
        if matches!(alt.guard, GuardAst::None | GuardAst::Otherwise) {
            terminal = Some(alt.line);
        }
    }
}

fn lint_no_base_case(star: &StarDefAst, out: &mut Vec<LintWarning>) {
    let alts = star.body.alternatives();
    if alts.is_empty() {
        return;
    }
    let all_recurse = alts.iter().all(|alt| {
        let mut calls = Vec::new();
        collect_calls(&alt.expr, &mut calls);
        if let Some((_, set)) = &alt.forall {
            collect_calls(set, &mut calls);
        }
        calls.iter().any(|c| c == &star.name)
    });
    if all_recurse {
        out.push(LintWarning {
            kind: LintKind::NoBaseCase,
            star: star.name.clone(),
            line: star.line,
            message: format!(
                "every alternative references {} itself; the recursion has \
                 no base case and can only end at the depth limit",
                star.name
            ),
        });
    }
}

fn collect_alt_idents(alt: &AltAst, out: &mut Vec<String>) {
    if let Some((_, set)) = &alt.forall {
        collect_idents(set, out);
    }
    collect_idents(&alt.expr, out);
    if let GuardAst::If(cond) = &alt.guard {
        collect_idents(cond, out);
    }
}

/// Every identifier an expression reads (parameters, bindings, bare
/// symbols — over-approximate on purpose: a false "used" is harmless).
fn collect_idents(e: &ExprAst, out: &mut Vec<String>) {
    match e {
        ExprAst::Ident(n) => out.push(n.clone()),
        ExprAst::Call(_, args) => {
            for a in args {
                collect_idents(a, out);
            }
        }
        ExprAst::Binary(_, l, r) => {
            collect_idents(l, out);
            collect_idents(r, out);
        }
        ExprAst::Not(x) => collect_idents(x, out),
        ExprAst::WithReqs(x, reqs) => {
            collect_idents(x, out);
            for r in reqs {
                match r {
                    crate::ast::ReqAst::Order(e)
                    | crate::ast::ReqAst::Site(e)
                    | crate::ast::ReqAst::Paths(e) => collect_idents(e, out),
                    crate::ast::ReqAst::Temp => {}
                }
            }
        }
        ExprAst::Num(_) | ExprAst::Str(_) | ExprAst::AllCols | ExprAst::EmptySet => {}
    }
}

/// Every call-target name in an expression (STARs, LOLEPOPs, natives).
fn collect_calls(e: &ExprAst, out: &mut Vec<String>) {
    match e {
        ExprAst::Call(n, args) => {
            out.push(n.clone());
            for a in args {
                collect_calls(a, out);
            }
        }
        ExprAst::Binary(_, l, r) => {
            collect_calls(l, out);
            collect_calls(r, out);
        }
        ExprAst::Not(x) => collect_calls(x, out),
        ExprAst::WithReqs(x, reqs) => {
            collect_calls(x, out);
            for r in reqs {
                match r {
                    crate::ast::ReqAst::Order(e)
                    | crate::ast::ReqAst::Site(e)
                    | crate::ast::ReqAst::Paths(e) => collect_calls(e, out),
                    crate::ast::ReqAst::Temp => {}
                }
            }
        }
        ExprAst::Num(_)
        | ExprAst::Str(_)
        | ExprAst::Ident(_)
        | ExprAst::AllCols
        | ExprAst::EmptySet => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_rules;

    fn lints(text: &str) -> Vec<LintWarning> {
        lint_rules(&parse_rules(text).expect("parse"))
    }

    #[test]
    fn unused_parameter_flagged() {
        let ws = lints("star S(T, P) = ACCESS(T);");
        assert_eq!(ws.len(), 1);
        assert_eq!(ws[0].kind, LintKind::UnusedParameter);
        assert!(ws[0].message.contains("'P'"));
        assert_eq!(ws[0].star, "S");
    }

    #[test]
    fn underscore_parameter_not_flagged() {
        assert!(lints("star S(T, _P) = ACCESS(T);").is_empty());
    }

    #[test]
    fn parameter_used_via_binding_not_flagged() {
        let ws = lints("star S(T, P) = with JP = join_preds(P) ACCESS(T, JP);");
        assert!(ws.is_empty(), "{ws:?}");
    }

    #[test]
    fn unreachable_after_unconditional_in_exclusive() {
        let ws = lints("star S(T) = {\n    ACCESS(T);\n    GET(T) if is_empty(T);\n}");
        assert_eq!(ws.len(), 1);
        assert_eq!(ws[0].kind, LintKind::UnreachableAlternative);
        assert_eq!(ws[0].line, 3);
    }

    #[test]
    fn unreachable_after_otherwise_in_exclusive() {
        let ws = lints(
            "star S(T) = {\n    ACCESS(T) if is_empty(T);\n    GET(T) otherwise;\n    STORE(T) if is_empty(T);\n}",
        );
        assert_eq!(ws.len(), 1);
        assert_eq!(ws[0].kind, LintKind::UnreachableAlternative);
        assert_eq!(ws[0].line, 4);
    }

    #[test]
    fn inclusive_group_never_unreachable() {
        let ws = lints("star S(T) = [\n    ACCESS(T);\n    GET(T) if is_empty(T);\n]");
        assert!(ws.is_empty(), "{ws:?}");
    }

    #[test]
    fn self_recursion_without_base_case_flagged() {
        let ws = lints("star S(T) = S(T);");
        assert_eq!(ws.len(), 1);
        assert_eq!(ws[0].kind, LintKind::NoBaseCase);
    }

    #[test]
    fn self_recursion_with_base_case_not_flagged() {
        let ws = lints("star S(T) = {\n    ACCESS(T) if is_empty(T);\n    S(T) otherwise;\n}");
        assert!(ws.is_empty(), "{ws:?}");
    }

    #[test]
    fn clean_builtin_style_rule_is_quiet() {
        let ws = lints(
            "star JRoot(T1, T2, P) = [\n    JOIN(NL, Glue(T1, {}), Glue(T2, P), P, {});\n    JRoot(T2, T1, P);\n]",
        );
        assert!(ws.is_empty(), "{ws:?}");
    }
}

//! The STAR rule AST.

/// A parsed rule file: an ordered list of STAR definitions.
#[derive(Debug, Clone, PartialEq)]
pub struct RuleFileAst {
    pub stars: Vec<StarDefAst>,
}

/// One STAR definition (§2.2): a named, parametrized non-terminal with
/// optional `with` bindings and one or more alternative definitions.
#[derive(Debug, Clone, PartialEq)]
pub struct StarDefAst {
    pub name: String,
    pub params: Vec<String>,
    /// `with x = e, y = e` bindings, evaluated before the alternatives
    /// (the paper's "where" clauses).
    pub bindings: Vec<(String, ExprAst)>,
    pub body: BodyAst,
    pub line: u32,
}

/// The body of a STAR.
#[derive(Debug, Clone, PartialEq)]
pub enum BodyAst {
    /// `[ alts ]` (inclusive) or `{ alts }` (exclusive, first match wins).
    Alts { exclusive: bool, alts: Vec<AltAst> },
    /// A single alternative with no brackets.
    Single(AltAst),
}

impl BodyAst {
    pub fn alternatives(&self) -> &[AltAst] {
        match self {
            BodyAst::Alts { alts, .. } => alts,
            BodyAst::Single(a) => std::slice::from_ref(a),
        }
    }

    pub fn exclusive(&self) -> bool {
        matches!(
            self,
            BodyAst::Alts {
                exclusive: true,
                ..
            }
        )
    }
}

/// One alternative definition: optional ∀-binder, the plan expression, and
/// an optional condition of applicability.
#[derive(Debug, Clone, PartialEq)]
pub struct AltAst {
    pub forall: Option<(String, ExprAst)>,
    pub expr: ExprAst,
    pub guard: GuardAst,
    pub line: u32,
}

/// The condition of applicability.
#[derive(Debug, Clone, PartialEq)]
pub enum GuardAst {
    None,
    If(ExprAst),
    Otherwise,
}

/// Required-property annotations: `T[order = e, site = e, temp, paths >= e]`.
#[derive(Debug, Clone, PartialEq)]
pub enum ReqAst {
    Order(ExprAst),
    Site(ExprAst),
    Temp,
    Paths(ExprAst),
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOpAst {
    Or,
    And,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    In,
    Subset,
    Union,
    Minus,
    Intersect,
}

/// Expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum ExprAst {
    Num(i64),
    Str(String),
    /// A parameter, binding, or bare symbol (LOLEPOP flavors like `NL` are
    /// bare symbols resolved by the compiler).
    Ident(String),
    /// `*` — all columns of the accessed stream (§4.5.2).
    AllCols,
    /// `{}` — the empty set.
    EmptySet,
    /// `name(args...)`: a STAR, LOLEPOP, Glue, or native-function reference.
    Call(String, Vec<ExprAst>),
    Binary(BinOpAst, Box<ExprAst>, Box<ExprAst>),
    Not(Box<ExprAst>),
    /// `expr[reqs]` — attach required properties to a stream.
    WithReqs(Box<ExprAst>, Vec<ReqAst>),
}

impl ExprAst {
    /// Convenience: is this a call to the given name?
    pub fn is_call_to(&self, name: &str) -> bool {
        matches!(self, ExprAst::Call(n, _) if n == name)
    }
}

//! Recursive-descent parser for rule files.

use crate::ast::{AltAst, BinOpAst, BodyAst, ExprAst, GuardAst, ReqAst, RuleFileAst, StarDefAst};
use crate::error::{DslError, Result};
use crate::lexer::{lex, Tok, Token};

/// Parse a rule file into its AST.
pub fn parse_rules(src: &str) -> Result<RuleFileAst> {
    let toks = lex(src)?;
    let mut p = Parser { toks, at: 0 };
    let mut stars = Vec::new();
    while !p.at_eof() {
        stars.push(p.star_def()?);
    }
    Ok(RuleFileAst { stars })
}

struct Parser {
    toks: Vec<Token>,
    at: usize,
}

impl Parser {
    fn cur(&self) -> &Token {
        &self.toks[self.at.min(self.toks.len() - 1)]
    }

    fn at_eof(&self) -> bool {
        self.cur().tok == Tok::Eof
    }

    fn err(&self, msg: impl Into<String>) -> DslError {
        let t = self.cur();
        DslError::new(msg, t.line, t.col)
    }

    fn bump(&mut self) -> Token {
        let t = self.cur().clone();
        self.at += 1;
        t
    }

    fn eat(&mut self, t: &Tok) -> bool {
        if &self.cur().tok == t {
            self.at += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: Tok, what: &str) -> Result<()> {
        if self.eat(&t) {
            Ok(())
        } else {
            Err(self.err(format!("expected {what}, found {:?}", self.cur().tok)))
        }
    }

    fn at_kw(&self, kw: &str) -> bool {
        matches!(&self.cur().tok, Tok::Ident(w) if w == kw)
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.at_kw(kw) {
            self.at += 1;
            true
        } else {
            false
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.bump().tok {
            Tok::Ident(w) => Ok(w),
            other => Err(self.err(format!("expected identifier, found {other:?}"))),
        }
    }

    fn star_def(&mut self) -> Result<StarDefAst> {
        let line = self.cur().line;
        if !self.eat_kw("star") {
            return Err(self.err("expected 'star'"));
        }
        let name = self.ident()?;
        self.expect(Tok::LParen, "'('")?;
        let mut params = Vec::new();
        if !self.eat(&Tok::RParen) {
            loop {
                params.push(self.ident()?);
                if self.eat(&Tok::RParen) {
                    break;
                }
                self.expect(Tok::Comma, "',' or ')'")?;
            }
        }
        self.expect(Tok::Assign, "'='")?;
        let mut bindings = Vec::new();
        if self.eat_kw("with") {
            loop {
                let n = self.ident()?;
                self.expect(Tok::Assign, "'=' in with-binding")?;
                let e = self.expr()?;
                bindings.push((n, e));
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
        }
        let body = self.body()?;
        Ok(StarDefAst {
            name,
            params,
            bindings,
            body,
            line,
        })
    }

    fn body(&mut self) -> Result<BodyAst> {
        if self.eat(&Tok::LBracket) {
            let alts = self.alts(&Tok::RBracket)?;
            Ok(BodyAst::Alts {
                exclusive: false,
                alts,
            })
        } else if self.eat(&Tok::LBrace) {
            let alts = self.alts(&Tok::RBrace)?;
            Ok(BodyAst::Alts {
                exclusive: true,
                alts,
            })
        } else {
            let a = self.alt()?;
            self.eat(&Tok::Semi);
            Ok(BodyAst::Single(a))
        }
    }

    fn alts(&mut self, close: &Tok) -> Result<Vec<AltAst>> {
        let mut out = Vec::new();
        while !self.eat(close) {
            if self.at_eof() {
                return Err(self.err("unterminated alternative list"));
            }
            let a = self.alt()?;
            self.expect(Tok::Semi, "';' after alternative")?;
            out.push(a);
        }
        if out.is_empty() {
            return Err(self.err("empty alternative list"));
        }
        Ok(out)
    }

    fn alt(&mut self) -> Result<AltAst> {
        let line = self.cur().line;
        let forall = if self.eat_kw("forall") {
            let var = self.ident()?;
            if !self.eat_kw("in") {
                return Err(self.err("expected 'in' after forall variable"));
            }
            let set = self.expr()?;
            self.expect(Tok::Colon, "':' after forall set")?;
            Some((var, set))
        } else {
            None
        };
        let expr = self.expr()?;
        let guard = if self.eat_kw("if") {
            GuardAst::If(self.expr()?)
        } else if self.eat_kw("otherwise") {
            GuardAst::Otherwise
        } else {
            GuardAst::None
        };
        Ok(AltAst {
            forall,
            expr,
            guard,
            line,
        })
    }

    // Precedence: or < and < not < cmp < set-ops < postfix < primary.
    fn expr(&mut self) -> Result<ExprAst> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<ExprAst> {
        let mut e = self.and_expr()?;
        while self.at_kw("or") {
            self.at += 1;
            let r = self.and_expr()?;
            e = ExprAst::Binary(BinOpAst::Or, Box::new(e), Box::new(r));
        }
        Ok(e)
    }

    fn and_expr(&mut self) -> Result<ExprAst> {
        let mut e = self.not_expr()?;
        while self.at_kw("and") {
            self.at += 1;
            let r = self.not_expr()?;
            e = ExprAst::Binary(BinOpAst::And, Box::new(e), Box::new(r));
        }
        Ok(e)
    }

    fn not_expr(&mut self) -> Result<ExprAst> {
        if self.eat_kw("not") {
            let e = self.not_expr()?;
            return Ok(ExprAst::Not(Box::new(e)));
        }
        self.cmp_expr()
    }

    fn cmp_expr(&mut self) -> Result<ExprAst> {
        let e = self.set_expr()?;
        let op = match &self.cur().tok {
            Tok::EqEq => Some(BinOpAst::Eq),
            Tok::Ne => Some(BinOpAst::Ne),
            Tok::Lt => Some(BinOpAst::Lt),
            Tok::Le => Some(BinOpAst::Le),
            Tok::Gt => Some(BinOpAst::Gt),
            Tok::Ge => Some(BinOpAst::Ge),
            Tok::Ident(w) if w == "in" => Some(BinOpAst::In),
            Tok::Ident(w) if w == "subset" => Some(BinOpAst::Subset),
            _ => None,
        };
        if let Some(op) = op {
            self.at += 1;
            let r = self.set_expr()?;
            return Ok(ExprAst::Binary(op, Box::new(e), Box::new(r)));
        }
        Ok(e)
    }

    fn set_expr(&mut self) -> Result<ExprAst> {
        let mut e = self.postfix()?;
        loop {
            let op = match &self.cur().tok {
                Tok::Minus => BinOpAst::Minus,
                Tok::Amp => BinOpAst::Intersect,
                Tok::Ident(w) if w == "union" => BinOpAst::Union,
                _ => break,
            };
            self.at += 1;
            let r = self.postfix()?;
            e = ExprAst::Binary(op, Box::new(e), Box::new(r));
        }
        Ok(e)
    }

    /// Is the `[` at the current position the start of a requirements list
    /// (as opposed to a bracketed alternative body following a with-binding)?
    /// Requirements start with one of the four property keywords followed by
    /// `=`, `>=`, `,` or `]`; a body alternative never does.
    fn at_requirements(&self) -> bool {
        if self.cur().tok != Tok::LBracket {
            return false;
        }
        let next = &self.toks[(self.at + 1).min(self.toks.len() - 1)].tok;
        let after = &self.toks[(self.at + 2).min(self.toks.len() - 1)].tok;
        match next {
            Tok::Ident(w) if w == "order" || w == "site" => *after == Tok::Assign,
            Tok::Ident(w) if w == "temp" => {
                matches!(after, Tok::Comma | Tok::RBracket)
            }
            Tok::Ident(w) if w == "paths" => *after == Tok::Ge,
            _ => false,
        }
    }

    fn postfix(&mut self) -> Result<ExprAst> {
        let mut e = self.primary()?;
        while self.at_requirements() && self.eat(&Tok::LBracket) {
            let mut reqs = Vec::new();
            loop {
                reqs.push(self.req()?);
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
            self.expect(Tok::RBracket, "']' after requirements")?;
            e = ExprAst::WithReqs(Box::new(e), reqs);
        }
        Ok(e)
    }

    fn req(&mut self) -> Result<ReqAst> {
        let name = self.ident()?;
        match name.as_str() {
            "order" => {
                self.expect(Tok::Assign, "'=' after 'order'")?;
                Ok(ReqAst::Order(self.expr()?))
            }
            "site" => {
                self.expect(Tok::Assign, "'=' after 'site'")?;
                Ok(ReqAst::Site(self.expr()?))
            }
            "temp" => Ok(ReqAst::Temp),
            "paths" => {
                self.expect(Tok::Ge, "'>=' after 'paths'")?;
                Ok(ReqAst::Paths(self.expr()?))
            }
            other => Err(self.err(format!(
                "unknown required property '{other}' (expected order/site/temp/paths)"
            ))),
        }
    }

    fn primary(&mut self) -> Result<ExprAst> {
        match self.bump().tok {
            Tok::Num(n) => Ok(ExprAst::Num(n)),
            Tok::Str(s) => Ok(ExprAst::Str(s)),
            Tok::Star => Ok(ExprAst::AllCols),
            Tok::EmptySet => Ok(ExprAst::EmptySet),
            Tok::LParen => {
                let e = self.expr()?;
                self.expect(Tok::RParen, "')'")?;
                Ok(e)
            }
            Tok::Ident(name) => {
                if self.eat(&Tok::LParen) {
                    let mut args = Vec::new();
                    if !self.eat(&Tok::RParen) {
                        loop {
                            args.push(self.expr()?);
                            if self.eat(&Tok::RParen) {
                                break;
                            }
                            self.expect(Tok::Comma, "',' or ')' in argument list")?;
                        }
                    }
                    Ok(ExprAst::Call(name, args))
                } else {
                    Ok(ExprAst::Ident(name))
                }
            }
            other => Err(self.err(format!("expected expression, found {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_join_root() {
        let f = parse_rules(
            "star JoinRoot(T1, T2, P) = [\n  PermutedJoin(T1, T2, P);\n  PermutedJoin(T2, T1, P);\n]",
        )
        .unwrap();
        assert_eq!(f.stars.len(), 1);
        let s = &f.stars[0];
        assert_eq!(s.name, "JoinRoot");
        assert_eq!(s.params, vec!["T1", "T2", "P"]);
        assert!(!s.body.exclusive());
        assert_eq!(s.body.alternatives().len(), 2);
        assert!(s.body.alternatives()[0].expr.is_call_to("PermutedJoin"));
    }

    #[test]
    fn parses_exclusive_body_with_guards() {
        let f = parse_rules(
            "star SitedJoin(T1, T2, P) = {\n\
               JMeth(T1, T2[temp], P)  if count(T2) > 1 or current_site(T2) != required_site(T2);\n\
               JMeth(T1, T2, P)        otherwise;\n\
             }",
        )
        .unwrap();
        let s = &f.stars[0];
        assert!(s.body.exclusive());
        let alts = s.body.alternatives();
        assert!(matches!(alts[0].guard, GuardAst::If(_)));
        assert!(matches!(alts[1].guard, GuardAst::Otherwise));
        // T2[temp] parsed as WithReqs.
        if let ExprAst::Call(_, args) = &alts[0].expr {
            assert!(matches!(&args[1], ExprAst::WithReqs(_, reqs) if reqs == &vec![ReqAst::Temp]));
        } else {
            panic!("expected call");
        }
    }

    #[test]
    fn parses_forall() {
        let f = parse_rules(
            "star PermutedJoin(T1, T2, P) = {\n\
               SitedJoin(T1, T2, P) if local_query();\n\
               forall s in candidate_sites(): RemoteJoin(T1, T2, P, s);\n\
             }",
        )
        .unwrap();
        let alts = f.stars[0].body.alternatives();
        assert!(alts[0].forall.is_none());
        let (var, set) = alts[1].forall.as_ref().unwrap();
        assert_eq!(var, "s");
        assert!(set.is_call_to("candidate_sites"));
    }

    #[test]
    fn parses_with_bindings_and_set_ops() {
        let f = parse_rules(
            "star JMeth(T1, T2, P) =\n\
               with JP = join_preds(P), IP = inner_preds(P, T2)\n\
               [ JOIN(NL, Glue(T1, {}), Glue(T2, JP union IP), JP, P - (JP union IP)); ]",
        )
        .unwrap();
        let s = &f.stars[0];
        assert_eq!(s.bindings.len(), 2);
        assert_eq!(s.bindings[0].0, "JP");
        let alt = &s.body.alternatives()[0];
        if let ExprAst::Call(name, args) = &alt.expr {
            assert_eq!(name, "JOIN");
            assert_eq!(args.len(), 5);
            assert!(matches!(args[0], ExprAst::Ident(ref n) if n == "NL"));
            assert!(matches!(args[1], ExprAst::Call(ref n, _) if n == "Glue"));
            assert!(matches!(args[4], ExprAst::Binary(BinOpAst::Minus, _, _)));
        } else {
            panic!();
        }
    }

    #[test]
    fn parses_requirements_with_expressions() {
        let f = parse_rules(
            "star R(T, s) = Glue(T[order = cols(sp(), T), site = s, paths >= ix(T)], {});",
        )
        .unwrap();
        let alt = &f.stars[0].body.alternatives()[0];
        if let ExprAst::Call(_, args) = &alt.expr {
            if let ExprAst::WithReqs(_, reqs) = &args[0] {
                assert_eq!(reqs.len(), 3);
                assert!(matches!(reqs[0], ReqAst::Order(_)));
                assert!(matches!(reqs[1], ReqAst::Site(_)));
                assert!(matches!(reqs[2], ReqAst::Paths(_)));
                return;
            }
        }
        panic!("requirements not parsed");
    }

    #[test]
    fn parses_all_cols_star() {
        let f =
            parse_rules("star F(T2, IP, JP) = TableAccess(Glue(T2[temp], IP), *, JP);").unwrap();
        let alt = &f.stars[0].body.alternatives()[0];
        if let ExprAst::Call(_, args) = &alt.expr {
            assert_eq!(args[1], ExprAst::AllCols);
        } else {
            panic!();
        }
    }

    #[test]
    fn boolean_precedence() {
        let f = parse_rules("star C(a, b, c) = x() if a and not b or c;").unwrap();
        let alt = &f.stars[0].body.alternatives()[0];
        // (a and (not b)) or c
        if let GuardAst::If(ExprAst::Binary(BinOpAst::Or, l, _)) = &alt.guard {
            assert!(matches!(**l, ExprAst::Binary(BinOpAst::And, _, _)));
        } else {
            panic!("wrong precedence: {:?}", alt.guard);
        }
    }

    #[test]
    fn multiple_stars_in_one_file() {
        let f = parse_rules("star A(x) = f(x);\n// comment between\nstar B(y) = [ g(y); h(y); ]")
            .unwrap();
        assert_eq!(f.stars.len(), 2);
        assert_eq!(f.stars[1].body.alternatives().len(), 2);
    }

    #[test]
    fn errors_have_positions() {
        let e = parse_rules("star A(x) = [ f(x) ]").unwrap_err(); // missing ';'
        assert!(e.line >= 1 && e.col >= 1);
        assert!(parse_rules("star A = f();").is_err()); // missing params
        assert!(parse_rules("star A(x) = [ ]").is_err()); // empty alts
        assert!(parse_rules("notstar A(x) = f(x);").is_err());
        assert!(parse_rules("star A(x) = T[weird = 1];").is_err());
        assert!(parse_rules("star A(x) = f(x").is_err());
    }
}

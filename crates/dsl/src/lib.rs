//! # starqo-dsl
//!
//! The textual STAR rule language — the concrete realization of the paper's
//! extensibility promise that strategy rules "may be input as data to the
//! optimizer" (§1) so that "new STARs can be added to that file without
//! impacting the Starburst system code at all" (§5, [LEE 88]).
//!
//! This crate is pure syntax: a lexer, a recursive-descent parser, and an
//! AST. It knows nothing about plans or catalogs; `starqo-core` lowers the
//! AST into executable rule structures, resolving names against its LOLEPOP
//! templates and native-function registry.
//!
//! ## Language
//!
//! ```text
//! // The paper's §4.1 join-permutation STAR:
//! star JoinRoot(T1, T2, P) = [
//!     PermutedJoin(T1, T2, P);
//!     PermutedJoin(T2, T1, P);
//! ]
//!
//! // §4.4, with bindings, an exclusive body, guards, requirements:
//! star JMeth(T1, T2, P) =
//!     with JP = join_preds(P),
//!          IP = inner_preds(P, T2),
//!          SP = sortable_preds(join_preds(P), T1, T2)
//!     [
//!         JOIN(NL, Glue(T1, {}), Glue(T2, JP union IP), JP, P - (JP union IP));
//!         JOIN(MG, Glue(T1[order = cols(SP, T1)], {}),
//!                  Glue(T2[order = cols(SP, T2)], IP),
//!                  SP, P - (IP union SP))                  if not is_empty(SP);
//!     ]
//! ```
//!
//! * `[ ... ]` encloses *inclusive* alternatives, `{ ... }` *exclusive* ones
//!   (first guard that holds wins) — the paper's square-vs-curly brackets.
//! * `forall x in e : body` maps an alternative over a set (§2.2's ∀).
//! * `T[order = e, site = e, temp, paths >= e]` attaches required
//!   properties to a stream argument (§3.2's bracket notation).
//! * `{}` is the empty set, `*` means "all columns" (§4.5.2).
//! * Set operators: `union`, `-`, `&`; comparisons `== != < <= > >=`,
//!   `in`, `subset`; boolean `and`, `or`, `not`; guards `if` / `otherwise`.

pub mod ast;
pub mod error;
pub mod lexer;
pub mod lint;
pub mod parser;

pub use ast::{AltAst, BinOpAst, BodyAst, ExprAst, GuardAst, ReqAst, RuleFileAst, StarDefAst};
pub use error::{DslError, Result};
pub use lint::{lint_rules, LintKind, LintWarning};
pub use parser::parse_rules;

//! DSL syntax errors with source positions.

use std::fmt;

/// A syntax error, with 1-based line and column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DslError {
    pub msg: String,
    pub line: u32,
    pub col: u32,
}

pub type Result<T> = std::result::Result<T, DslError>;

impl DslError {
    pub fn new(msg: impl Into<String>, line: u32, col: u32) -> Self {
        DslError {
            msg: msg.into(),
            line,
            col,
        }
    }
}

impl fmt::Display for DslError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "rule syntax error at {}:{}: {}",
            self.line, self.col, self.msg
        )
    }
}

impl std::error::Error for DslError {}

//! Parser robustness: arbitrary input never panics (errors are fine), and
//! generated well-formed rules always parse to the expected shape.

use proptest::prelude::*;
use starqo_dsl::{parse_rules, BodyAst, ExprAst};

fn ident() -> impl Strategy<Value = String> {
    "[A-Za-z][A-Za-z0-9_]{0,8}".prop_filter("not a keyword", |s| {
        !matches!(
            s.as_str(),
            "star" | "with" | "forall" | "in" | "if" | "otherwise" | "not" | "and" | "or"
                | "union" | "subset" | "order" | "site" | "temp" | "paths"
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    /// Arbitrary text: the parser returns Ok or Err, never panics.
    #[test]
    fn parser_never_panics(input in ".{0,200}") {
        let _ = parse_rules(&input);
    }

    /// Arbitrary near-grammar soup (denser in meaningful tokens).
    #[test]
    fn parser_never_panics_on_token_soup(
        tokens in prop::collection::vec(
            prop_oneof![
                Just("star".to_string()), Just("(".into()), Just(")".into()),
                Just("[".into()), Just("]".into()), Just("{".into()), Just("}".into()),
                Just("{}".into()), Just(";".into()), Just(",".into()), Just("=".into()),
                Just("if".into()), Just("otherwise".into()), Just("forall".into()),
                Just("in".into()), Just(":".into()), Just("with".into()),
                Just("union".into()), Just("-".into()), Just("Glue".into()),
                Just("JOIN".into()), Just("T1".into()), Just("42".into()),
                Just("'x'".into()), Just("*".into()),
            ],
            0..40,
        )
    ) {
        let _ = parse_rules(&tokens.join(" "));
    }

    /// Generated well-formed single-alternative stars always parse.
    #[test]
    fn wellformed_rules_parse(
        name in ident(),
        params in prop::collection::vec(ident(), 1..4),
        callee in ident(),
        guarded in any::<bool>(),
        exclusive in any::<bool>(),
    ) {
        prop_assume!(params.iter().collect::<std::collections::HashSet<_>>().len() == params.len());
        let args = params.join(", ");
        let body = format!("{callee}({args})");
        let alt = if guarded { format!("{body} if is_empty({})", params[0]) } else { body };
        let (open, close) = if exclusive { ("{", "}") } else { ("[", "]") };
        let text = format!("star {name}({args}) = {open} {alt}; {close}");
        let file = parse_rules(&text).unwrap();
        prop_assert_eq!(file.stars.len(), 1);
        let star = &file.stars[0];
        prop_assert_eq!(&star.name, &name);
        prop_assert_eq!(&star.params, &params);
        prop_assert_eq!(star.body.exclusive(), exclusive);
        match &star.body {
            BodyAst::Alts { alts, .. } => {
                prop_assert_eq!(alts.len(), 1);
                prop_assert!(matches!(&alts[0].expr, ExprAst::Call(n, a)
                    if n == &callee && a.len() == params.len()));
            }
            BodyAst::Single(_) => prop_assert!(false, "expected bracketed body"),
        }
    }
}

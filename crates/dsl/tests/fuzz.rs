//! Parser robustness: arbitrary input never panics (errors are fine), and
//! generated well-formed rules always parse to the expected shape.
//!
//! Seeded deterministic randomness (splitmix64) keeps this offline-friendly;
//! the dsl crate stays dependency-free.

use starqo_dsl::{parse_rules, BodyAst, ExprAst};

struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

const KEYWORDS: [&str; 15] = [
    "star",
    "with",
    "forall",
    "in",
    "if",
    "otherwise",
    "not",
    "and",
    "or",
    "union",
    "subset",
    "order",
    "site",
    "temp",
    "paths",
];

/// Random identifier `[A-Za-z][A-Za-z0-9_]{0,8}` that is not a keyword.
fn ident(rng: &mut Rng) -> String {
    const HEAD: &[u8] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz";
    const TAIL: &[u8] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789_";
    loop {
        let mut s = String::new();
        s.push(HEAD[rng.below(HEAD.len())] as char);
        for _ in 0..rng.below(9) {
            s.push(TAIL[rng.below(TAIL.len())] as char);
        }
        if !KEYWORDS.contains(&s.as_str()) {
            return s;
        }
    }
}

/// Arbitrary text: the parser returns Ok or Err, never panics.
#[test]
fn parser_never_panics() {
    let mut rng = Rng(0xF00D);
    for _ in 0..256 {
        let len = rng.below(201);
        let input: String = (0..len)
            .map(|_| {
                // Mostly printable ASCII, occasionally something wider.
                match rng.below(10) {
                    0 => char::from_u32(0x20 + rng.next() as u32 % 0x2000).unwrap_or('·'),
                    _ => (0x20 + rng.below(0x5f) as u8) as char,
                }
            })
            .collect();
        let _ = parse_rules(&input);
    }
}

/// Arbitrary near-grammar soup (denser in meaningful tokens).
#[test]
fn parser_never_panics_on_token_soup() {
    const VOCAB: [&str; 25] = [
        "star",
        "(",
        ")",
        "[",
        "]",
        "{",
        "}",
        "{}",
        ";",
        ",",
        "=",
        "if",
        "otherwise",
        "forall",
        "in",
        ":",
        "with",
        "union",
        "-",
        "Glue",
        "JOIN",
        "T1",
        "42",
        "'x'",
        "*",
    ];
    let mut rng = Rng(0xBEEF);
    for _ in 0..256 {
        let n = rng.below(40);
        let text = (0..n)
            .map(|_| VOCAB[rng.below(VOCAB.len())])
            .collect::<Vec<_>>()
            .join(" ");
        let _ = parse_rules(&text);
    }
}

/// Generated well-formed single-alternative stars always parse.
#[test]
fn wellformed_rules_parse() {
    let mut rng = Rng(0xCAFE);
    for _ in 0..256 {
        let name = ident(&mut rng);
        let nparams = 1 + rng.below(3);
        let mut params: Vec<String> = Vec::new();
        while params.len() < nparams {
            let p = ident(&mut rng);
            if p != name && !params.contains(&p) {
                params.push(p);
            }
        }
        let callee = ident(&mut rng);
        let guarded = rng.below(2) == 1;
        let exclusive = rng.below(2) == 1;
        let args = params.join(", ");
        let body = format!("{callee}({args})");
        let alt = if guarded {
            format!("{body} if is_empty({})", params[0])
        } else {
            body
        };
        let (open, close) = if exclusive { ("{", "}") } else { ("[", "]") };
        let text = format!("star {name}({args}) = {open} {alt}; {close}");
        let file = parse_rules(&text).unwrap();
        assert_eq!(file.stars.len(), 1);
        let star = &file.stars[0];
        assert_eq!(star.name, name);
        assert_eq!(star.params, params);
        assert_eq!(star.body.exclusive(), exclusive);
        match &star.body {
            BodyAst::Alts { alts, .. } => {
                assert_eq!(alts.len(), 1);
                assert!(matches!(&alts[0].expr, ExprAst::Call(n, a)
                    if n == &callee && a.len() == params.len()));
            }
            BodyAst::Single(_) => panic!("expected bracketed body"),
        }
    }
}

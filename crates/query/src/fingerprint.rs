//! Canonical query fingerprints and prepared-query parameter slots.
//!
//! A serving layer that caches optimized plans needs a key under which
//! *textually different but semantically interchangeable* queries collide
//! on purpose: the paper's premise is that rule execution is re-runnable
//! data, and re-running it for `WHERE a = 1 AND b = 2` after having just
//! optimized `WHERE b = 2 AND a = 1` is pure waste. The fingerprint
//! therefore normalizes everything about a [`Query`] that does not change
//! the strategy space:
//!
//! * **table-list order** — quantifiers are stably re-ordered by table id;
//! * **conjunct order** — predicates are sorted by a canonical rendering;
//! * **comparison orientation** — `1 = a` becomes `a = 1` (operator
//!   flipped), and OR-disjuncts are sorted;
//! * **literal constants** — every constant becomes a typed bind-parameter
//!   slot `?k`, so `TIER = 1` and `TIER = 2` share one fingerprint (and
//!   one cached plan; the executor evaluates predicates against the
//!   *actual* query, so results stay exact).
//!
//! Canonicalization also produces the remapped [`Query`] itself (the
//! "canonical form"): plans cached under a fingerprint reference
//! quantifiers and predicates by their canonical ids, so any query with
//! the same fingerprint can execute the cached plan against its own
//! canonical form. Aliases never participate: they are names, not
//! semantics.

use std::fmt;

use starqo_catalog::Value;

use crate::pred::{PredExpr, PredId, Predicate};
use crate::qset::QId;
use crate::query::{Quantifier, Query};
use crate::scalar::{QCol, Scalar};

/// A canonical query fingerprint: the normalized text (exact cache key —
/// two queries with equal text are interchangeable up to constants) plus a
/// stable 64-bit FNV-1a hash of it (cheap display / sharding key).
#[derive(Debug, Clone)]
pub struct QueryFingerprint {
    pub hash: u64,
    pub text: String,
}

impl PartialEq for QueryFingerprint {
    fn eq(&self, other: &Self) -> bool {
        self.text == other.text
    }
}

impl Eq for QueryFingerprint {}

impl std::hash::Hash for QueryFingerprint {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.text.hash(state);
    }
}

impl fmt::Display for QueryFingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.hash)
    }
}

/// The canonical form of a query: the remapped/normalized [`Query`] (the
/// one to optimize *and* execute), its fingerprint, and the literal
/// constants extracted into bind-parameter slots, in slot order.
#[derive(Debug, Clone)]
pub struct CanonicalQuery {
    pub query: Query,
    pub fingerprint: QueryFingerprint,
    pub params: Vec<Value>,
}

/// Stable 64-bit FNV-1a (deterministic across processes and runs, unlike
/// `DefaultHasher`).
pub fn fnv1a64(text: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in text.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Canonicalize a query: normalize quantifier and predicate order, orient
/// comparisons, extract constants into slots, and fingerprint the result.
pub fn canonicalize(q: &Query) -> CanonicalQuery {
    // 1. Quantifier order: stable sort by table id. Stability keeps
    //    self-join quantifiers in their original relative order (swapping
    //    them may not be semantics-preserving, so we never conflate it).
    let mut order: Vec<usize> = (0..q.quantifiers.len()).collect();
    order.sort_by_key(|&i| (q.quantifiers[i].table.0, i));
    let mut new_of_old = vec![QId(0); q.quantifiers.len()];
    for (new, &old) in order.iter().enumerate() {
        new_of_old[old] = QId(new as u32);
    }
    let remap = |c: QCol| QCol::new(new_of_old[c.q.0 as usize], c.col);

    let quantifiers: Vec<Quantifier> = order
        .iter()
        .enumerate()
        .map(|(new, &old)| Quantifier {
            id: QId(new as u32),
            alias: q.quantifiers[old].alias.clone(),
            table: q.quantifiers[old].table,
        })
        .collect();

    // 2. Remap + orient every predicate, then sort conjuncts by their
    //    canonical keys. The abstract key (constants as typed `?`) decides
    //    order; the concrete key (constants rendered) breaks ties so
    //    structurally identical conjuncts order deterministically — and
    //    identically for any permutation of the same conjunct set.
    let mut preds: Vec<PredExpr> = q
        .predicates
        .iter()
        .map(|p| normalize_expr(remap_expr(&p.expr, &remap)))
        .collect();
    preds.sort_by_key(|e| {
        (
            render_expr(e, RenderMode::Abstract),
            render_expr(e, RenderMode::Concrete),
        )
    });
    let predicates: Vec<Predicate> = preds
        .into_iter()
        .enumerate()
        .map(|(i, expr)| Predicate {
            id: PredId(i as u32),
            expr,
        })
        .collect();

    let select: Vec<QCol> = q.select.iter().map(|&c| remap(c)).collect();
    let order_by: Vec<QCol> = q.order_by.iter().map(|&c| remap(c)).collect();

    // 3. Render the fingerprint text, numbering constant slots in
    //    canonical traversal order and extracting their values.
    let mut params = Vec::new();
    let mut text = String::from("Q[");
    for (i, qt) in quantifiers.iter().enumerate() {
        if i > 0 {
            text.push(',');
        }
        text.push_str(&format!("t{}", qt.table.0));
    }
    text.push_str("] W[");
    for (i, p) in predicates.iter().enumerate() {
        if i > 0 {
            text.push_str(" & ");
        }
        render_slots(&p.expr, &mut text, &mut params);
    }
    text.push_str("] S[");
    for (i, c) in select.iter().enumerate() {
        if i > 0 {
            text.push(',');
        }
        text.push_str(&c.to_string());
    }
    text.push_str("] O[");
    for (i, c) in order_by.iter().enumerate() {
        if i > 0 {
            text.push(',');
        }
        text.push_str(&c.to_string());
    }
    text.push_str(&format!("] @{}", q.query_site.0));

    let hash = fnv1a64(&text);
    CanonicalQuery {
        query: Query {
            quantifiers,
            predicates,
            select,
            order_by,
            query_site: q.query_site,
        },
        fingerprint: QueryFingerprint { hash, text },
        params,
    }
}

fn remap_scalar(s: &Scalar, remap: &impl Fn(QCol) -> QCol) -> Scalar {
    match s {
        Scalar::Col(c) => Scalar::Col(remap(*c)),
        Scalar::Const(v) => Scalar::Const(v.clone()),
        Scalar::Arith(op, l, r) => Scalar::Arith(
            *op,
            Box::new(remap_scalar(l, remap)),
            Box::new(remap_scalar(r, remap)),
        ),
    }
}

fn remap_expr(e: &PredExpr, remap: &impl Fn(QCol) -> QCol) -> PredExpr {
    match e {
        PredExpr::Cmp(op, l, r) => {
            PredExpr::Cmp(*op, remap_scalar(l, remap), remap_scalar(r, remap))
        }
        PredExpr::Or(ps) => PredExpr::Or(ps.iter().map(|p| remap_expr(p, remap)).collect()),
    }
}

/// Orient comparisons (smaller canonical side first, operator flipped to
/// compensate) and sort OR-disjuncts.
fn normalize_expr(e: PredExpr) -> PredExpr {
    match e {
        PredExpr::Cmp(op, l, r) => {
            let lk = (
                scalar_key(&l, RenderMode::Abstract),
                scalar_key(&l, RenderMode::Concrete),
            );
            let rk = (
                scalar_key(&r, RenderMode::Abstract),
                scalar_key(&r, RenderMode::Concrete),
            );
            if rk < lk {
                PredExpr::Cmp(op.flipped(), r, l)
            } else {
                PredExpr::Cmp(op, l, r)
            }
        }
        PredExpr::Or(ps) => {
            let mut ps: Vec<PredExpr> = ps.into_iter().map(normalize_expr).collect();
            ps.sort_by_key(|p| {
                (
                    render_expr(p, RenderMode::Abstract),
                    render_expr(p, RenderMode::Concrete),
                )
            });
            PredExpr::Or(ps)
        }
    }
}

#[derive(Clone, Copy, PartialEq)]
enum RenderMode {
    /// Constants as typed slots (`?:int`) — what the fingerprint keys on.
    Abstract,
    /// Constants rendered — deterministic tie-break for sorting only.
    Concrete,
}

fn scalar_key(s: &Scalar, mode: RenderMode) -> String {
    match s {
        Scalar::Col(c) => c.to_string(),
        Scalar::Const(v) => match mode {
            RenderMode::Abstract => format!(
                "?:{}",
                v.data_type()
                    .map(|t| t.to_string())
                    .unwrap_or_else(|| "null".into())
            ),
            RenderMode::Concrete => v.to_string(),
        },
        Scalar::Arith(op, l, r) => format!(
            "({} {} {})",
            scalar_key(l, mode),
            op.symbol(),
            scalar_key(r, mode)
        ),
    }
}

fn render_expr(e: &PredExpr, mode: RenderMode) -> String {
    match e {
        PredExpr::Cmp(op, l, r) => format!(
            "{} {} {}",
            scalar_key(l, mode),
            op.symbol(),
            scalar_key(r, mode)
        ),
        PredExpr::Or(ps) => {
            let parts: Vec<String> = ps.iter().map(|p| render_expr(p, mode)).collect();
            format!("({})", parts.join(" | "))
        }
    }
}

/// Render with numbered slots, pushing each constant into `params`.
fn render_slots(e: &PredExpr, out: &mut String, params: &mut Vec<Value>) {
    fn scalar(s: &Scalar, out: &mut String, params: &mut Vec<Value>) {
        match s {
            Scalar::Col(c) => out.push_str(&c.to_string()),
            Scalar::Const(v) => {
                let ty = v
                    .data_type()
                    .map(|t| t.to_string())
                    .unwrap_or_else(|| "null".into());
                out.push_str(&format!("?{}:{}", params.len(), ty));
                params.push(v.clone());
            }
            Scalar::Arith(op, l, r) => {
                out.push('(');
                scalar(l, out, params);
                out.push_str(&format!(" {} ", op.symbol()));
                scalar(r, out, params);
                out.push(')');
            }
        }
    }
    match e {
        PredExpr::Cmp(op, l, r) => {
            scalar(l, out, params);
            out.push_str(&format!(" {} ", op.symbol()));
            scalar(r, out, params);
        }
        PredExpr::Or(ps) => {
            out.push('(');
            for (i, p) in ps.iter().enumerate() {
                if i > 0 {
                    out.push_str(" | ");
                }
                render_slots(p, out, params);
            }
            out.push(')');
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pred::CmpOp;
    use crate::query::QueryBuilder;
    use starqo_catalog::{Catalog, ColId, DataType, StorageKind};

    fn cat() -> Catalog {
        Catalog::builder()
            .site("NY")
            .table("DEPT", "NY", StorageKind::Heap, 50)
            .column("DNO", DataType::Int, Some(50))
            .column("MGR", DataType::Str, Some(40))
            .table("EMP", "NY", StorageKind::Heap, 10_000)
            .column("NAME", DataType::Str, None)
            .column("DNO", DataType::Int, Some(50))
            .build()
            .unwrap()
    }

    /// DEPT⋈EMP with controllable table order, conjunct order, comparison
    /// orientation, and the MGR constant.
    fn build(tables_flipped: bool, preds_flipped: bool, cmp_flipped: bool, mgr: &str) -> Query {
        let cat = cat();
        let mut b = QueryBuilder::new();
        let (d, e) = if tables_flipped {
            let e = b.quantifier(&cat, "EMP", "E").unwrap();
            let d = b.quantifier(&cat, "DEPT", "D").unwrap();
            (d, e)
        } else {
            let d = b.quantifier(&cat, "DEPT", "D").unwrap();
            let e = b.quantifier(&cat, "EMP", "E").unwrap();
            (d, e)
        };
        let local = PredExpr::Cmp(
            CmpOp::Eq,
            Scalar::col(d, ColId(1)),
            Scalar::Const(Value::str(mgr)),
        );
        let join = if cmp_flipped {
            PredExpr::Cmp(
                CmpOp::Eq,
                Scalar::col(e, ColId(1)),
                Scalar::col(d, ColId(0)),
            )
        } else {
            PredExpr::Cmp(
                CmpOp::Eq,
                Scalar::col(d, ColId(0)),
                Scalar::col(e, ColId(1)),
            )
        };
        if preds_flipped {
            b.predicate(join).unwrap();
            b.predicate(local).unwrap();
        } else {
            b.predicate(local).unwrap();
            b.predicate(join).unwrap();
        }
        b.select(QCol::new(e, ColId(0)));
        b.build().unwrap()
    }

    #[test]
    fn invariant_under_table_pred_and_orientation_permutations() {
        let base = canonicalize(&build(false, false, false, "Haas"));
        for tables in [false, true] {
            for preds in [false, true] {
                for cmp in [false, true] {
                    let c = canonicalize(&build(tables, preds, cmp, "Haas"));
                    assert_eq!(
                        c.fingerprint, base.fingerprint,
                        "permutation ({tables},{preds},{cmp}) changed the fingerprint:\n{}\nvs\n{}",
                        c.fingerprint.text, base.fingerprint.text
                    );
                    // The canonical *query* must be structurally identical
                    // too: same predicate ids mean cached plans transfer.
                    assert_eq!(c.query.predicates.len(), base.query.predicates.len());
                    for (a, b) in c.query.predicates.iter().zip(&base.query.predicates) {
                        assert_eq!(a.expr, b.expr);
                    }
                }
            }
        }
    }

    #[test]
    fn constants_become_shared_slots() {
        let a = canonicalize(&build(false, false, false, "Haas"));
        let b = canonicalize(&build(true, true, true, "Smith"));
        assert_eq!(a.fingerprint, b.fingerprint, "constants must not key");
        assert_eq!(a.params.len(), 1);
        assert_eq!(b.params.len(), 1);
        assert_eq!(a.params[0].to_string(), "'Haas'");
        assert_eq!(b.params[0].to_string(), "'Smith'");
        assert!(
            a.fingerprint.text.contains("?0:str"),
            "{}",
            a.fingerprint.text
        );
    }

    #[test]
    fn different_shapes_do_not_collide() {
        let base = canonicalize(&build(false, false, false, "Haas"));
        // Drop the local predicate: different conjunct set.
        let cat = cat();
        let mut b = QueryBuilder::new();
        let d = b.quantifier(&cat, "DEPT", "D").unwrap();
        let e = b.quantifier(&cat, "EMP", "E").unwrap();
        b.predicate(PredExpr::Cmp(
            CmpOp::Eq,
            Scalar::col(d, ColId(0)),
            Scalar::col(e, ColId(1)),
        ))
        .unwrap();
        b.select(QCol::new(e, ColId(0)));
        let other = canonicalize(&b.build().unwrap());
        assert_ne!(other.fingerprint, base.fingerprint);
        assert_ne!(other.fingerprint.hash, base.fingerprint.hash);
        // Constant *type* does key: int vs string predicates differ.
        let mut b = QueryBuilder::new();
        let d = b.quantifier(&cat, "DEPT", "D").unwrap();
        let e = b.quantifier(&cat, "EMP", "E").unwrap();
        b.predicate(PredExpr::Cmp(
            CmpOp::Eq,
            Scalar::col(d, ColId(1)),
            Scalar::Const(Value::Int(7)),
        ))
        .unwrap();
        b.predicate(PredExpr::Cmp(
            CmpOp::Eq,
            Scalar::col(d, ColId(0)),
            Scalar::col(e, ColId(1)),
        ))
        .unwrap();
        b.select(QCol::new(e, ColId(0)));
        let int_pred = canonicalize(&b.build().unwrap());
        assert_ne!(int_pred.fingerprint, base.fingerprint);
    }

    #[test]
    fn or_disjunct_order_is_normalized() {
        let cat = cat();
        let mk = |flip: bool| {
            let mut b = QueryBuilder::new();
            let d = b.quantifier(&cat, "DEPT", "D").unwrap();
            let one = PredExpr::Cmp(
                CmpOp::Eq,
                Scalar::col(d, ColId(0)),
                Scalar::Const(Value::Int(1)),
            );
            let two = PredExpr::Cmp(
                CmpOp::Eq,
                Scalar::col(d, ColId(0)),
                Scalar::Const(Value::Int(2)),
            );
            let or = if flip {
                PredExpr::Or(vec![two.clone(), one.clone()])
            } else {
                PredExpr::Or(vec![one, two])
            };
            b.predicate(or).unwrap();
            b.select(QCol::new(d, ColId(1)));
            canonicalize(&b.build().unwrap())
        };
        let a = mk(false);
        let b = mk(true);
        assert_eq!(a.fingerprint, b.fingerprint);
        // Params align with the canonical (sorted) disjunct order for both.
        assert_eq!(a.params, b.params);
    }

    /// 10k structurally-varied random queries: equal hashes only for equal
    /// canonical texts (no 64-bit collisions across the sweep).
    #[test]
    fn no_hash_collisions_in_10k_seed_sweep() {
        use std::collections::HashMap;
        // A tiny deterministic PRNG (splitmix64) to avoid a dev-dependency.
        let mut state: u64 = 0x5EED;
        let mut next = move || {
            state = state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        let cat = cat();
        let mut seen: HashMap<u64, String> = HashMap::new();
        for _ in 0..10_000 {
            let mut b = QueryBuilder::new();
            let d = b.quantifier(&cat, "DEPT", "D").unwrap();
            let e = b.quantifier(&cat, "EMP", "E").unwrap();
            // Random conjunct set: each candidate predicate in/out, with
            // random operators — plenty of distinct shapes.
            let ops = [
                CmpOp::Eq,
                CmpOp::Ne,
                CmpOp::Lt,
                CmpOp::Le,
                CmpOp::Gt,
                CmpOp::Ge,
            ];
            let r = next();
            if r & 1 != 0 {
                b.predicate(PredExpr::Cmp(
                    ops[(r >> 1) as usize % 6],
                    Scalar::col(d, ColId(0)),
                    Scalar::col(e, ColId(1)),
                ))
                .unwrap();
            }
            if r & 2 != 0 {
                b.predicate(PredExpr::Cmp(
                    ops[(r >> 4) as usize % 6],
                    Scalar::col(d, ColId(1)),
                    Scalar::Const(Value::Int((next() % 1000) as i64)),
                ))
                .unwrap();
            }
            if r & 4 != 0 {
                b.predicate(PredExpr::Cmp(
                    ops[(r >> 7) as usize % 6],
                    Scalar::col(e, ColId(0)),
                    Scalar::Const(Value::str(format!("s{}", next() % 100))),
                ))
                .unwrap();
            }
            if r & 8 != 0 {
                b.predicate(PredExpr::Cmp(
                    ops[(r >> 10) as usize % 6],
                    Scalar::Arith(
                        crate::scalar::ArithOp::Add,
                        Box::new(Scalar::col(e, ColId(1))),
                        Box::new(Scalar::Const(Value::Int((next() % 16) as i64))),
                    ),
                    Scalar::col(d, ColId(0)),
                ))
                .unwrap();
            }
            for s in 0..1 + (r >> 13) % 3 {
                b.select(QCol::new(
                    if s % 2 == 0 { d } else { e },
                    ColId((s % 2) as u32),
                ));
            }
            if r & 16 != 0 {
                b.order_by(QCol::new(e, ColId(0)));
            }
            let c = canonicalize(&b.build().unwrap());
            if let Some(prev) = seen.insert(c.fingerprint.hash, c.fingerprint.text.clone()) {
                assert_eq!(
                    prev, c.fingerprint.text,
                    "hash collision between distinct canonical texts"
                );
            }
        }
        assert!(seen.len() > 100, "sweep produced too few distinct shapes");
    }

    #[test]
    fn canonical_query_preserves_select_semantics() {
        // Flipped table order: the canonical select list must still name
        // E.NAME (the same underlying column), just through remapped QIds.
        let q = build(true, false, false, "Haas");
        let c = canonicalize(&q);
        assert_eq!(c.query.quantifiers[0].table.0, 0); // DEPT first
        assert_eq!(c.query.quantifiers[1].table.0, 1); // EMP second
        assert_eq!(c.query.select.len(), 1);
        assert_eq!(c.query.select[0].q, QId(1));
        assert_eq!(c.query.select[0].col, ColId(0));
    }
}

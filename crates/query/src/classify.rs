//! The §4 predicate classifications.
//!
//! These are the `where` clauses of the paper's join STARs:
//!
//! * **JP** — join predicates: "multi-table, no ORs or subqueries, etc., but
//!   expressions OK".
//! * **SP** — sortable predicates: `p ∈ JP` of form `col1 op col2` where
//!   `col1 ∈ χ(T1)` and `col2 ∈ χ(T2)` or vice versa. (We additionally
//!   require `op` to be `=` so that a merge join is actually possible; the
//!   paper's MG cost equations assume equality merges.)
//! * **HP** — hashable predicates: `p ∈ JP` of form
//!   `expr(χ(T1)) = expr(χ(T2))` — expressions over any number of columns of
//!   one side, equated to an expression over the other side.
//! * **IP** — predicates eligible on the inner only: `χ(p) ⊆ χ(T2)`.
//! * **XP** — indexable multi-table predicates: `p ∈ JP` of form
//!   `expr(χ(T1)) op T2.col`.
//!
//! The classifier also implements the access-path matching of §2.1: which
//! predicates a multi-column index can apply ("the columns referenced in the
//! predicates form a prefix of the columns in the index").

use std::collections::BTreeSet;

use starqo_catalog::ColId;

use crate::pred::{CmpOp, PredExpr, PredSet};
use crate::qset::{QId, QSet};
use crate::query::Query;
use crate::scalar::QCol;

/// Stateless classification functions over a query.
pub struct Classifier<'q> {
    pub query: &'q Query,
}

impl<'q> Classifier<'q> {
    pub fn new(query: &'q Query) -> Self {
        Classifier { query }
    }

    /// χ(T): all catalog columns of a quantifier set (as quantified columns).
    /// Note this is *schema* columns, not just required ones.
    pub fn cols_of(&self, qs: QSet, ncols: impl Fn(QId) -> u32) -> BTreeSet<QCol> {
        let mut out = BTreeSet::new();
        for q in qs.iter() {
            for c in 0..ncols(q) {
                out.insert(QCol::new(q, ColId(c)));
            }
        }
        out
    }

    /// JP: join predicates among `p_set` — multi-table simple comparisons
    /// (no ORs).
    pub fn join_preds(&self, p_set: PredSet) -> PredSet {
        PredSet::from_iter(p_set.iter().filter(|p| {
            let pred = self.query.pred(*p);
            pred.quantifiers().len() > 1 && !pred.expr.contains_or()
        }))
    }

    /// IP: predicates eligible on the inner only: χ(p) ⊆ χ(T2).
    pub fn inner_preds(&self, p_set: PredSet, t2: QSet) -> PredSet {
        PredSet::from_iter(p_set.iter().filter(|p| {
            let qs = self.query.pred(*p).quantifiers();
            !qs.is_empty() && qs.is_subset_of(t2)
        }))
    }

    /// SP: sortable (merge-joinable) predicates: bare-column `=` bare-column
    /// with one column on each side.
    pub fn sortable_preds(&self, p_set: PredSet, t1: QSet, t2: QSet) -> PredSet {
        PredSet::from_iter(p_set.iter().filter(|p| match &self.query.pred(*p).expr {
            PredExpr::Cmp(CmpOp::Eq, l, r) => match (l.as_col(), r.as_col()) {
                (Some(a), Some(b)) => {
                    (t1.contains(a.q) && t2.contains(b.q)) || (t2.contains(a.q) && t1.contains(b.q))
                }
                _ => false,
            },
            _ => false,
        }))
    }

    /// HP: hashable predicates: `expr(χ(T1)) = expr(χ(T2))`.
    pub fn hashable_preds(&self, p_set: PredSet, t1: QSet, t2: QSet) -> PredSet {
        PredSet::from_iter(p_set.iter().filter(|p| match &self.query.pred(*p).expr {
            PredExpr::Cmp(CmpOp::Eq, l, r) => {
                let (lq, rq) = (l.quantifiers(), r.quantifiers());
                if lq.is_empty() || rq.is_empty() {
                    return false;
                }
                (lq.is_subset_of(t1) && rq.is_subset_of(t2))
                    || (lq.is_subset_of(t2) && rq.is_subset_of(t1))
            }
            _ => false,
        }))
    }

    /// XP: indexable multi-table predicates: `expr(χ(T1)) op T2.col` — one
    /// side is a bare column of the inner, the other references only the
    /// outer.
    pub fn indexable_preds(&self, p_set: PredSet, t1: QSet, t2: QSet) -> PredSet {
        PredSet::from_iter(p_set.iter().filter(|p| match &self.query.pred(*p).expr {
            PredExpr::Cmp(_, l, r) => {
                let inner_col_outer_expr =
                    |col: &crate::scalar::Scalar, other: &crate::scalar::Scalar| {
                        col.as_col().is_some_and(|c| t2.contains(c.q))
                            && !other.quantifiers().is_empty()
                            && other.quantifiers().is_subset_of(t1)
                    };
                inner_col_outer_expr(l, r) || inner_col_outer_expr(r, l)
            }
            PredExpr::Or(_) => false,
        }))
    }

    /// IX (§4.5.3): "columns of indexable predicates = (χ(IP) ∪ χ(XP)) ∩
    /// χ(T2), '=' predicates first" — the ordered key for a dynamically
    /// created index on the inner.
    pub fn index_cols(&self, ip: PredSet, xp: PredSet, t2: QSet) -> Vec<QCol> {
        let mut eq_cols: Vec<QCol> = Vec::new();
        let mut other_cols: Vec<QCol> = Vec::new();
        let push = |dst: &mut Vec<QCol>, c: QCol| {
            if !dst.contains(&c) {
                dst.push(c);
            }
        };
        for p in ip.union(xp).iter() {
            let pred = self.query.pred(p);
            let is_eq = matches!(&pred.expr, PredExpr::Cmp(CmpOp::Eq, _, _));
            for c in pred.cols() {
                if t2.contains(c.q) {
                    if is_eq {
                        push(&mut eq_cols, c);
                    } else {
                        push(&mut other_cols, c);
                    }
                }
            }
        }
        other_cols.retain(|c| !eq_cols.contains(c));
        eq_cols.extend(other_cols);
        eq_cols
    }

    /// The sort key χ(SP) ∩ χ(T): the columns of the sortable predicates on
    /// the given side, in predicate order — the ORDER requirement the MG
    /// alternative imposes on each input.
    pub fn sort_key(&self, sp: PredSet, side: QSet) -> Vec<QCol> {
        let mut out = Vec::new();
        for p in sp.iter() {
            for c in self.query.pred(p).cols() {
                if side.contains(c.q) && !out.contains(&c) {
                    out.push(c);
                }
            }
        }
        out
    }

    /// Which of `preds` (all referencing only quantifier `q`) an index with
    /// key columns `index_cols` on `q` can apply: equality predicates on a
    /// prefix of the key, plus at most one range predicate on the next key
    /// column. Returns `(matched predicates, matched-column count)`.
    pub fn index_matching(&self, preds: PredSet, q: QId, index_cols: &[ColId]) -> (PredSet, u32) {
        let mut matched = PredSet::EMPTY;
        let mut ncols = 0u32;
        for (pos, icol) in index_cols.iter().enumerate() {
            let target = QCol::new(q, *icol);
            // Equality preds on this key column against something constant
            // w.r.t. the scan (constant or outer reference). All of them
            // match; any one extends the prefix.
            let mut any_eq = false;
            for p in preds.iter() {
                if self.sargable_on(p, target) == Some(CmpOp::Eq) {
                    matched = matched.insert(p);
                    any_eq = true;
                }
            }
            if any_eq {
                ncols = pos as u32 + 1;
                continue;
            }
            // Range predicates stop the prefix but still match this column.
            let mut any_range = false;
            for p in preds.iter() {
                if let Some(op) = self.sargable_on(p, target) {
                    if matches!(op, CmpOp::Lt | CmpOp::Le | CmpOp::Gt | CmpOp::Ge) {
                        matched = matched.insert(p);
                        any_range = true;
                    }
                }
            }
            if any_range {
                ncols = pos as u32 + 1;
            }
            break;
        }
        (matched, ncols)
    }

    /// If predicate `p` is sargable on column `target` — a comparison of the
    /// bare column against an expression not referencing `target.q` — return
    /// the comparison operator oriented as `target op other`.
    pub fn sargable_on(&self, p: crate::pred::PredId, target: QCol) -> Option<CmpOp> {
        match &self.query.pred(p).expr {
            PredExpr::Cmp(op, l, r) => {
                if l.as_col() == Some(target) && !r.quantifiers().contains(target.q) {
                    Some(*op)
                } else if r.as_col() == Some(target) && !l.quantifiers().contains(target.q) {
                    Some(op.flipped())
                } else {
                    None
                }
            }
            PredExpr::Or(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pred::PredId;
    use crate::query::QueryBuilder;
    use crate::scalar::{ArithOp, Scalar};
    use starqo_catalog::{Catalog, DataType, StorageKind, Value};

    /// Catalog: A(a0,a1), B(b0,b1), C(c0).
    fn cat() -> Catalog {
        Catalog::builder()
            .site("x")
            .table("A", "x", StorageKind::Heap, 100)
            .column("A0", DataType::Int, Some(100))
            .column("A1", DataType::Int, Some(10))
            .table("B", "x", StorageKind::Heap, 200)
            .column("B0", DataType::Int, Some(200))
            .column("B1", DataType::Int, Some(20))
            .table("C", "x", StorageKind::Heap, 300)
            .column("C0", DataType::Int, Some(300))
            .build()
            .unwrap()
    }

    /// Query with a mix of predicate shapes:
    /// p0: a.A0 = b.B0          (JP, SP, HP, XP)
    /// p1: a.A1 + 1 = b.B1      (JP, HP, XP — expr on outer side)
    /// p2: a.A0 < b.B1          (JP, XP — inequality)
    /// p3: b.B1 = 5             (single-table on B)
    /// p4: (b.B0 = 1 OR b.B0 = 2)  (single-table OR on B)
    /// p5: a.A0 = c.C0          (JP linking A–C)
    fn setup() -> (Query, PredSet) {
        let cat = cat();
        let mut b = QueryBuilder::new();
        let a = b.quantifier(&cat, "A", "a").unwrap();
        let bb = b.quantifier(&cat, "B", "b").unwrap();
        let c = b.quantifier(&cat, "C", "c").unwrap();
        let col = Scalar::col;
        b.predicate(PredExpr::Cmp(
            CmpOp::Eq,
            col(a, ColId(0)),
            col(bb, ColId(0)),
        ))
        .unwrap();
        b.predicate(PredExpr::Cmp(
            CmpOp::Eq,
            Scalar::Arith(
                ArithOp::Add,
                Box::new(col(a, ColId(1))),
                Box::new(Scalar::Const(Value::Int(1))),
            ),
            col(bb, ColId(1)),
        ))
        .unwrap();
        b.predicate(PredExpr::Cmp(
            CmpOp::Lt,
            col(a, ColId(0)),
            col(bb, ColId(1)),
        ))
        .unwrap();
        b.predicate(PredExpr::Cmp(
            CmpOp::Eq,
            col(bb, ColId(1)),
            Scalar::Const(Value::Int(5)),
        ))
        .unwrap();
        b.predicate(PredExpr::Or(vec![
            PredExpr::Cmp(CmpOp::Eq, col(bb, ColId(0)), Scalar::Const(Value::Int(1))),
            PredExpr::Cmp(CmpOp::Eq, col(bb, ColId(0)), Scalar::Const(Value::Int(2))),
        ]))
        .unwrap();
        b.predicate(PredExpr::Cmp(CmpOp::Eq, col(a, ColId(0)), col(c, ColId(0))))
            .unwrap();
        b.select(QCol::new(a, ColId(0)));
        let q = b.build().unwrap();
        let all = q.all_preds();
        (q, all)
    }

    fn ps(ids: &[u32]) -> PredSet {
        PredSet::from_iter(ids.iter().map(|i| PredId(*i)))
    }

    #[test]
    fn join_pred_classification() {
        let (q, all) = setup();
        let cl = Classifier::new(&q);
        // p0, p1, p2, p5 are multi-table simple comparisons; p3/p4 are not.
        assert_eq!(cl.join_preds(all), ps(&[0, 1, 2, 5]));
    }

    #[test]
    fn inner_pred_classification() {
        let (q, all) = setup();
        let cl = Classifier::new(&q);
        let t2 = QSet::single(QId(1)); // B is inner
        assert_eq!(cl.inner_preds(all, t2), ps(&[3, 4]));
        // Composite inner {B,C}: still only p3/p4 (p5 references A).
        let t2c = QSet::from_iter([QId(1), QId(2)]);
        assert_eq!(cl.inner_preds(all, t2c), ps(&[3, 4]));
    }

    #[test]
    fn sortable_pred_classification() {
        let (q, all) = setup();
        let cl = Classifier::new(&q);
        let t1 = QSet::single(QId(0));
        let t2 = QSet::single(QId(1));
        let jp = cl.join_preds(all);
        // Only p0 is bare-col = bare-col across the sides. p1 has an
        // expression side; p2 is an inequality; p5 doesn't span T1/T2.
        assert_eq!(cl.sortable_preds(jp, t1, t2), ps(&[0]));
        // Orientation doesn't matter.
        assert_eq!(cl.sortable_preds(jp, t2, t1), ps(&[0]));
    }

    #[test]
    fn hashable_pred_classification() {
        let (q, all) = setup();
        let cl = Classifier::new(&q);
        let t1 = QSet::single(QId(0));
        let t2 = QSet::single(QId(1));
        let jp = cl.join_preds(all);
        // p0 and p1 are equality with sides split across T1/T2; p2 is an
        // inequality (paper: "and vice versa (inequalities)").
        assert_eq!(cl.hashable_preds(jp, t1, t2), ps(&[0, 1]));
    }

    #[test]
    fn indexable_pred_classification() {
        let (q, all) = setup();
        let cl = Classifier::new(&q);
        let t1 = QSet::single(QId(0));
        let t2 = QSet::single(QId(1));
        let jp = cl.join_preds(all);
        // XP: inner side must be a bare column of T2: p0 (B0), p1 (B1),
        // p2 (B1, inequality OK for index range).
        assert_eq!(cl.indexable_preds(jp, t1, t2), ps(&[0, 1, 2]));
        // Flipped: A as inner — p0 (A0), p2 (A0). p1's A side is an
        // expression, not a bare column.
        assert_eq!(cl.indexable_preds(jp, t2, t1), ps(&[0, 2]));
    }

    #[test]
    fn index_cols_puts_equality_first() {
        let (q, all) = setup();
        let cl = Classifier::new(&q);
        let t1 = QSet::single(QId(0));
        let t2 = QSet::single(QId(1));
        let jp = cl.join_preds(all);
        let ip = cl.inner_preds(all, t2);
        let xp = cl.indexable_preds(jp, t1, t2);
        let ix = cl.index_cols(ip, xp, t2);
        // Equality-pred columns (B0 from p0, B1 from p1/p3) come first; the
        // range pred p2's column B1 is already claimed by an equality.
        assert_eq!(ix.len(), 2);
        assert!(ix.contains(&QCol::new(QId(1), ColId(0))));
        assert!(ix.contains(&QCol::new(QId(1), ColId(1))));
    }

    #[test]
    fn sort_key_extraction() {
        let (q, all) = setup();
        let cl = Classifier::new(&q);
        let t1 = QSet::single(QId(0));
        let t2 = QSet::single(QId(1));
        let sp = cl.sortable_preds(cl.join_preds(all), t1, t2);
        assert_eq!(cl.sort_key(sp, t1), vec![QCol::new(QId(0), ColId(0))]);
        assert_eq!(cl.sort_key(sp, t2), vec![QCol::new(QId(1), ColId(0))]);
    }

    #[test]
    fn index_matching_prefix_rules() {
        let (q, _) = setup();
        let cl = Classifier::new(&q);
        let b = QId(1);
        // Single-table preds on B: p3 (B1 = 5), p4 (OR — not sargable).
        let preds = ps(&[3, 4]);
        // Index on (B1): p3 matches one column.
        let (m, n) = cl.index_matching(preds, b, &[ColId(1)]);
        assert_eq!(m, ps(&[3]));
        assert_eq!(n, 1);
        // Index on (B0, B1): no eq pred on B0, so nothing matches.
        let (m, n) = cl.index_matching(preds, b, &[ColId(0), ColId(1)]);
        assert_eq!(m, PredSet::EMPTY);
        assert_eq!(n, 0);
        // Index on (B1, B0): p3 eq-matches B1; nothing on B0 after it.
        let (m, n) = cl.index_matching(preds, b, &[ColId(1), ColId(0)]);
        assert_eq!(m, ps(&[3]));
        assert_eq!(n, 1);
    }

    #[test]
    fn index_matching_join_pred_as_sarg() {
        let (q, all) = setup();
        let cl = Classifier::new(&q);
        let b = QId(1);
        // When join preds are pushed down (sideways information passing),
        // p0 (a.A0 = b.B0) is sargable on B0 because its other side doesn't
        // reference B.
        let (m, n) = cl.index_matching(all, b, &[ColId(0)]);
        assert!(m.contains(PredId(0)));
        assert_eq!(n, 1);
        // Range join pred p2 (a.A0 < b.B1) is sargable on B1 as a range.
        let (m2, _) = cl.index_matching(all, b, &[ColId(1)]);
        assert!(m2.contains(PredId(3))); // eq pred wins the column
                                         // With only p2 available, it matches as a range.
        let (m3, n3) = cl.index_matching(ps(&[2]), b, &[ColId(1)]);
        assert!(m3.contains(PredId(2)));
        assert_eq!(n3, 1);
    }

    #[test]
    fn sargable_orientation() {
        let (q, _) = setup();
        let cl = Classifier::new(&q);
        // p2: a.A0 < b.B1. On target B1 it reads "B1 > (outer)".
        assert_eq!(
            cl.sargable_on(PredId(2), QCol::new(QId(1), ColId(1))),
            Some(CmpOp::Gt)
        );
        assert_eq!(
            cl.sargable_on(PredId(2), QCol::new(QId(0), ColId(0))),
            Some(CmpOp::Lt)
        );
        assert_eq!(cl.sargable_on(PredId(4), QCol::new(QId(1), ColId(0))), None);
    }
}

//! # starqo-query
//!
//! The query model for the `starqo` optimizer: quantifiers (table
//! references), scalar expressions, predicates, bitset representations of
//! quantifier and predicate sets, the paper's §4 predicate classifications
//! (JP / SP / HP / IP / XP), and a mini-SQL parser for examples and tests.
//!
//! The optimizer (in `starqo-core`) consumes a [`Query`] and the catalog; it
//! never sees SQL text.

// Library code surfaces failures as typed errors, never by panicking;
// tests may unwrap freely (the gate is off under cfg(test)).
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod classify;
pub mod error;
pub mod fingerprint;
pub mod parser;
pub mod pred;
pub mod qset;
pub mod query;
pub mod scalar;

pub use classify::Classifier;
pub use error::{QueryError, Result};
pub use fingerprint::{canonicalize, CanonicalQuery, QueryFingerprint};
pub use parser::parse_query;
pub use pred::{CmpOp, PredExpr, PredId, PredSet, Predicate};
pub use qset::{QId, QSet};
pub use query::{Quantifier, Query, QueryBuilder};
pub use scalar::{ArithOp, QCol, Scalar};

//! The query object consumed by the optimizer.

use std::collections::BTreeSet;

use starqo_catalog::{Catalog, SiteId, TableId};

use crate::error::{QueryError, Result};
use crate::pred::{PredExpr, PredId, PredSet, Predicate};
use crate::qset::{QId, QSet};
use crate::scalar::QCol;

/// A quantifier: one table reference (range variable) of the query.
#[derive(Debug, Clone)]
pub struct Quantifier {
    pub id: QId,
    pub alias: String,
    pub table: TableId,
}

/// A non-procedural query: quantifiers, a conjunction of predicates, a
/// projection list, and an optional required output order.
///
/// This is the input the paper starts from ("a non-procedural set of
/// parameters from the query"); the optimizer turns it into plans.
#[derive(Debug, Clone)]
pub struct Query {
    pub quantifiers: Vec<Quantifier>,
    pub predicates: Vec<Predicate>,
    /// Projection: the columns the query returns.
    pub select: Vec<QCol>,
    /// Required output order (ORDER BY), discharged by Glue at the root.
    pub order_by: Vec<QCol>,
    /// Site at which the query result must be delivered.
    pub query_site: SiteId,
}

impl Query {
    /// The set of all quantifiers.
    pub fn all_qset(&self) -> QSet {
        QSet::all(self.quantifiers.len())
    }

    /// The set of all predicates.
    pub fn all_preds(&self) -> PredSet {
        PredSet::from_iter((0..self.predicates.len() as u32).map(PredId))
    }

    pub fn quantifier(&self, q: QId) -> &Quantifier {
        &self.quantifiers[q.0 as usize]
    }

    pub fn pred(&self, p: PredId) -> &Predicate {
        &self.predicates[p.0 as usize]
    }

    /// Predicates *eligible* on a quantifier set: every referenced quantifier
    /// is in the set. ("the table order determines which predicates are
    /// eligible", §1.)
    pub fn eligible_preds(&self, qset: QSet) -> PredSet {
        PredSet::from_iter(
            self.predicates
                .iter()
                .filter(|p| !p.quantifiers().is_empty() && p.quantifiers().is_subset_of(qset))
                .map(|p| p.id),
        )
    }

    /// Predicates that become *newly* eligible when `s1` and `s2` are joined:
    /// eligible on the union but on neither input alone.
    pub fn newly_eligible(&self, s1: QSet, s2: QSet) -> PredSet {
        let both = self.eligible_preds(s1.union(s2));
        both.minus(self.eligible_preds(s1))
            .minus(self.eligible_preds(s2))
    }

    /// True if some predicate links the two sets (a join predicate exists).
    /// This is the default "joinable pair" criterion of §2.3.
    pub fn connects(&self, s1: QSet, s2: QSet) -> bool {
        self.predicates.iter().any(|p| {
            let qs = p.quantifiers();
            !qs.intersect(s1).is_empty()
                && !qs.intersect(s2).is_empty()
                && qs.is_subset_of(s1.union(s2))
        })
    }

    /// The columns of quantifier `q` that anything downstream needs: the
    /// projection, any predicate, or the required order. This drives the
    /// COLS property of table-access plans ("pushing down the projection").
    pub fn required_cols(&self, q: QId) -> BTreeSet<QCol> {
        let mut out = BTreeSet::new();
        for c in self.select.iter().chain(self.order_by.iter()) {
            if c.q == q {
                out.insert(*c);
            }
        }
        for p in &self.predicates {
            for c in p.cols() {
                if c.q == q {
                    out.insert(c);
                }
            }
        }
        out
    }

    /// Required columns for a whole quantifier set.
    pub fn required_cols_of(&self, qs: QSet) -> BTreeSet<QCol> {
        let mut out = BTreeSet::new();
        for q in qs.iter() {
            out.extend(self.required_cols(q));
        }
        out
    }

    /// Human-readable name of a quantified column, e.g. `E.NAME`.
    pub fn qcol_name(&self, cat: &Catalog, c: QCol) -> String {
        let qt = self.quantifier(c.q);
        if c.col.is_tid() {
            return format!("{}.TID", qt.alias);
        }
        let t = cat.table(qt.table);
        match t.column(c.col) {
            Some(col) => format!("{}.{}", qt.alias, col.name),
            None => format!("{}.{}", qt.alias, c.col),
        }
    }

    /// Human-readable rendering of one predicate.
    pub fn pred_string(&self, cat: &Catalog, p: PredId) -> String {
        fn scalar(q: &Query, cat: &Catalog, s: &crate::scalar::Scalar) -> String {
            use crate::scalar::Scalar;
            match s {
                Scalar::Col(c) => q.qcol_name(cat, *c),
                Scalar::Const(v) => v.to_string(),
                Scalar::Arith(op, l, r) => {
                    format!(
                        "({} {} {})",
                        scalar(q, cat, l),
                        op.symbol(),
                        scalar(q, cat, r)
                    )
                }
            }
        }
        fn expr(q: &Query, cat: &Catalog, e: &PredExpr) -> String {
            match e {
                PredExpr::Cmp(op, l, r) => {
                    format!(
                        "{} {} {}",
                        scalar(q, cat, l),
                        op.symbol(),
                        scalar(q, cat, r)
                    )
                }
                PredExpr::Or(ps) => {
                    let parts: Vec<_> = ps.iter().map(|p| expr(q, cat, p)).collect();
                    format!("({})", parts.join(" OR "))
                }
            }
        }
        expr(self, cat, &self.pred(p).expr)
    }
}

/// Programmatic query builder (the parser uses it too).
#[derive(Debug, Default)]
pub struct QueryBuilder {
    quantifiers: Vec<Quantifier>,
    predicates: Vec<Predicate>,
    select: Vec<QCol>,
    order_by: Vec<QCol>,
    query_site: SiteId,
}

impl QueryBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a quantifier over `table` (by name) with the given alias; returns
    /// its `QId`.
    pub fn quantifier(&mut self, cat: &Catalog, table: &str, alias: &str) -> Result<QId> {
        if self.quantifiers.len() >= 64 {
            return Err(QueryError::Limit("more than 64 quantifiers".into()));
        }
        let t = cat.table_by_name(table)?;
        let id = QId(self.quantifiers.len() as u32);
        self.quantifiers.push(Quantifier {
            id,
            alias: alias.to_string(),
            table: t.id,
        });
        Ok(id)
    }

    /// Add a conjunct; returns its `PredId`.
    pub fn predicate(&mut self, expr: PredExpr) -> Result<PredId> {
        if self.predicates.len() >= 128 {
            return Err(QueryError::Limit("more than 128 predicates".into()));
        }
        let id = PredId(self.predicates.len() as u32);
        self.predicates.push(Predicate { id, expr });
        Ok(id)
    }

    pub fn select(&mut self, col: QCol) -> &mut Self {
        self.select.push(col);
        self
    }

    pub fn order_by(&mut self, col: QCol) -> &mut Self {
        self.order_by.push(col);
        self
    }

    pub fn query_site(&mut self, site: SiteId) -> &mut Self {
        self.query_site = site;
        self
    }

    /// Snapshot of declared quantifiers as (id, table) pairs (used by the
    /// parser to expand `SELECT *`).
    pub fn quantifiers_snapshot(&self) -> Vec<(QId, TableId)> {
        self.quantifiers.iter().map(|q| (q.id, q.table)).collect()
    }

    /// Resolve `alias.column` against the declared quantifiers.
    pub fn resolve(&self, cat: &Catalog, alias: &str, column: &str) -> Result<QCol> {
        let qt = self
            .quantifiers
            .iter()
            .find(|q| q.alias.eq_ignore_ascii_case(alias))
            .ok_or_else(|| QueryError::Resolve(format!("unknown alias {alias}")))?;
        let t = cat.table(qt.table);
        let (cid, _) = t
            .column_by_name(column)
            .ok_or_else(|| QueryError::Resolve(format!("no column {column} on {}", t.name)))?;
        Ok(QCol::new(qt.id, cid))
    }

    /// Resolve a bare column name, requiring it to be unambiguous.
    pub fn resolve_bare(&self, cat: &Catalog, column: &str) -> Result<QCol> {
        let mut found = None;
        for qt in &self.quantifiers {
            if let Some((cid, _)) = cat.table(qt.table).column_by_name(column) {
                if found.is_some() {
                    return Err(QueryError::Resolve(format!("ambiguous column {column}")));
                }
                found = Some(QCol::new(qt.id, cid));
            }
        }
        found.ok_or_else(|| QueryError::Resolve(format!("unknown column {column}")))
    }

    pub fn build(mut self) -> Result<Query> {
        if self.quantifiers.is_empty() {
            return Err(QueryError::Resolve("query has no tables".into()));
        }
        if self.select.is_empty() {
            // SELECT * — project everything? Keep it explicit: all columns of
            // all quantifiers, in quantifier order.
            self.select = Vec::new();
        }
        Ok(Query {
            quantifiers: self.quantifiers,
            predicates: self.predicates,
            select: self.select,
            order_by: self.order_by,
            query_site: self.query_site,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pred::CmpOp;
    use crate::scalar::Scalar;
    use starqo_catalog::{Catalog, ColId, DataType, StorageKind, Value};

    fn cat() -> Catalog {
        Catalog::builder()
            .site("NY")
            .table("DEPT", "NY", StorageKind::Heap, 50)
            .column("DNO", DataType::Int, Some(50))
            .column("MGR", DataType::Str, Some(40))
            .table("EMP", "NY", StorageKind::Heap, 10_000)
            .column("NAME", DataType::Str, None)
            .column("DNO", DataType::Int, Some(50))
            .build()
            .unwrap()
    }

    fn dept_emp() -> (Catalog, Query) {
        let cat = cat();
        let mut b = QueryBuilder::new();
        let d = b.quantifier(&cat, "DEPT", "D").unwrap();
        let e = b.quantifier(&cat, "EMP", "E").unwrap();
        // D.MGR = 'Haas'
        b.predicate(PredExpr::Cmp(
            CmpOp::Eq,
            Scalar::col(d, ColId(1)),
            Scalar::Const(Value::str("Haas")),
        ))
        .unwrap();
        // D.DNO = E.DNO
        b.predicate(PredExpr::Cmp(
            CmpOp::Eq,
            Scalar::col(d, ColId(0)),
            Scalar::col(e, ColId(1)),
        ))
        .unwrap();
        b.select(QCol::new(e, ColId(0)));
        (cat, b.build().unwrap())
    }

    #[test]
    fn eligibility() {
        let (_, q) = dept_emp();
        let d = QSet::single(QId(0));
        let e = QSet::single(QId(1));
        assert_eq!(q.eligible_preds(d), PredSet::single(PredId(0)));
        assert_eq!(q.eligible_preds(e), PredSet::EMPTY);
        assert_eq!(q.eligible_preds(d.union(e)).len(), 2);
        assert_eq!(q.newly_eligible(d, e), PredSet::single(PredId(1)));
        assert!(q.connects(d, e));
    }

    #[test]
    fn required_cols_pull_from_select_and_preds() {
        let (_, q) = dept_emp();
        let d_cols = q.required_cols(QId(0));
        // DNO (join pred) + MGR (local pred)
        assert_eq!(d_cols.len(), 2);
        let e_cols = q.required_cols(QId(1));
        // NAME (select) + DNO (join pred)
        assert_eq!(e_cols.len(), 2);
        assert_eq!(q.required_cols_of(q.all_qset()).len(), 4);
    }

    #[test]
    fn naming() {
        let (cat, q) = dept_emp();
        assert_eq!(q.qcol_name(&cat, QCol::new(QId(1), ColId(0))), "E.NAME");
        assert_eq!(q.pred_string(&cat, PredId(0)), "D.MGR = 'Haas'");
        assert_eq!(q.pred_string(&cat, PredId(1)), "D.DNO = E.DNO");
    }

    #[test]
    fn resolve_bare_ambiguity() {
        let cat = cat();
        let mut b = QueryBuilder::new();
        b.quantifier(&cat, "DEPT", "D").unwrap();
        b.quantifier(&cat, "EMP", "E").unwrap();
        assert!(b.resolve_bare(&cat, "DNO").is_err()); // on both tables
        assert!(b.resolve_bare(&cat, "MGR").is_ok());
        assert!(b.resolve_bare(&cat, "XYZ").is_err());
        assert!(b.resolve(&cat, "X", "DNO").is_err());
    }

    #[test]
    fn empty_query_rejected() {
        assert!(QueryBuilder::new().build().is_err());
    }
}

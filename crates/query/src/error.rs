//! Query-layer errors.

use std::fmt;

#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// Syntax error in the mini-SQL parser, with byte offset.
    Parse {
        msg: String,
        pos: usize,
    },
    /// Name-resolution failure (unknown table, alias, or column).
    Resolve(String),
    /// Structural limit exceeded (64 quantifiers / 128 predicates).
    Limit(String),
    Catalog(starqo_catalog::CatalogError),
}

pub type Result<T> = std::result::Result<T, QueryError>;

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::Parse { msg, pos } => write!(f, "parse error at byte {pos}: {msg}"),
            QueryError::Resolve(msg) => write!(f, "resolution error: {msg}"),
            QueryError::Limit(msg) => write!(f, "limit exceeded: {msg}"),
            QueryError::Catalog(e) => write!(f, "catalog error: {e}"),
        }
    }
}

impl std::error::Error for QueryError {}

impl From<starqo_catalog::CatalogError> for QueryError {
    fn from(e: starqo_catalog::CatalogError) -> Self {
        QueryError::Catalog(e)
    }
}

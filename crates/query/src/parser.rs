//! A mini-SQL parser for examples and tests.
//!
//! Grammar (conjunctive select-project-join queries, which is exactly the
//! query class the paper's STARs cover — subqueries and recursion are
//! explicitly out of scope in §4):
//!
//! ```text
//! query   := SELECT selects FROM tables [WHERE conj] [ORDER BY cols]
//! selects := '*' | colref (',' colref)*
//! tables  := IDENT [IDENT] (',' IDENT [IDENT])*
//! conj    := factor (AND factor)*
//! factor  := '(' cmp (OR cmp)+ ')' | cmp
//! cmp     := scalar op scalar          op := = | <> | != | < | <= | > | >=
//! scalar  := term (('+'|'-') term)*
//! term    := atom (('*'|'/') atom)*
//! atom    := colref | NUMBER | 'string' | '(' scalar ')'
//! colref  := IDENT '.' IDENT | IDENT
//! ```

use starqo_catalog::{Catalog, Value};

use crate::error::{QueryError, Result};
use crate::pred::{CmpOp, PredExpr};
use crate::query::{Query, QueryBuilder};
use crate::scalar::{ArithOp, Scalar};

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Number(f64, bool), // value, is_integer
    Str(String),
    Sym(&'static str),
    Eof,
}

struct Lexer<'a> {
    src: &'a str,
    pos: usize,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer { src, pos: 0 }
    }

    fn error(&self, msg: impl Into<String>) -> QueryError {
        QueryError::Parse {
            msg: msg.into(),
            pos: self.pos,
        }
    }

    fn bump_while(&mut self, f: impl Fn(char) -> bool) -> &'a str {
        let start = self.pos;
        while let Some(c) = self.src[self.pos..].chars().next() {
            if f(c) {
                self.pos += c.len_utf8();
            } else {
                break;
            }
        }
        &self.src[start..self.pos]
    }

    fn next_tok(&mut self) -> Result<(Tok, usize)> {
        {
            self.bump_while(|c| c.is_whitespace());
            let at = self.pos;
            let Some(c) = self.src[self.pos..].chars().next() else {
                return Ok((Tok::Eof, at));
            };
            match c {
                'a'..='z' | 'A'..='Z' | '_' => {
                    let w = self.bump_while(|c| c.is_alphanumeric() || c == '_');
                    Ok((Tok::Ident(w.to_string()), at))
                }
                '0'..='9' => {
                    let w = self.bump_while(|c| c.is_ascii_digit() || c == '.');
                    let is_int = !w.contains('.');
                    let v: f64 = w
                        .parse()
                        .map_err(|_| self.error(format!("bad number {w}")))?;
                    Ok((Tok::Number(v, is_int), at))
                }
                '\'' => {
                    self.pos += 1;
                    let start = self.pos;
                    while let Some(c) = self.src[self.pos..].chars().next() {
                        if c == '\'' {
                            let s = self.src[start..self.pos].to_string();
                            self.pos += 1;
                            return Ok((Tok::Str(s), at));
                        }
                        self.pos += c.len_utf8();
                    }
                    Err(self.error("unterminated string literal"))
                }
                '<' => {
                    self.pos += 1;
                    if self.src[self.pos..].starts_with('=') {
                        self.pos += 1;
                        return Ok((Tok::Sym("<="), at));
                    }
                    if self.src[self.pos..].starts_with('>') {
                        self.pos += 1;
                        return Ok((Tok::Sym("<>"), at));
                    }
                    Ok((Tok::Sym("<"), at))
                }
                '>' => {
                    self.pos += 1;
                    if self.src[self.pos..].starts_with('=') {
                        self.pos += 1;
                        return Ok((Tok::Sym(">="), at));
                    }
                    Ok((Tok::Sym(">"), at))
                }
                '!' => {
                    self.pos += 1;
                    if self.src[self.pos..].starts_with('=') {
                        self.pos += 1;
                        return Ok((Tok::Sym("<>"), at));
                    }
                    Err(self.error("unexpected '!'"))
                }
                '=' => {
                    self.pos += 1;
                    Ok((Tok::Sym("="), at))
                }
                ',' | '.' | '(' | ')' | '*' | '+' | '-' | '/' => {
                    self.pos += 1;
                    let s = match c {
                        ',' => ",",
                        '.' => ".",
                        '(' => "(",
                        ')' => ")",
                        '*' => "*",
                        '+' => "+",
                        '-' => "-",
                        '/' => "/",
                        _ => unreachable!(),
                    };
                    Ok((Tok::Sym(s), at))
                }
                _ => Err(self.error(format!("unexpected character {c:?}"))),
            }
        }
    }
}

struct Parser<'a> {
    toks: Vec<(Tok, usize)>,
    at: usize,
    cat: &'a Catalog,
    builder: QueryBuilder,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> &Tok {
        &self.toks[self.at.min(self.toks.len() - 1)].0
    }

    fn pos(&self) -> usize {
        self.toks[self.at.min(self.toks.len() - 1)].1
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.at.min(self.toks.len() - 1)].0.clone();
        self.at += 1;
        t
    }

    fn error(&self, msg: impl Into<String>) -> QueryError {
        QueryError::Parse {
            msg: msg.into(),
            pos: self.pos(),
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<()> {
        match self.bump() {
            Tok::Ident(w) if w.eq_ignore_ascii_case(kw) => Ok(()),
            other => Err(self.error(format!("expected {kw}, found {other:?}"))),
        }
    }

    fn at_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Tok::Ident(w) if w.eq_ignore_ascii_case(kw))
    }

    fn expect_sym(&mut self, sym: &str) -> Result<()> {
        match self.bump() {
            Tok::Sym(s) if s == sym => Ok(()),
            other => Err(self.error(format!("expected '{sym}', found {other:?}"))),
        }
    }

    fn eat_sym(&mut self, sym: &str) -> bool {
        if matches!(self.peek(), Tok::Sym(s) if *s == sym) {
            self.at += 1;
            true
        } else {
            false
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.bump() {
            Tok::Ident(w) => Ok(w),
            other => Err(self.error(format!("expected identifier, found {other:?}"))),
        }
    }

    /// Parse a column reference (after FROM resolution).
    fn colref(&mut self) -> Result<crate::scalar::QCol> {
        let first = self.ident()?;
        if self.eat_sym(".") {
            let col = self.ident()?;
            self.builder.resolve(self.cat, &first, &col)
        } else {
            self.builder.resolve_bare(self.cat, &first)
        }
    }

    fn atom(&mut self) -> Result<Scalar> {
        match self.peek().clone() {
            Tok::Number(v, is_int) => {
                self.at += 1;
                Ok(Scalar::Const(if is_int {
                    Value::Int(v as i64)
                } else {
                    Value::Double(v)
                }))
            }
            Tok::Str(s) => {
                self.at += 1;
                Ok(Scalar::Const(Value::str(s)))
            }
            Tok::Sym("(") => {
                self.at += 1;
                let e = self.scalar()?;
                self.expect_sym(")")?;
                Ok(e)
            }
            Tok::Sym("-") => {
                self.at += 1;
                let e = self.atom()?;
                match e {
                    Scalar::Const(Value::Int(i)) => Ok(Scalar::Const(Value::Int(-i))),
                    Scalar::Const(Value::Double(d)) => Ok(Scalar::Const(Value::Double(-d))),
                    other => Ok(Scalar::Arith(
                        ArithOp::Sub,
                        Box::new(Scalar::Const(Value::Int(0))),
                        Box::new(other),
                    )),
                }
            }
            Tok::Ident(_) => Ok(Scalar::Col(self.colref()?)),
            other => Err(self.error(format!("expected scalar, found {other:?}"))),
        }
    }

    fn term(&mut self) -> Result<Scalar> {
        let mut e = self.atom()?;
        loop {
            let op = match self.peek() {
                Tok::Sym("*") => ArithOp::Mul,
                Tok::Sym("/") => ArithOp::Div,
                _ => break,
            };
            self.at += 1;
            let r = self.atom()?;
            e = Scalar::Arith(op, Box::new(e), Box::new(r));
        }
        Ok(e)
    }

    fn scalar(&mut self) -> Result<Scalar> {
        let mut e = self.term()?;
        loop {
            let op = match self.peek() {
                Tok::Sym("+") => ArithOp::Add,
                Tok::Sym("-") => ArithOp::Sub,
                _ => break,
            };
            self.at += 1;
            let r = self.term()?;
            e = Scalar::Arith(op, Box::new(e), Box::new(r));
        }
        Ok(e)
    }

    fn cmp(&mut self) -> Result<PredExpr> {
        let l = self.scalar()?;
        let op = match self.bump() {
            Tok::Sym("=") => CmpOp::Eq,
            Tok::Sym("<>") => CmpOp::Ne,
            Tok::Sym("<") => CmpOp::Lt,
            Tok::Sym("<=") => CmpOp::Le,
            Tok::Sym(">") => CmpOp::Gt,
            Tok::Sym(">=") => CmpOp::Ge,
            other => return Err(self.error(format!("expected comparison, found {other:?}"))),
        };
        let r = self.scalar()?;
        Ok(PredExpr::Cmp(op, l, r))
    }

    /// A WHERE factor: either a parenthesized OR-group or a comparison.
    fn factor(&mut self) -> Result<PredExpr> {
        if matches!(self.peek(), Tok::Sym("(")) {
            // Could be "(scalar) op scalar" or "(cmp OR cmp)". Try the OR
            // group by lookahead: parse inside as cmp; if followed by OR it
            // is a group, otherwise re-parse as comparison.
            let save = self.at;
            self.at += 1;
            if let Ok(first) = self.cmp() {
                if self.at_kw("OR") {
                    let mut arms = vec![first];
                    while self.at_kw("OR") {
                        self.at += 1;
                        arms.push(self.cmp()?);
                    }
                    self.expect_sym(")")?;
                    return Ok(PredExpr::Or(arms));
                }
                if self.eat_sym(")") && !self.is_cmp_op() {
                    return Ok(first);
                }
            }
            self.at = save;
        }
        self.cmp()
    }

    fn is_cmp_op(&self) -> bool {
        matches!(self.peek(), Tok::Sym("=" | "<>" | "<" | "<=" | ">" | ">="))
    }

    fn parse(mut self) -> Result<Query> {
        self.expect_kw("SELECT")?;
        // FROM must be parsed before select columns can resolve; collect the
        // select token range first.
        let select_start = self.at;
        let mut depth = 0usize;
        while !(depth == 0 && self.at_kw("FROM")) {
            match self.peek() {
                Tok::Eof => return Err(self.error("expected FROM")),
                Tok::Sym("(") => depth += 1,
                Tok::Sym(")") => depth = depth.saturating_sub(1),
                _ => {}
            }
            self.at += 1;
        }
        let select_end = self.at;
        self.expect_kw("FROM")?;
        loop {
            let table = self.ident()?;
            let alias = match self.peek() {
                Tok::Ident(w)
                    if !w.eq_ignore_ascii_case("WHERE") && !w.eq_ignore_ascii_case("ORDER") =>
                {
                    self.ident()?
                }
                _ => table.clone(),
            };
            self.builder.quantifier(self.cat, &table, &alias)?;
            if !self.eat_sym(",") {
                break;
            }
        }
        let after_from = self.at;

        // Now resolve the select list.
        self.at = select_start;
        if matches!(self.peek(), Tok::Sym("*")) {
            self.at += 1;
            // Expand `*` into every column of every quantifier, in
            // (quantifier, column) order, so the projection is explicit.
            for qt in self.builder.quantifiers_snapshot() {
                let ncols = self.cat.table(qt.1).columns.len() as u32;
                for ci in 0..ncols {
                    self.builder
                        .select(crate::scalar::QCol::new(qt.0, starqo_catalog::ColId(ci)));
                }
            }
        } else {
            loop {
                let c = self.colref()?;
                self.builder.select(c);
                if !self.eat_sym(",") {
                    break;
                }
            }
        }
        if self.at != select_end {
            return Err(self.error("trailing tokens in select list"));
        }
        self.at = after_from;

        if self.at_kw("WHERE") {
            self.at += 1;
            loop {
                let p = self.factor()?;
                self.builder.predicate(p)?;
                if self.at_kw("AND") {
                    self.at += 1;
                } else {
                    break;
                }
            }
        }
        if self.at_kw("ORDER") {
            self.at += 1;
            self.expect_kw("BY")?;
            loop {
                let c = self.colref()?;
                self.builder.order_by(c);
                if !self.eat_sym(",") {
                    break;
                }
            }
        }
        match self.peek() {
            Tok::Eof => self.builder.build(),
            other => Err(self.error(format!("unexpected trailing token {other:?}"))),
        }
    }
}

/// Parse a mini-SQL query against a catalog.
pub fn parse_query(cat: &Catalog, sql: &str) -> Result<Query> {
    let mut lx = Lexer::new(sql);
    let mut toks = Vec::new();
    loop {
        let (t, p) = lx.next_tok()?;
        let eof = t == Tok::Eof;
        toks.push((t, p));
        if eof {
            break;
        }
    }
    Parser {
        toks,
        at: 0,
        cat,
        builder: QueryBuilder::new(),
    }
    .parse()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pred::PredId;
    use crate::qset::{QId, QSet};
    use starqo_catalog::{ColId, DataType, StorageKind};

    fn cat() -> Catalog {
        Catalog::builder()
            .site("NY")
            .table("DEPT", "NY", StorageKind::Heap, 50)
            .column("DNO", DataType::Int, Some(50))
            .column("MGR", DataType::Str, Some(40))
            .table("EMP", "NY", StorageKind::Heap, 10_000)
            .column("NAME", DataType::Str, None)
            .column("DNO", DataType::Int, Some(50))
            .column("SAL", DataType::Double, None)
            .build()
            .unwrap()
    }

    #[test]
    fn parses_paper_query() {
        let cat = cat();
        let q = parse_query(
            &cat,
            "SELECT E.NAME FROM DEPT D, EMP E WHERE D.MGR = 'Haas' AND D.DNO = E.DNO",
        )
        .unwrap();
        assert_eq!(q.quantifiers.len(), 2);
        assert_eq!(q.predicates.len(), 2);
        assert_eq!(q.select.len(), 1);
        assert_eq!(q.pred_string(&cat, PredId(0)), "D.MGR = 'Haas'");
        assert_eq!(q.pred_string(&cat, PredId(1)), "D.DNO = E.DNO");
    }

    #[test]
    fn default_alias_is_table_name() {
        let cat = cat();
        let q = parse_query(&cat, "SELECT EMP.NAME FROM EMP WHERE EMP.SAL > 100.5").unwrap();
        assert_eq!(q.quantifiers[0].alias, "EMP");
        assert_eq!(q.predicates.len(), 1);
    }

    #[test]
    fn star_select_and_bare_columns() {
        let cat = cat();
        let q = parse_query(&cat, "SELECT * FROM EMP E WHERE SAL > 5 AND NAME = 'x'").unwrap();
        // `*` expands to every column of every quantifier.
        assert_eq!(q.select.len(), 3);
        assert_eq!(q.predicates.len(), 2);
    }

    #[test]
    fn or_groups() {
        let cat = cat();
        let q = parse_query(
            &cat,
            "SELECT E.NAME FROM EMP E WHERE (E.DNO = 1 OR E.DNO = 2) AND E.SAL > 0",
        )
        .unwrap();
        assert_eq!(q.predicates.len(), 2);
        assert!(q.pred(PredId(0)).expr.contains_or());
        assert!(!q.pred(PredId(1)).expr.contains_or());
    }

    #[test]
    fn arithmetic_and_order_by() {
        let cat = cat();
        let q = parse_query(
            &cat,
            "SELECT E.NAME FROM EMP E, DEPT D WHERE E.SAL + 10 * 2 = D.DNO ORDER BY E.NAME",
        )
        .unwrap();
        assert_eq!(q.order_by, vec![crate::scalar::QCol::new(QId(0), ColId(0))]);
        assert_eq!(
            q.pred(PredId(0)).quantifiers(),
            QSet::from_iter([QId(0), QId(1)])
        );
    }

    #[test]
    fn parenthesized_scalar_not_confused_with_or_group() {
        let cat = cat();
        let q = parse_query(&cat, "SELECT E.NAME FROM EMP E WHERE (E.SAL + 1) > 2").unwrap();
        assert_eq!(q.predicates.len(), 1);
    }

    #[test]
    fn errors_reported() {
        let cat = cat();
        assert!(parse_query(&cat, "SELECT FROM EMP").is_err());
        assert!(parse_query(&cat, "SELECT E.NAME FROM EMP E WHERE").is_err());
        assert!(parse_query(&cat, "SELECT E.NOPE FROM EMP E").is_err());
        assert!(parse_query(&cat, "SELECT E.NAME FROM NOPE E").is_err());
        assert!(parse_query(&cat, "SELECT E.NAME FROM EMP E extra garbage").is_err());
        assert!(parse_query(&cat, "SELECT E.NAME FROM EMP E WHERE E.SAL = 'oops").is_err());
        assert!(parse_query(&cat, "SELECT E.NAME FROM EMP E WHERE E.SAL ! 3").is_err());
    }

    #[test]
    fn negative_numbers() {
        let cat = cat();
        let q = parse_query(&cat, "SELECT E.NAME FROM EMP E WHERE E.SAL > -5").unwrap();
        assert_eq!(q.predicates.len(), 1);
    }
}

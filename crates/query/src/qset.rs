//! Quantifier identifiers and bitset quantifier sets.

use std::fmt;

/// Identifier of a quantifier (a table reference / range variable) within a
/// query. Queries are limited to 64 quantifiers so that quantifier sets fit
/// in one machine word — plenty for the paper's join-enumeration experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct QId(pub u32);

impl fmt::Display for QId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q{}", self.0)
    }
}

/// A set of quantifiers, as a 64-bit bitset.
///
/// This is the paper's "table (quantifier) set" — the `T1`, `T2` parameters
/// of `JoinRoot` and friends. Bottom-up enumeration (§2.3) is dynamic
/// programming over these sets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct QSet(pub u64);

impl QSet {
    pub const EMPTY: QSet = QSet(0);

    pub fn single(q: QId) -> Self {
        debug_assert!(q.0 < 64, "at most 64 quantifiers per query");
        QSet(1u64 << q.0)
    }

    /// All quantifiers `q0..qn`.
    pub fn all(n: usize) -> Self {
        debug_assert!(n <= 64);
        if n == 64 {
            QSet(u64::MAX)
        } else {
            QSet((1u64 << n) - 1)
        }
    }

    #[must_use]
    pub fn insert(self, q: QId) -> Self {
        QSet(self.0 | (1u64 << q.0))
    }

    #[must_use]
    pub fn remove(self, q: QId) -> Self {
        QSet(self.0 & !(1u64 << q.0))
    }

    pub fn contains(self, q: QId) -> bool {
        self.0 & (1u64 << q.0) != 0
    }

    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Number of quantifiers — the paper's `|T|`.
    pub fn len(self) -> u32 {
        self.0.count_ones()
    }

    /// True if this is a composite (result of a join): `|T| > 1`.
    pub fn is_composite(self) -> bool {
        self.len() > 1
    }

    #[must_use]
    pub fn union(self, other: QSet) -> Self {
        QSet(self.0 | other.0)
    }

    #[must_use]
    pub fn intersect(self, other: QSet) -> Self {
        QSet(self.0 & other.0)
    }

    #[must_use]
    pub fn minus(self, other: QSet) -> Self {
        QSet(self.0 & !other.0)
    }

    pub fn is_subset_of(self, other: QSet) -> bool {
        self.0 & !other.0 == 0
    }

    pub fn is_disjoint(self, other: QSet) -> bool {
        self.0 & other.0 == 0
    }

    /// The single quantifier, if `|T| == 1`.
    pub fn as_single(self) -> Option<QId> {
        if self.len() == 1 {
            Some(QId(self.0.trailing_zeros()))
        } else {
            None
        }
    }

    pub fn iter(self) -> impl Iterator<Item = QId> {
        let mut bits = self.0;
        std::iter::from_fn(move || {
            if bits == 0 {
                None
            } else {
                let i = bits.trailing_zeros();
                bits &= bits - 1;
                Some(QId(i))
            }
        })
    }

    /// Enumerate all non-empty proper subsets of this set. Used by bushy
    /// join enumeration (composite inners, §2.3).
    pub fn proper_subsets(self) -> impl Iterator<Item = QSet> {
        let full = self.0;
        let mut sub = full & full.wrapping_sub(1); // largest proper subset
        let mut done = full == 0;
        std::iter::from_fn(move || {
            if done {
                return None;
            }
            if sub != 0 {
                let cur = QSet(sub);
                sub = (sub - 1) & full;
                return Some(cur);
            }
            done = true;
            None
        })
    }
}

impl FromIterator<QId> for QSet {
    fn from_iter<T: IntoIterator<Item = QId>>(iter: T) -> Self {
        iter.into_iter().fold(QSet::EMPTY, |s, q| s.insert(q))
    }
}

impl fmt::Display for QSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, q) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{q}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_set_ops() {
        let a = QSet::from_iter([QId(0), QId(2)]);
        let b = QSet::single(QId(2)).insert(QId(5));
        assert_eq!(a.len(), 2);
        assert!(a.contains(QId(2)));
        assert!(!a.contains(QId(1)));
        assert_eq!(a.union(b).len(), 3);
        assert_eq!(a.intersect(b), QSet::single(QId(2)));
        assert_eq!(a.minus(b), QSet::single(QId(0)));
        assert!(QSet::single(QId(2)).is_subset_of(a));
        assert!(a
            .remove(QId(2))
            .is_disjoint(b.remove(QId(2)).remove(QId(5))));
    }

    #[test]
    fn single_and_composite() {
        assert_eq!(QSet::single(QId(3)).as_single(), Some(QId(3)));
        assert!(QSet::from_iter([QId(0), QId(1)]).as_single().is_none());
        assert!(QSet::from_iter([QId(0), QId(1)]).is_composite());
        assert!(!QSet::single(QId(0)).is_composite());
        assert!(QSet::EMPTY.is_empty());
    }

    #[test]
    fn iteration_order_is_ascending() {
        let s = QSet::from_iter([QId(5), QId(1), QId(9)]);
        let v: Vec<_> = s.iter().collect();
        assert_eq!(v, vec![QId(1), QId(5), QId(9)]);
        assert_eq!(s.to_string(), "{q1,q5,q9}");
    }

    #[test]
    fn all_constructor() {
        assert_eq!(QSet::all(3), QSet::from_iter([QId(0), QId(1), QId(2)]));
        assert_eq!(QSet::all(0), QSet::EMPTY);
        assert_eq!(QSet::all(64).len(), 64);
    }

    #[test]
    fn proper_subsets_enumerates_all() {
        let s = QSet::all(3);
        let subs: Vec<_> = s.proper_subsets().collect();
        // 2^3 - 2 = 6 non-empty proper subsets.
        assert_eq!(subs.len(), 6);
        for sub in &subs {
            assert!(!sub.is_empty());
            assert!(sub.is_subset_of(s));
            assert_ne!(*sub, s);
        }
        // Pairs (sub, complement) partition the set.
        for sub in subs {
            let comp = s.minus(sub);
            assert_eq!(sub.union(comp), s);
        }
    }

    #[test]
    fn proper_subsets_of_singleton_is_empty() {
        assert_eq!(QSet::single(QId(0)).proper_subsets().count(), 0);
        assert_eq!(QSet::EMPTY.proper_subsets().count(), 0);
    }
}

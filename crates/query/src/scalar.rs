//! Scalar expressions over quantified columns and constants.

use std::collections::BTreeSet;
use std::fmt;

use starqo_catalog::{ColId, Value};

use crate::qset::{QId, QSet};

/// A quantified column reference: a column of a particular quantifier.
///
/// This is the currency of the χ(·) ("columns of") function in the paper's
/// rules, of the ORDER property, and of stream schemas.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct QCol {
    pub q: QId,
    pub col: ColId,
}

impl QCol {
    pub fn new(q: QId, col: ColId) -> Self {
        QCol { q, col }
    }
}

impl fmt::Display for QCol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.q, self.col)
    }
}

/// Arithmetic operators usable inside scalar expressions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArithOp {
    Add,
    Sub,
    Mul,
    Div,
}

impl ArithOp {
    pub fn apply(self, l: f64, r: f64) -> f64 {
        match self {
            ArithOp::Add => l + r,
            ArithOp::Sub => l - r,
            ArithOp::Mul => l * r,
            ArithOp::Div => l / r,
        }
    }

    pub fn symbol(self) -> &'static str {
        match self {
            ArithOp::Add => "+",
            ArithOp::Sub => "-",
            ArithOp::Mul => "*",
            ArithOp::Div => "/",
        }
    }
}

/// A scalar expression: a column, a constant, or arithmetic over them.
///
/// The paper generalizes System R's `col1 = col2` join predicates to
/// arbitrary "expressions OK" multi-table predicates (§2.3, §4.4); `Arith`
/// is what makes `expr(χ(T1)) = expr(χ(T2))` hashable predicates (§4.5.1)
/// expressible.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Scalar {
    Col(QCol),
    Const(Value),
    Arith(ArithOp, Box<Scalar>, Box<Scalar>),
}

impl Scalar {
    pub fn col(q: QId, c: ColId) -> Self {
        Scalar::Col(QCol::new(q, c))
    }

    /// The set of quantifiers referenced by this expression.
    pub fn quantifiers(&self) -> QSet {
        match self {
            Scalar::Col(c) => QSet::single(c.q),
            Scalar::Const(_) => QSet::EMPTY,
            Scalar::Arith(_, l, r) => l.quantifiers().union(r.quantifiers()),
        }
    }

    /// Collect the quantified columns referenced by this expression.
    pub fn collect_cols(&self, out: &mut BTreeSet<QCol>) {
        match self {
            Scalar::Col(c) => {
                out.insert(*c);
            }
            Scalar::Const(_) => {}
            Scalar::Arith(_, l, r) => {
                l.collect_cols(out);
                r.collect_cols(out);
            }
        }
    }

    /// If this expression is a bare column, return it.
    pub fn as_col(&self) -> Option<QCol> {
        match self {
            Scalar::Col(c) => Some(*c),
            _ => None,
        }
    }

    pub fn is_const(&self) -> bool {
        matches!(self, Scalar::Const(_))
    }
}

impl fmt::Display for Scalar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Scalar::Col(c) => write!(f, "{c}"),
            Scalar::Const(v) => write!(f, "{v}"),
            Scalar::Arith(op, l, r) => write!(f, "({l} {} {r})", op.symbol()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantifiers_of_expressions() {
        let e = Scalar::Arith(
            ArithOp::Add,
            Box::new(Scalar::col(QId(0), ColId(1))),
            Box::new(Scalar::Arith(
                ArithOp::Mul,
                Box::new(Scalar::col(QId(2), ColId(0))),
                Box::new(Scalar::Const(Value::Int(3))),
            )),
        );
        assert_eq!(e.quantifiers(), QSet::from_iter([QId(0), QId(2)]));
        let mut cols = BTreeSet::new();
        e.collect_cols(&mut cols);
        assert_eq!(cols.len(), 2);
        assert_eq!(e.to_string(), "(q0.c1 + (q2.c0 * 3))");
    }

    #[test]
    fn as_col_only_for_bare_columns() {
        assert!(Scalar::col(QId(0), ColId(0)).as_col().is_some());
        assert!(Scalar::Const(Value::Int(1)).as_col().is_none());
        assert!(Scalar::Const(Value::Int(1)).is_const());
        let a = Scalar::Arith(
            ArithOp::Sub,
            Box::new(Scalar::col(QId(0), ColId(0))),
            Box::new(Scalar::Const(Value::Int(1))),
        );
        assert!(a.as_col().is_none());
    }

    #[test]
    fn arith_apply() {
        assert_eq!(ArithOp::Add.apply(2.0, 3.0), 5.0);
        assert_eq!(ArithOp::Div.apply(6.0, 3.0), 2.0);
        assert_eq!(ArithOp::Sub.apply(2.0, 3.0), -1.0);
        assert_eq!(ArithOp::Mul.apply(2.0, 3.0), 6.0);
    }
}

//! Predicates and predicate-set bitsets.

use std::collections::BTreeSet;
use std::fmt;

use crate::qset::QSet;
use crate::scalar::{QCol, Scalar};

/// Identifier of a predicate within a query (index into `Query::predicates`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PredId(pub u32);

impl fmt::Display for PredId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl CmpOp {
    pub fn symbol(self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "<>",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        }
    }

    /// The operator with its operands swapped (`a < b` ⇔ `b > a`).
    pub fn flipped(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
        }
    }

    pub fn eval(self, ord: std::cmp::Ordering) -> bool {
        use std::cmp::Ordering::*;
        match self {
            CmpOp::Eq => ord == Equal,
            CmpOp::Ne => ord != Equal,
            CmpOp::Lt => ord == Less,
            CmpOp::Le => ord != Greater,
            CmpOp::Gt => ord == Greater,
            CmpOp::Ge => ord != Less,
        }
    }
}

/// A boolean predicate expression. Queries are conjunctions of these; an
/// `Or` node packages a disjunction of comparisons (which, per §4.4, is then
/// *not* a join predicate — "no ORs or subqueries").
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum PredExpr {
    Cmp(CmpOp, Scalar, Scalar),
    Or(Vec<PredExpr>),
}

impl PredExpr {
    pub fn quantifiers(&self) -> QSet {
        match self {
            PredExpr::Cmp(_, l, r) => l.quantifiers().union(r.quantifiers()),
            PredExpr::Or(ps) => ps.iter().fold(QSet::EMPTY, |s, p| s.union(p.quantifiers())),
        }
    }

    pub fn collect_cols(&self, out: &mut BTreeSet<QCol>) {
        match self {
            PredExpr::Cmp(_, l, r) => {
                l.collect_cols(out);
                r.collect_cols(out);
            }
            PredExpr::Or(ps) => {
                for p in ps {
                    p.collect_cols(out);
                }
            }
        }
    }

    pub fn contains_or(&self) -> bool {
        matches!(self, PredExpr::Or(_))
    }
}

impl fmt::Display for PredExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PredExpr::Cmp(op, l, r) => write!(f, "{l} {} {r}", op.symbol()),
            PredExpr::Or(ps) => {
                write!(f, "(")?;
                for (i, p) in ps.iter().enumerate() {
                    if i > 0 {
                        write!(f, " OR ")?;
                    }
                    write!(f, "{p}")?;
                }
                write!(f, ")")
            }
        }
    }
}

/// A predicate of the query: an id plus its expression.
#[derive(Debug, Clone)]
pub struct Predicate {
    pub id: PredId,
    pub expr: PredExpr,
}

impl Predicate {
    /// Set of quantifiers the predicate references.
    pub fn quantifiers(&self) -> QSet {
        self.expr.quantifiers()
    }

    /// χ(p): the columns of the predicate.
    pub fn cols(&self) -> BTreeSet<QCol> {
        let mut out = BTreeSet::new();
        self.expr.collect_cols(&mut out);
        out
    }
}

/// A set of predicates, as a 128-bit bitset (up to 128 predicates/query).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PredSet(pub u128);

impl PredSet {
    pub const EMPTY: PredSet = PredSet(0);

    pub fn single(p: PredId) -> Self {
        debug_assert!(p.0 < 128, "at most 128 predicates per query");
        PredSet(1u128 << p.0)
    }

    #[must_use]
    pub fn insert(self, p: PredId) -> Self {
        PredSet(self.0 | (1u128 << p.0))
    }

    pub fn contains(self, p: PredId) -> bool {
        self.0 & (1u128 << p.0) != 0
    }

    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    pub fn len(self) -> u32 {
        self.0.count_ones()
    }

    #[must_use]
    pub fn union(self, other: PredSet) -> Self {
        PredSet(self.0 | other.0)
    }

    #[must_use]
    pub fn intersect(self, other: PredSet) -> Self {
        PredSet(self.0 & other.0)
    }

    #[must_use]
    pub fn minus(self, other: PredSet) -> Self {
        PredSet(self.0 & !other.0)
    }

    pub fn is_subset_of(self, other: PredSet) -> bool {
        self.0 & !other.0 == 0
    }

    pub fn iter(self) -> impl Iterator<Item = PredId> {
        let mut bits = self.0;
        std::iter::from_fn(move || {
            if bits == 0 {
                None
            } else {
                let i = bits.trailing_zeros();
                bits &= bits - 1;
                Some(PredId(i))
            }
        })
    }
}

impl FromIterator<PredId> for PredSet {
    fn from_iter<T: IntoIterator<Item = PredId>>(iter: T) -> Self {
        iter.into_iter().fold(PredSet::EMPTY, |s, p| s.insert(p))
    }
}

impl fmt::Display for PredSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, p) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{p}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qset::QId;
    use starqo_catalog::{ColId, Value};

    fn cmp(op: CmpOp, l: Scalar, r: Scalar) -> PredExpr {
        PredExpr::Cmp(op, l, r)
    }

    #[test]
    fn cmp_op_eval_and_flip() {
        use std::cmp::Ordering::*;
        assert!(CmpOp::Eq.eval(Equal));
        assert!(!CmpOp::Eq.eval(Less));
        assert!(CmpOp::Le.eval(Equal));
        assert!(CmpOp::Ne.eval(Greater));
        assert!(CmpOp::Ge.eval(Greater));
        assert_eq!(CmpOp::Lt.flipped(), CmpOp::Gt);
        assert_eq!(CmpOp::Eq.flipped(), CmpOp::Eq);
        assert_eq!(CmpOp::Le.flipped(), CmpOp::Ge);
    }

    #[test]
    fn pred_quantifiers_and_cols() {
        let p = Predicate {
            id: PredId(0),
            expr: cmp(
                CmpOp::Eq,
                Scalar::col(QId(0), ColId(0)),
                Scalar::col(QId(1), ColId(2)),
            ),
        };
        assert_eq!(p.quantifiers(), QSet::from_iter([QId(0), QId(1)]));
        assert_eq!(p.cols().len(), 2);
        assert_eq!(p.expr.to_string(), "q0.c0 = q1.c2");
    }

    #[test]
    fn or_predicates_detected() {
        let or = PredExpr::Or(vec![
            cmp(
                CmpOp::Eq,
                Scalar::col(QId(0), ColId(0)),
                Scalar::Const(Value::Int(1)),
            ),
            cmp(
                CmpOp::Eq,
                Scalar::col(QId(0), ColId(0)),
                Scalar::Const(Value::Int(2)),
            ),
        ]);
        assert!(or.contains_or());
        assert_eq!(or.quantifiers(), QSet::single(QId(0)));
        assert_eq!(or.to_string(), "(q0.c0 = 1 OR q0.c0 = 2)");
    }

    #[test]
    fn predset_ops() {
        let a = PredSet::from_iter([PredId(0), PredId(100)]);
        let b = PredSet::single(PredId(100));
        assert_eq!(a.len(), 2);
        assert!(b.is_subset_of(a));
        assert_eq!(a.minus(b), PredSet::single(PredId(0)));
        assert_eq!(a.intersect(b), b);
        assert_eq!(a.union(b), a);
        assert!(a.contains(PredId(100)));
        assert!(!a.contains(PredId(1)));
        let v: Vec<_> = a.iter().collect();
        assert_eq!(v, vec![PredId(0), PredId(100)]);
        assert_eq!(b.to_string(), "{p100}");
    }
}

//! `starqo-obs watch`: a continuously refreshing view over a serving
//! telemetry snapshot. The watcher re-reads the exported snapshot each
//! tick, folds it into a [`SnapshotRing`] of interval deltas, and renders
//! the live dashboard for the latest window plus a trend section
//! (requests/s series, cache hit trend, drift/suspect movement) computed
//! from the retained ring.

use starqo_trace::{SnapshotRing, TelemetrySnapshot};

use crate::fmt::sparkline;
use crate::live::LiveReport;

/// Stateful watch loop driver: feed it the latest absolute snapshot every
/// tick, get back the rendered frame.
#[derive(Debug)]
pub struct Watcher {
    ring: SnapshotRing,
    ticks: u64,
}

impl Watcher {
    /// A watcher keeping the last `window` interval deltas for trends.
    pub fn new(window: usize) -> Watcher {
        Watcher {
            ring: SnapshotRing::new(window),
            ticks: 0,
        }
    }

    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// The delta ring backing the trend section.
    pub fn ring(&self) -> &SnapshotRing {
        &self.ring
    }

    /// Fold in one absolute snapshot and render the frame. The first tick
    /// has no interval yet, so it renders the lifetime view; later ticks
    /// render the latest window plus trends.
    pub fn tick(&mut self, snapshot: TelemetrySnapshot) -> String {
        self.ticks += 1;
        let delta = self.ring.push(snapshot);
        let mut out = match (&delta, self.ring.last_absolute()) {
            (Some(d), _) => LiveReport::new(d.clone()).interval_render(),
            (None, Some(abs)) => LiveReport::new(abs.clone()).render(),
            (None, None) => String::new(),
        };
        out.push_str(&self.render_trend());
        out
    }

    /// The trend section over the retained ring (empty until two deltas
    /// exist — one point is not a trend).
    fn render_trend(&self) -> String {
        if self.ring.len() < 2 {
            return "\n-- trend --\n  (collecting: need two intervals)\n".to_string();
        }
        let mut out = String::from("\n-- trend --\n");
        let rate: Vec<u64> = self
            .ring
            .deltas()
            .iter()
            .map(|d| d.requests_per_sec().round().max(0.0) as u64)
            .collect();
        out.push_str(&format!(
            "  requests/s      {}  (last {})\n",
            sparkline(&rate),
            rate.last().copied().unwrap_or(0)
        ));
        let hits: Vec<u64> = self
            .ring
            .deltas()
            .iter()
            .map(|d| (d.hit_ratio() * 100.0).round() as u64)
            .collect();
        out.push_str(&format!(
            "  cache hit %     {}  (last {})\n",
            sparkline(&hits),
            hits.last().copied().unwrap_or(0)
        ));
        let flagged = self.ring.counter_series("serve_suspects_flagged");
        out.push_str(&format!(
            "  new suspects    {}  (last {})\n",
            sparkline(&flagged),
            flagged.last().copied().unwrap_or(0)
        ));
        let reopts = self.ring.counter_series("serve_reopt_attempts");
        let swaps = self.ring.counter_series("serve_plan_swap");
        if reopts.iter().chain(swaps.iter()).any(|v| *v > 0) {
            out.push_str(&format!(
                "  reopt attempts  {}  (last {})\n",
                sparkline(&reopts),
                reopts.last().copied().unwrap_or(0)
            ));
            out.push_str(&format!(
                "  plan swaps      {}  (last {})\n",
                sparkline(&swaps),
                swaps.last().copied().unwrap_or(0)
            ));
        }
        if let Some(abs) = self.ring.last_absolute() {
            let capped: Vec<String> = abs
                .heal
                .iter()
                .filter(|h| h.retry_capped)
                .take(4)
                .map(|h| format!("{:#x}", h.fp))
                .collect();
            if !capped.is_empty() {
                out.push_str(&format!(
                    "  heal            {} retry-capped fingerprint(s): {}\n",
                    capped.len(),
                    capped.join(", ")
                ));
            }
        }
        if let Some(abs) = self.ring.last_absolute() {
            let suspects = abs.suspects();
            if !suspects.is_empty() {
                out.push_str(&format!(
                    "  drift           {} suspect plan(s) total: {}\n",
                    suspects.len(),
                    suspects
                        .iter()
                        .take(4)
                        .map(|e| format!("{:#x}", e.fp))
                        .collect::<Vec<_>>()
                        .join(", ")
                ));
            }
        }
        out
    }
}

impl LiveReport {
    /// Render `self`'s snapshot as an interval view (the watch loop builds
    /// deltas itself via the ring, so it needs the interval header without
    /// re-diffing).
    fn interval_render(&self) -> String {
        // `LiveReport::since` against an empty baseline keeps the data but
        // flips the header to "interval".
        let empty = TelemetrySnapshot::default();
        LiveReport::since(self.snapshot(), &empty).render()
    }
}

/// A deterministic sequence of absolute snapshots for smoke-testing the
/// watch loop without a live service: steady traffic with a drift flag
/// appearing mid-sequence.
pub fn smoke_sequence() -> Vec<TelemetrySnapshot> {
    (0..4u64)
        .map(|i| {
            let mut s = crate::live::smoke_snapshot();
            s.uptime_nanos = (i + 1) * 1_000_000_000;
            for (name, v) in s.counters.iter_mut() {
                // Counters grow linearly; the suspect flag lands on tick 3.
                *v = match name.as_str() {
                    "serve_suspects_flagged" => u64::from(i >= 2),
                    _ => *v * (i + 1) / 4,
                };
            }
            s
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_tick_is_lifetime_later_ticks_are_intervals_with_trends() {
        let mut w = Watcher::new(8);
        let frames: Vec<String> = smoke_sequence().into_iter().map(|s| w.tick(s)).collect();
        assert_eq!(w.ticks(), 4);
        assert!(frames[0].contains("uptime"), "first frame is lifetime");
        assert!(frames[0].contains("collecting"));
        assert!(frames[1].contains("interval"), "{}", frames[1]);
        // By the third tick two deltas exist: trends render. The suspect
        // flag lands in the second delta, so frame 2 shows it fresh.
        assert!(frames[2].contains("requests/s"));
        assert!(frames[2].contains("new suspects"));
        let suspects_line = |f: &str| {
            f.lines()
                .find(|l| l.contains("new suspects"))
                .map(str::to_string)
                .unwrap_or_default()
        };
        assert!(
            suspects_line(&frames[2]).contains("(last 1)"),
            "{}",
            frames[2]
        );
        assert!(
            suspects_line(&frames[3]).contains("(last 0)"),
            "{}",
            frames[3]
        );
        assert_eq!(w.ring().len(), 3);
        // Heal trend: the smoke sequence's reopt/swap counters grow, so
        // both series render once two deltas exist.
        assert!(frames[2].contains("reopt attempts"), "{}", frames[2]);
        let swaps_line = frames[3]
            .lines()
            .find(|l| l.contains("plan swaps"))
            .expect("plan swaps trend");
        assert!(swaps_line.contains("(last 1)"), "{swaps_line}");
    }

    #[test]
    fn retry_capped_fingerprints_surface_in_the_trend() {
        let mut w = Watcher::new(4);
        for mut s in smoke_sequence() {
            s.heal[0].retry_capped = true;
            w.tick(s);
        }
        let frame = w.tick({
            let mut s = crate::live::smoke_snapshot();
            s.uptime_nanos = 5_000_000_000;
            s.heal[0].retry_capped = true;
            s
        });
        assert!(
            frame.contains("1 retry-capped fingerprint(s): 0xa11ce"),
            "{frame}"
        );
    }

    #[test]
    fn trend_series_reflects_ring_deltas() {
        let mut w = Watcher::new(4);
        for s in smoke_sequence() {
            w.tick(s);
        }
        // serve_requests absolutes: 50, 100, 150, 200 → deltas 50 each.
        assert_eq!(w.ring().counter_series("serve_requests"), vec![50, 50, 50]);
        assert_eq!(
            w.ring().counter_series("serve_suspects_flagged"),
            vec![0, 1, 0]
        );
    }
}

//! Estimation-accuracy analytics: join the optimizer's CARD/COST estimates
//! with the executor's measured actuals and report Q-error.
//!
//! The join key is the plan node's structural fingerprint: `best_node`
//! events carry the winning plan's estimates, `plan_built` events carry the
//! per-component cost breakdown, and `exec_node` events carry the measured
//! rows/invocations/nanos for the same fingerprints. A multi-query stream
//! is segmented by `query_start`/`query_done` markers (a stream with no
//! markers is treated as one unnamed query).
//!
//! **Q-error** is the standard symmetric ratio `max(est/act, act/est)`
//! (≥ 1, 1 = perfect). Cardinalities are floored at half a row before the
//! ratio so that est=0/act=0 is well-defined (see [`q_error`]).
//!
//! **Cost Q-error** needs two extra steps. First, estimates are expanded
//! to the actual invocation count: the cost model charges a node's
//! `rescan` cost once *per invocation* (an NL inner is probed outer-card
//! times) while `best_node.cost` folds it in once — comparing that folded
//! number against inclusive nanos over hundreds of probes would
//! manufacture huge phantom errors. Second, estimated cost is in abstract
//! units and actual time in nanoseconds, so the report fits a single
//! per-run scale (the geometric mean of `nanos/cost` over joined nodes)
//! and measures Q-error against the *scaled* estimate — i.e. it scores the
//! cost model's proportionality, which is all plan ranking needs and
//! exactly what calibration (`starqo-obs calibrate`) can improve.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::fmt::Write as _;

use starqo_trace::json::JsonObj;
use starqo_trace::{CostBreakdownEv, Histogram, TraceEvent};

use crate::fmt::fmt_nanos;

/// Fixed-point factor used when recording Q-errors (which are ≥ 1.0 floats)
/// into the integer log₂ [`Histogram`]: `record(round(q × 1000))`.
pub const Q_MILLI: f64 = 1000.0;

/// The symmetric estimation error `max(est/act, act/est)` with both sides
/// floored at half a row: est=0/act=0 → 1.0 (a correct "empty" estimate),
/// est=0/act=10 → 20.0, and no division by zero anywhere.
pub fn q_error(est: f64, act: f64) -> f64 {
    q_error_floored(est, act, 0.5)
}

/// [`q_error`] with an explicit floor (cost comparisons floor at 1 nano
/// instead of half a row). Non-finite inputs clamp to the floor.
pub fn q_error_floored(est: f64, act: f64, floor: f64) -> f64 {
    let e = if est.is_finite() {
        est.max(floor)
    } else {
        floor
    };
    let a = if act.is_finite() {
        act.max(floor)
    } else {
        floor
    };
    (e / a).max(a / e)
}

/// One plan node with both sides of the join: what the optimizer promised
/// and what the executor measured.
#[derive(Debug, Clone)]
pub struct NodeJoin {
    pub query: String,
    pub op: String,
    /// Rule lineage from `best_node` (e.g. `"JMeth[alt 2]"`).
    pub origin: String,
    pub fp: u64,
    pub depth: usize,
    pub est_card: f64,
    /// Estimated total (inclusive) cost in model units. When a
    /// `plan_built` event supplied the once/rescan split, this is
    /// `cost_once + cost_rescan × invocations` — the model charges
    /// `rescan` once per invocation (an NL inner is probed outer-card
    /// times; `starqo_plan::Cost` documents the split), so the estimate
    /// must be expanded to the actual invocation count before it is
    /// comparable with the node's inclusive nanos. Falls back to the
    /// folded `best_node` cost (`once + rescan`) otherwise.
    pub est_cost: f64,
    /// Per-component estimate split, when a `plan_built` event was seen —
    /// scaled proportionally to the invocation-expanded `est_cost`.
    pub breakdown: Option<CostBreakdownEv>,
    pub act_rows: u64,
    pub act_invocations: u64,
    /// Inclusive wall-clock nanos across all invocations.
    pub act_nanos: u64,
    pub card_q: f64,
    /// Q-error of the *scale-normalized* cost estimate vs actual nanos.
    pub cost_q: f64,
}

/// Q-error statistics for one aggregation group (a LOLEPOP, a STAR rule).
#[derive(Debug, Clone, Default)]
pub struct GroupStats {
    pub name: String,
    pub card_q: Vec<f64>,
    pub cost_q: Vec<f64>,
    pub card_hist: Histogram,
    pub cost_hist: Histogram,
}

impl GroupStats {
    pub fn nodes(&self) -> u64 {
        self.card_q.len() as u64
    }

    fn push(&mut self, n: &NodeJoin) {
        self.card_q.push(n.card_q);
        self.cost_q.push(n.cost_q);
        self.card_hist.record(milli(n.card_q));
        self.cost_hist.record(milli(n.cost_q));
    }

    fn seal(&mut self) {
        self.card_q.sort_by(f64::total_cmp);
        self.cost_q.sort_by(f64::total_cmp);
    }
}

/// Per-query roll-up.
#[derive(Debug, Clone, Default)]
pub struct QuerySummary {
    pub name: String,
    /// Nodes of the winning plan that matched an executor actual.
    pub joined: u64,
    /// Final row count reported by `query_done` (or the root actual).
    pub rows: u64,
    /// Optimize+execute wall time from `query_done` (0 if absent).
    pub nanos: u64,
    pub root_card_q: Option<f64>,
    pub root_cost_q: Option<f64>,
    pub card_hist: Histogram,
    pub cost_hist: Histogram,
}

/// The estimate-vs-actual join over a whole trace.
#[derive(Debug, Clone, Default)]
pub struct AccuracyReport {
    /// Every joined node, in stream order.
    pub nodes: Vec<NodeJoin>,
    pub queries: Vec<QuerySummary>,
    pub by_op: Vec<GroupStats>,
    pub by_rule: Vec<GroupStats>,
    /// Workload-wide distributions: the per-query histograms merged.
    pub card_hist: Histogram,
    pub cost_hist: Histogram,
    /// Fitted nanos-per-cost-unit scale (geometric mean over joined nodes).
    pub cost_scale: f64,
    /// Winning-plan nodes with no matching executor actual.
    pub unmatched_est: u64,
    /// Executor actuals with no matching winning-plan node.
    pub unmatched_act: u64,
}

fn milli(q: f64) -> u64 {
    (q * Q_MILLI).round().clamp(0.0, u64::MAX as f64) as u64
}

/// Exact quantile of an ascending-sorted slice (nearest-rank).
fn quantile_of(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let rank = ((q.clamp(0.0, 1.0) * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// One per-query segment accumulated while walking the stream.
#[derive(Default)]
struct Seg {
    name: String,
    /// (fp, op, depth, origin, card, cost) in pre-order; fps may repeat for
    /// shared subtrees.
    best: Vec<(u64, String, usize, String, f64, f64)>,
    /// fp → (cost_once, cost_rescan, combined breakdown).
    built: HashMap<u64, (f64, f64, CostBreakdownEv)>,
    exec: HashMap<u64, (String, u64, u64, u64)>,
    done: Option<(u64, u64)>,
}

impl Seg {
    fn is_blank(&self) -> bool {
        self.best.is_empty() && self.exec.is_empty() && self.done.is_none()
    }
}

impl AccuracyReport {
    pub fn from_events(events: &[TraceEvent]) -> AccuracyReport {
        // Pass 1: segment the stream by query markers.
        let mut segs: Vec<Seg> = Vec::new();
        let mut cur = Seg {
            name: "(run)".to_string(),
            ..Seg::default()
        };
        for ev in events {
            match ev {
                TraceEvent::QueryStart { name } => {
                    if !cur.is_blank() {
                        segs.push(std::mem::take(&mut cur));
                    }
                    cur = Seg {
                        name: name.clone(),
                        ..Seg::default()
                    };
                }
                TraceEvent::QueryDone { rows, nanos, .. } => {
                    cur.done = Some((*rows, *nanos));
                }
                TraceEvent::BestNode {
                    op,
                    fp,
                    depth,
                    origin,
                    card,
                    cost,
                } => cur
                    .best
                    .push((*fp, op.clone(), *depth, origin.clone(), *card, *cost)),
                TraceEvent::PlanBuilt {
                    fp,
                    cost_once,
                    cost_rescan,
                    breakdown,
                    ..
                } => {
                    cur.built
                        .insert(*fp, (*cost_once, *cost_rescan, *breakdown));
                }
                TraceEvent::ExecNode {
                    op,
                    fp,
                    rows_out,
                    invocations,
                    nanos,
                } if *fp != 0 => {
                    // A segment may execute the same plan several times
                    // (workload runners repeat the traced run to tame timing
                    // noise); keep the fastest observation per node — the
                    // minimum is the standard robust estimator for repeated
                    // timings, and rows/invocations are identical across
                    // runs of the same plan.
                    cur.exec
                        .entry(*fp)
                        .and_modify(|e| {
                            if *nanos < e.3 {
                                *e = (op.clone(), *rows_out, *invocations, *nanos);
                            }
                        })
                        .or_insert_with(|| (op.clone(), *rows_out, *invocations, *nanos));
                }
                _ => {}
            }
        }
        if !cur.is_blank() {
            segs.push(cur);
        }

        // Pass 2: join estimates to actuals per segment.
        let mut report = AccuracyReport {
            cost_scale: 1.0,
            ..AccuracyReport::default()
        };
        for seg in &segs {
            let mut q = QuerySummary {
                name: seg.name.clone(),
                ..QuerySummary::default()
            };
            if let Some((rows, nanos)) = seg.done {
                q.rows = rows;
                q.nanos = nanos;
            }
            let mut seen = HashSet::new();
            for (fp, op, depth, origin, card, cost) in &seg.best {
                if !seen.insert(*fp) {
                    continue; // shared subtree: one actual, count it once
                }
                match seg.exec.get(fp) {
                    Some((_, rows_out, invocations, nanos)) => {
                        // Expand the estimate to the actual invocation
                        // count: the model's convention is `once` charged
                        // once and `rescan` charged per invocation (the
                        // actuals' inclusive nanos cover every probe of a
                        // rescanned inner). The component breakdown scales
                        // proportionally — `plan_built` folds once+rescan
                        // attributions together.
                        let (est_cost, breakdown) = match seg.built.get(fp) {
                            Some((once, rescan, bd)) => {
                                let est = once + rescan * (*invocations).max(1) as f64;
                                let folded = once + rescan;
                                let r = if folded > 0.0 { est / folded } else { 1.0 };
                                let scaled = CostBreakdownEv {
                                    io: bd.io * r,
                                    cpu: bd.cpu * r,
                                    comm: bd.comm * r,
                                    other: bd.other * r,
                                };
                                (est, Some(scaled))
                            }
                            None => (*cost, None),
                        };
                        report.nodes.push(NodeJoin {
                            query: seg.name.clone(),
                            op: op.clone(),
                            origin: origin.clone(),
                            fp: *fp,
                            depth: *depth,
                            est_card: *card,
                            est_cost,
                            breakdown,
                            act_rows: *rows_out,
                            act_invocations: *invocations,
                            act_nanos: *nanos,
                            card_q: q_error(*card, *rows_out as f64),
                            cost_q: 1.0, // filled after the scale fit
                        });
                        q.joined += 1;
                    }
                    None => report.unmatched_est += 1,
                }
            }
            report.unmatched_act += seg.exec.keys().filter(|fp| !seen.contains(fp)).count() as u64;
            report.queries.push(q);
        }

        // Pass 3: fit the nanos-per-cost-unit scale (geometric mean) and
        // score the scaled cost estimates.
        let logs: Vec<f64> = report
            .nodes
            .iter()
            .filter(|n| n.est_cost > 0.0 && n.act_nanos > 0)
            .map(|n| (n.act_nanos as f64 / n.est_cost).ln())
            .collect();
        if !logs.is_empty() {
            report.cost_scale = (logs.iter().sum::<f64>() / logs.len() as f64).exp();
        }
        for n in &mut report.nodes {
            n.cost_q = q_error_floored(n.est_cost * report.cost_scale, n.act_nanos as f64, 1.0);
        }

        // Pass 4: aggregate per query / per LOLEPOP / per rule, carrying
        // the distributions in histograms (merged per-query → overall).
        let mut by_op: BTreeMap<String, GroupStats> = BTreeMap::new();
        let mut by_rule: BTreeMap<String, GroupStats> = BTreeMap::new();
        for n in &report.nodes {
            let q = report
                .queries
                .iter_mut()
                .find(|q| q.name == n.query)
                .expect("joined node belongs to a segment");
            q.card_hist.record(milli(n.card_q));
            q.cost_hist.record(milli(n.cost_q));
            if n.depth == 0 {
                q.root_card_q = Some(n.card_q);
                q.root_cost_q = Some(n.cost_q);
                if q.rows == 0 && q.nanos == 0 {
                    q.rows = n.act_rows;
                    q.nanos = n.act_nanos;
                }
            }
            by_op
                .entry(n.op.clone())
                .or_insert_with(|| GroupStats {
                    name: n.op.clone(),
                    ..GroupStats::default()
                })
                .push(n);
            let rule = rule_of(&n.origin);
            by_rule
                .entry(rule.to_string())
                .or_insert_with(|| GroupStats {
                    name: rule.to_string(),
                    ..GroupStats::default()
                })
                .push(n);
        }
        for q in &report.queries {
            report.card_hist.merge(&q.card_hist);
            report.cost_hist.merge(&q.cost_hist);
        }
        report.by_op = by_op.into_values().collect();
        report.by_rule = by_rule.into_values().collect();
        for g in report.by_op.iter_mut().chain(report.by_rule.iter_mut()) {
            g.seal();
        }
        report
    }

    /// Total joined nodes across all queries.
    pub fn joined(&self) -> u64 {
        self.nodes.len() as u64
    }

    /// Ascending card Q-errors over all joined nodes.
    fn all_card_q(&self) -> Vec<f64> {
        let mut v: Vec<f64> = self.nodes.iter().map(|n| n.card_q).collect();
        v.sort_by(f64::total_cmp);
        v
    }

    fn all_cost_q(&self) -> Vec<f64> {
        let mut v: Vec<f64> = self.nodes.iter().map(|n| n.cost_q).collect();
        v.sort_by(f64::total_cmp);
        v
    }

    /// Exact workload-level `(p50, p90, max)` of the card Q-error.
    pub fn card_quantiles(&self) -> (f64, f64, f64) {
        let v = self.all_card_q();
        (
            quantile_of(&v, 0.5),
            quantile_of(&v, 0.9),
            v.last().copied().unwrap_or(f64::NAN),
        )
    }

    /// Exact workload-level `(p50, p90, max)` of the cost Q-error.
    pub fn cost_quantiles(&self) -> (f64, f64, f64) {
        let v = self.all_cost_q();
        (
            quantile_of(&v, 0.5),
            quantile_of(&v, 0.9),
            v.last().copied().unwrap_or(f64::NAN),
        )
    }

    /// Human-readable tables.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "estimation accuracy: {} queries, {} nodes joined ({} est-only, {} act-only), cost scale {} ns/unit",
            self.queries.len(),
            self.joined(),
            self.unmatched_est,
            self.unmatched_act,
            fmt_q(self.cost_scale),
        );
        if self.nodes.is_empty() {
            let _ = writeln!(
                out,
                "no joinable nodes (need best_node + exec_node events with shared fingerprints)"
            );
            return out;
        }

        let group_table = |out: &mut String, title: &str, groups: &[GroupStats]| {
            let _ = writeln!(out, "\nper {title}:");
            let _ = writeln!(
                out,
                "  {:<22} {:>6}  {:>9} {:>9} {:>9}  {:>9} {:>9} {:>9}",
                title, "n", "card p50", "card p90", "card max", "cost p50", "cost p90", "cost max"
            );
            for g in groups {
                let _ = writeln!(
                    out,
                    "  {:<22} {:>6}  {:>9} {:>9} {:>9}  {:>9} {:>9} {:>9}",
                    g.name,
                    g.nodes(),
                    fmt_q(quantile_of(&g.card_q, 0.5)),
                    fmt_q(quantile_of(&g.card_q, 0.9)),
                    fmt_q(quantile_of(&g.card_q, 1.0)),
                    fmt_q(quantile_of(&g.cost_q, 0.5)),
                    fmt_q(quantile_of(&g.cost_q, 0.9)),
                    fmt_q(quantile_of(&g.cost_q, 1.0)),
                );
            }
        };
        group_table(&mut out, "LOLEPOP", &self.by_op);
        group_table(&mut out, "STAR rule", &self.by_rule);

        let _ = writeln!(out, "\nper query:");
        let _ = writeln!(
            out,
            "  {:<26} {:>6} {:>8} {:>9}  {:>11} {:>11}",
            "query", "nodes", "rows", "time", "root card-q", "root cost-q"
        );
        for q in &self.queries {
            let _ = writeln!(
                out,
                "  {:<26} {:>6} {:>8} {:>9}  {:>11} {:>11}",
                q.name,
                q.joined,
                q.rows,
                fmt_nanos(q.nanos),
                q.root_card_q.map(fmt_q).unwrap_or_else(|| "-".into()),
                q.root_cost_q.map(fmt_q).unwrap_or_else(|| "-".into()),
            );
        }

        let (cp50, cp90, cmax) = self.card_quantiles();
        let (tp50, tp90, tmax) = self.cost_quantiles();
        let _ = writeln!(
            out,
            "\noverall card q-error: p50 {} p90 {} max {}",
            fmt_q(cp50),
            fmt_q(cp90),
            fmt_q(cmax)
        );
        let _ = writeln!(
            out,
            "overall cost q-error: p50 {} p90 {} max {}",
            fmt_q(tp50),
            fmt_q(tp90),
            fmt_q(tmax)
        );
        out
    }

    /// Machine-readable JSON (one object; histograms in milli-q units).
    pub fn to_json(&self) -> String {
        let (cp50, cp90, cmax) = self.card_quantiles();
        let (tp50, tp90, tmax) = self.cost_quantiles();
        let dist = |p50: f64, p90: f64, max: f64, hist: &Histogram| {
            JsonObj::new()
                .f64("p50", p50)
                .f64("p90", p90)
                .f64("max", max)
                .raw("milli_hist", &hist.to_json())
                .finish()
        };
        let groups = |gs: &[GroupStats]| {
            let items: Vec<String> = gs
                .iter()
                .map(|g| {
                    JsonObj::new()
                        .str("name", &g.name)
                        .u64("nodes", g.nodes())
                        .raw(
                            "card_q",
                            &dist(
                                quantile_of(&g.card_q, 0.5),
                                quantile_of(&g.card_q, 0.9),
                                quantile_of(&g.card_q, 1.0),
                                &g.card_hist,
                            ),
                        )
                        .raw(
                            "cost_q",
                            &dist(
                                quantile_of(&g.cost_q, 0.5),
                                quantile_of(&g.cost_q, 0.9),
                                quantile_of(&g.cost_q, 1.0),
                                &g.cost_hist,
                            ),
                        )
                        .finish()
                })
                .collect();
            format!("[{}]", items.join(","))
        };
        let per_query: Vec<String> = self
            .queries
            .iter()
            .map(|q| {
                let mut o = JsonObj::new()
                    .str("name", &q.name)
                    .u64("joined", q.joined)
                    .u64("rows", q.rows)
                    .u64("nanos", q.nanos);
                if let Some(v) = q.root_card_q {
                    o = o.f64("root_card_q", v);
                }
                if let Some(v) = q.root_cost_q {
                    o = o.f64("root_cost_q", v);
                }
                o.finish()
            })
            .collect();
        JsonObj::new()
            .u64("queries", self.queries.len() as u64)
            .u64("joined", self.joined())
            .u64("unmatched_est", self.unmatched_est)
            .u64("unmatched_act", self.unmatched_act)
            .f64("cost_scale_ns_per_unit", self.cost_scale)
            .raw("card_q", &dist(cp50, cp90, cmax, &self.card_hist))
            .raw("cost_q", &dist(tp50, tp90, tmax, &self.cost_hist))
            .raw("by_op", &groups(&self.by_op))
            .raw("by_rule", &groups(&self.by_rule))
            .raw("per_query", &format!("[{}]", per_query.join(",")))
            .finish()
    }
}

/// The STAR name from a lineage string: `"JMeth[alt 2]"` → `"JMeth"`.
fn rule_of(origin: &str) -> &str {
    origin.split('[').next().unwrap_or(origin).trim()
}

/// Compact Q-error formatting: more digits where they matter.
fn fmt_q(q: f64) -> String {
    if !q.is_finite() {
        "-".to_string()
    } else if q >= 1000.0 {
        format!("{q:.0}")
    } else if q >= 10.0 {
        format!("{q:.1}")
    } else {
        format!("{q:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn q_error_edge_cases() {
        // Perfect estimates score 1.
        assert_eq!(q_error(5.0, 5.0), 1.0);
        // Symmetric: 4x under and 4x over are the same error.
        assert_eq!(q_error(2.0, 8.0), 4.0);
        assert_eq!(q_error(8.0, 2.0), 4.0);
        // est=0, act=0: both floor to half a row → perfect.
        assert_eq!(q_error(0.0, 0.0), 1.0);
        // est=0 against 10 actual rows: 0.5 vs 10 → 20.
        assert_eq!(q_error(0.0, 10.0), 20.0);
        assert_eq!(q_error(10.0, 0.0), 20.0);
        // Sub-row estimates also floor (0.25 behaves like 0.5).
        assert_eq!(q_error(0.25, 1.0), 2.0);
        // Non-finite garbage clamps instead of poisoning the report.
        assert_eq!(q_error(f64::NAN, 0.0), 1.0);
        assert_eq!(q_error(f64::INFINITY, 0.5), 1.0);
    }

    #[test]
    fn exact_quantiles_nearest_rank() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile_of(&v, 0.5), 2.0);
        assert_eq!(quantile_of(&v, 0.9), 4.0);
        assert_eq!(quantile_of(&v, 1.0), 4.0);
        assert_eq!(quantile_of(&v, 0.0), 1.0);
        assert!(quantile_of(&[], 0.5).is_nan());
    }

    fn best(fp: u64, op: &str, depth: usize, origin: &str, card: f64, cost: f64) -> TraceEvent {
        TraceEvent::BestNode {
            op: op.into(),
            fp,
            depth,
            origin: origin.into(),
            card,
            cost,
        }
    }

    fn exec(fp: u64, op: &str, rows: u64, nanos: u64) -> TraceEvent {
        TraceEvent::ExecNode {
            op: op.into(),
            fp,
            rows_out: rows,
            invocations: 1,
            nanos,
        }
    }

    /// Two queries with hand-computable joins: scale is exactly 100 ns/unit
    /// for every node, so all cost Q-errors are 1; card Q-errors are 2 at
    /// the roots and 1 at the leaves.
    fn two_query_stream() -> Vec<TraceEvent> {
        vec![
            TraceEvent::QueryStart { name: "q1".into() },
            best(1, "JOIN(NL)", 0, "JMeth[alt 1]", 100.0, 50.0),
            best(2, "ACCESS(heap)", 1, "TblAccess[alt 1]", 10.0, 10.0),
            best(3, "SORT", 1, "Sort[alt 1]", 5.0, 5.0), // no actual → est-only
            exec(1, "JOIN(NL)", 50, 5_000),
            exec(2, "ACCESS(heap)", 10, 1_000),
            exec(99, "FILTER", 1, 10), // no estimate → act-only
            TraceEvent::QueryDone {
                name: "q1".into(),
                rows: 50,
                nanos: 6_000,
            },
            TraceEvent::QueryStart { name: "q2".into() },
            best(1, "JOIN(MG)", 0, "JMeth[alt 3]", 40.0, 20.0),
            exec(1, "JOIN(MG)", 20, 2_000),
            TraceEvent::QueryDone {
                name: "q2".into(),
                rows: 20,
                nanos: 2_500,
            },
        ]
    }

    #[test]
    fn joins_estimates_to_actuals_per_query() {
        let r = AccuracyReport::from_events(&two_query_stream());
        assert_eq!(r.queries.len(), 2);
        assert_eq!(r.joined(), 3);
        assert_eq!(r.unmatched_est, 1); // the SORT node
        assert_eq!(r.unmatched_act, 1); // the stray FILTER actual
                                        // Same fingerprint in different queries joins per segment, not
                                        // globally: q2's fp=1 matched q2's actual.
        assert_eq!(r.queries[1].joined, 1);
        // Scale: every node has nanos = 100 × cost → geomean exactly 100.
        assert!((r.cost_scale - 100.0).abs() < 1e-9, "{}", r.cost_scale);
        // Roots estimated 2x over: card q-error 2; leaves exact.
        assert_eq!(r.queries[0].root_card_q, Some(2.0));
        assert_eq!(r.queries[1].root_card_q, Some(2.0));
        let (p50, p90, max) = r.card_quantiles();
        assert_eq!((p50, p90, max), (2.0, 2.0, 2.0));
        // Perfectly proportional costs → all cost q-errors are 1.
        let (c50, c90, cmax) = r.cost_quantiles();
        assert!((c50 - 1.0).abs() < 1e-9);
        assert!((c90 - 1.0).abs() < 1e-9);
        assert!((cmax - 1.0).abs() < 1e-9);
        // query_done rows/time captured.
        assert_eq!(r.queries[0].rows, 50);
        assert_eq!(r.queries[0].nanos, 6_000);
    }

    #[test]
    fn aggregates_by_op_and_rule_with_merged_hists() {
        let r = AccuracyReport::from_events(&two_query_stream());
        let ops: Vec<&str> = r.by_op.iter().map(|g| g.name.as_str()).collect();
        assert_eq!(ops, ["ACCESS(heap)", "JOIN(MG)", "JOIN(NL)"]);
        let rules: Vec<&str> = r.by_rule.iter().map(|g| g.name.as_str()).collect();
        assert_eq!(rules, ["JMeth", "TblAccess"]);
        let jmeth = &r.by_rule[0];
        assert_eq!(jmeth.nodes(), 2);
        assert_eq!(quantile_of(&jmeth.card_q, 1.0), 2.0);
        // The overall histogram is the merge of the per-query ones: 3
        // observations, all in the q∈{1,2} milli-buckets.
        assert_eq!(r.card_hist.count(), 3);
        assert_eq!(
            r.card_hist.count(),
            r.queries.iter().map(|q| q.card_hist.count()).sum::<u64>()
        );
        assert_eq!(r.card_hist.min(), Some(1000)); // q=1.0 → 1000
        assert_eq!(r.card_hist.max(), Some(2000)); // q=2.0 → 2000
    }

    #[test]
    fn unsegmented_stream_is_one_run() {
        let evs = vec![
            best(7, "ACCESS(heap)", 0, "TblAccess[alt 1]", 30.0, 3.0),
            exec(7, "ACCESS(heap)", 30, 300),
        ];
        let r = AccuracyReport::from_events(&evs);
        assert_eq!(r.queries.len(), 1);
        assert_eq!(r.queries[0].name, "(run)");
        assert_eq!(r.joined(), 1);
        // Root actuals back-fill rows/time when no query_done was seen.
        assert_eq!(r.queries[0].rows, 30);
        assert_eq!(r.queries[0].nanos, 300);
    }

    #[test]
    fn shared_subtrees_count_once_and_fp_zero_is_unjoinable() {
        let evs = vec![
            best(5, "JOIN(NL)", 0, "JMeth[alt 1]", 10.0, 10.0),
            best(6, "STORE", 1, "Glue", 10.0, 5.0),
            best(6, "STORE", 2, "Glue", 10.0, 5.0), // shared subtree revisit
            exec(5, "JOIN(NL)", 10, 1_000),
            exec(6, "STORE", 10, 500),
            // Legacy exec_node without a fingerprint: never joins.
            exec(0, "SORT", 1, 1),
        ];
        let r = AccuracyReport::from_events(&evs);
        assert_eq!(r.joined(), 2);
        assert_eq!(r.unmatched_est, 0);
        assert_eq!(r.unmatched_act, 0); // fp=0 ignored, not "act-only"
    }

    #[test]
    fn rescanned_inner_estimate_expands_to_invocations() {
        // An NL inner probed 40 times: the model split its cost as
        // once=2, rescan=1.5, so the invocation-expanded estimate is
        // 2 + 1.5×40 = 62 — not the folded best_node cost of 3.5.
        let evs = vec![
            TraceEvent::PlanBuilt {
                op: "ACCESS(btree)".into(),
                fp: 11,
                ref_id: 0,
                card: 1.0,
                cost_once: 2.0,
                cost_rescan: 1.5,
                breakdown: CostBreakdownEv {
                    io: 3.0,
                    cpu: 0.5,
                    comm: 0.0,
                    other: 0.0,
                },
            },
            best(11, "ACCESS(btree)", 1, "IdxAccess[alt 1]", 1.0, 3.5),
            TraceEvent::ExecNode {
                op: "ACCESS(btree)".into(),
                fp: 11,
                rows_out: 40,
                invocations: 40,
                nanos: 62_000,
            },
        ];
        let r = AccuracyReport::from_events(&evs);
        assert_eq!(r.joined(), 1);
        let n = &r.nodes[0];
        assert!((n.est_cost - 62.0).abs() < 1e-9, "{}", n.est_cost);
        // Breakdown scaled by the same 62/3.5 factor, preserving the mix.
        let bd = n.breakdown.unwrap();
        assert!((bd.io - 3.0 * 62.0 / 3.5).abs() < 1e-9, "{}", bd.io);
        assert!((bd.cpu - 0.5 * 62.0 / 3.5).abs() < 1e-9, "{}", bd.cpu);
        // One node → the geomean scale matches it exactly → cost q = 1.
        assert!((r.cost_scale - 1000.0).abs() < 1e-9, "{}", r.cost_scale);
        assert!((n.cost_q - 1.0).abs() < 1e-9, "{}", n.cost_q);
    }

    #[test]
    fn repeated_executions_keep_the_fastest_observation() {
        // Workload runners execute each plan several times in one segment;
        // the join must keep the minimum nanos regardless of event order.
        let evs = vec![
            best(7, "ACCESS(heap)", 0, "TableAccess[alt 0]", 10.0, 5.0),
            exec(7, "ACCESS(heap)", 10, 900),
            exec(7, "ACCESS(heap)", 10, 400),
            exec(7, "ACCESS(heap)", 10, 650),
        ];
        let r = AccuracyReport::from_events(&evs);
        assert_eq!(r.joined(), 1);
        assert_eq!(r.nodes[0].act_nanos, 400);
    }

    #[test]
    fn render_and_json_have_the_advertised_shape() {
        let r = AccuracyReport::from_events(&two_query_stream());
        let text = r.render();
        assert!(text.contains("per LOLEPOP:"), "{text}");
        assert!(text.contains("per STAR rule:"), "{text}");
        assert!(text.contains("per query:"), "{text}");
        assert!(text.contains("overall card q-error"), "{text}");
        let json = r.to_json();
        let v = starqo_trace::parse_json(&json).unwrap();
        assert_eq!(v.get("joined").unwrap().as_u64(), Some(3));
        assert!(v.get("by_op").is_some());
        assert!(v.get("by_rule").is_some());
        assert!(v.get("per_query").is_some());
        assert!(v
            .get("card_q")
            .unwrap()
            .get("milli_hist")
            .unwrap()
            .get("count")
            .is_some());
    }
}

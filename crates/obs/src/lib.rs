//! # starqo-obs
//!
//! Offline trace analytics for the STAR optimizer: everything here consumes
//! the event stream `starqo-trace` sinks write (a `MemorySink` in-process,
//! or a `.jsonl` file re-read with [`starqo_trace::load_jsonl`]) and
//! produces reports — no optimizer types involved, so traces from any
//! version of the engine that speaks the event schema analyze fine.
//!
//! - [`profile::Profile`] — per-STAR attribution: reference/memo counts,
//!   per-alternative firings, failing conditions, plan-table churn,
//!   inclusive time, and the winning plan's rule lineage;
//! - [`flame::FlameTree`] — the STAR expansion tree as an ASCII flamegraph
//!   or folded-stacks output for standard flamegraph tooling;
//! - [`diff::TraceDiff`] — behavioral comparison of two runs;
//! - [`gate::gate`] — `BENCH_*.json` regression gating against a committed
//!   baseline with percentage thresholds.
//!
//! The `starqo-obs` binary exposes all four as subcommands.

pub mod diff;
pub mod flame;
pub mod gate;
pub mod profile;
#[cfg(test)]
pub(crate) mod testutil;

pub use diff::TraceDiff;
pub use flame::FlameTree;
pub use gate::{gate, GateResult, Thresholds, Violation};
pub use profile::{LineageRow, Profile, StarProfile};

//! # starqo-obs
//!
//! Offline trace analytics for the STAR optimizer: everything here consumes
//! the event stream `starqo-trace` sinks write (a `MemorySink` in-process,
//! or a `.jsonl` file re-read with [`starqo_trace::load_jsonl`]) and
//! produces reports — no optimizer types involved, so traces from any
//! version of the engine that speaks the event schema analyze fine.
//!
//! - [`profile::Profile`] — per-STAR attribution: reference/memo counts,
//!   per-alternative firings, failing conditions, plan-table churn,
//!   inclusive time, and the winning plan's rule lineage;
//! - [`flame::FlameTree`] — the STAR expansion tree as an ASCII flamegraph
//!   or folded-stacks output for standard flamegraph tooling;
//! - [`diff::TraceDiff`] — behavioral comparison of two runs;
//! - [`gate::gate`] — `BENCH_*.json` regression gating against a committed
//!   baseline with percentage thresholds;
//! - [`accuracy::AccuracyReport`] — the estimate→actual join: CARD/COST
//!   Q-error per plan node, aggregated per LOLEPOP, per STAR rule, and per
//!   workload query;
//! - [`calibrate::fit`] — least-squares cost-model calibration from the
//!   accuracy join, producing a `starqo-plan` [`CostCalibration`] profile;
//! - [`live::LiveReport`] — the live-telemetry dashboard: renders a
//!   serving-layer [`starqo_trace::TelemetrySnapshot`] (throughput, cache
//!   effectiveness, latency quantiles, hot-query top-K, plan-quality
//!   sketches), point-in-time or diffed between two snapshots;
//! - [`watch::Watcher`] — the continuously refreshing watch loop: folds
//!   successive snapshots into a [`starqo_trace::SnapshotRing`] and
//!   renders interval frames with trend sparklines;
//! - [`doctor::Diagnosis`] — a one-shot health verdict: cache efficacy,
//!   pressure counters, drift hotspots, tracker saturation, feedback
//!   coverage.
//!
//! The `starqo-obs` binary exposes all of these as subcommands.

pub mod accuracy;
pub mod calibrate;
pub mod diff;
pub mod doctor;
pub mod flame;
pub mod fmt;
pub mod gate;
pub mod live;
pub mod profile;
pub mod spans;
#[cfg(test)]
pub(crate) mod testutil;
pub mod watch;

pub use accuracy::{q_error, AccuracyReport, GroupStats, NodeJoin, QuerySummary};
pub use calibrate::{fit, samples, CalibFit, CalibSample};
pub use diff::TraceDiff;
pub use doctor::{Diagnosis, Finding, Severity};
pub use flame::FlameTree;
pub use fmt::{fmt_nanos, sparkline};
pub use gate::{gate, GateResult, Thresholds, Violation};
pub use live::{smoke_snapshot, LiveReport};
pub use profile::{LineageRow, Profile, StarProfile};
pub use spans::{smoke_trees, SpanReport};
pub use starqo_plan::CostCalibration;
pub use watch::{smoke_sequence, Watcher};

//! `starqo-obs doctor`: a one-shot health verdict over a telemetry
//! snapshot. Runs a fixed checklist — cache efficacy, admission/pressure
//! counters, error rates, plan-quality drift hotspots, top-K tracker
//! saturation, feedback-plane coverage — and renders a finding list with
//! an overall verdict. Detection and advice only: the doctor never
//! mutates anything.

use starqo_trace::json::JsonObj;
use starqo_trace::TelemetrySnapshot;

/// How much a finding should worry the operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Context worth knowing; not a problem.
    Info,
    /// Degraded but serving; act soon.
    Warn,
    /// Actively losing work (errors, rejections).
    Crit,
}

impl Severity {
    fn tag(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warn => "WARN",
            Severity::Crit => "CRIT",
        }
    }
}

/// One checklist outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    pub severity: Severity,
    /// Stable check identifier (scripts grep on these).
    pub check: &'static str,
    pub detail: String,
}

/// The doctor's full verdict over one snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnosis {
    pub findings: Vec<Finding>,
}

impl Diagnosis {
    /// Run the checklist. Thresholds are fixed and intentionally
    /// conservative — the doctor flags what is unambiguously wrong, the
    /// dashboards carry the nuance.
    pub fn from_snapshot(s: &TelemetrySnapshot) -> Diagnosis {
        let c = |name: &str| s.counter(name).unwrap_or(0);
        let mut findings = Vec::new();
        let mut push = |severity: Severity, check: &'static str, detail: String| {
            findings.push(Finding {
                severity,
                check,
                detail,
            });
        };

        let requests = c("serve_requests");
        if requests == 0 {
            push(
                Severity::Info,
                "traffic",
                "no requests in this snapshot window".to_string(),
            );
        }

        // Cache efficacy: only judged once there is enough traffic for the
        // ratio to mean something.
        let served = c("serve_cache_hit") + c("serve_cache_coalesced") + c("serve_cache_miss");
        if served >= 50 && s.hit_ratio() < 0.5 {
            push(
                Severity::Warn,
                "cache_efficacy",
                format!(
                    "hit ratio {:.1}% over {served} served requests (churning workload, \
                     undersized cache, or epoch thrash)",
                    s.hit_ratio() * 100.0
                ),
            );
        }

        let errors = c("serve_errors");
        if errors > 0 {
            push(
                Severity::Crit,
                "errors",
                format!("{errors} optimizer/executor error(s) surfaced to callers"),
            );
        }
        let rejected = c("serve_rejected");
        if rejected > 0 {
            push(
                Severity::Crit,
                "admission",
                format!("{rejected} request(s) rejected by admission control"),
            );
        }
        let degraded = c("serve_degraded");
        if degraded > 0 {
            push(
                Severity::Warn,
                "degraded",
                format!("{degraded} plan(s) degraded by budget exhaustion"),
            );
        }
        let invalidations = c("serve_cache_invalidate");
        if invalidations > 0 && invalidations * 5 >= requests.max(1) {
            push(
                Severity::Warn,
                "epoch_thrash",
                format!(
                    "{invalidations} cache invalidations against {requests} requests \
                     (catalog epoch moving faster than plans amortize)"
                ),
            );
        }

        // Drift hotspots: the feedback plane's suspect registry.
        let suspects = s.suspects();
        if !suspects.is_empty() {
            let hot: Vec<String> = suspects
                .iter()
                .take(4)
                .map(|e| {
                    format!(
                        "{:#x} (geomean Q {:.1}, {} runs)",
                        e.fp,
                        e.geomean_q().unwrap_or(1.0),
                        e.runs
                    )
                })
                .collect();
            push(
                Severity::Warn,
                "plan_drift",
                format!(
                    "{} suspect plan(s) — observed Q-error/latency crossed thresholds: {}",
                    suspects.len(),
                    hot.join(", ")
                ),
            );
        } else if !s.qerror.is_empty() {
            push(
                Severity::Info,
                "plan_drift",
                format!(
                    "{} fingerprint(s) tracked by the feedback plane, none suspect",
                    s.qerror.len()
                ),
            );
        }

        // Top-K saturation: space-saving overcount bound at or above half
        // the count means ranks are recycling noise.
        let saturated = s
            .topk
            .iter()
            .filter(|e| e.count > 0 && e.err >= e.count / 2)
            .count();
        if saturated > 0 {
            push(
                Severity::Warn,
                "topk_saturation",
                format!(
                    "{saturated} hot-query entries have overcount bound >= count/2 \
                     (raise topk capacity)"
                ),
            );
        }

        // Span-store saturation: the tail sampler keeps retaining but the
        // bounded store is recycling trees — slow outliers silently age out
        // before anyone looks at them.
        let span_drops = c("serve_spans_dropped");
        if s.span_evicted > 0 {
            push(
                Severity::Warn,
                "span_saturation",
                format!(
                    "{} retained span tree(s) evicted from a {}-slot store \
                     (raise span_store or tighten the tail quantile)",
                    s.span_evicted, s.span_capacity
                ),
            );
        } else if c("serve_spans_kept") == 0 && span_drops > 0 {
            push(
                Severity::Info,
                "span_saturation",
                format!(
                    "tail sampler dropped all {span_drops} request(s) — nothing slow, \
                     errored, or suspect in this window"
                ),
            );
        }

        // Feedback coverage: executions happening but nothing folding
        // means the feedback plane is disabled and drift is invisible.
        if c("serve_executions") > 0 && c("serve_feedback_runs") == 0 {
            push(
                Severity::Warn,
                "feedback_coverage",
                "executions ran but the feedback plane folded nothing (feedback disabled?)"
                    .to_string(),
            );
        }

        // Re-optimization storm: the healer keeps burning budget without
        // landing candidates — every attempt either fails or loses the
        // stability guard. Judged only with enough attempts to matter.
        let attempts = c("serve_reopt_attempts");
        let swaps = c("serve_plan_swap");
        if attempts >= 5 && swaps * 4 < attempts {
            push(
                Severity::Warn,
                "reopt_storm",
                format!(
                    "{attempts} re-optimization attempt(s) produced only {swaps} swap(s) \
                     ({} pinned) — stale fault, bad overlay stats, or a retry cap too high",
                    c("serve_plan_pinned")
                ),
            );
        }

        // Heal effectiveness: relates heal outcomes to the live suspect
        // set. Retry-capped fingerprints are stuck until an epoch change;
        // pins with zero swaps against live suspects mean healing runs but
        // never lands.
        let capped: Vec<u64> = s
            .heal
            .iter()
            .filter(|h| h.retry_capped)
            .map(|h| h.fp)
            .collect();
        let total_pins: u64 = s.heal.iter().map(|h| h.pins).sum();
        let total_swaps: u64 = s.heal.iter().map(|h| h.swaps).sum();
        if !capped.is_empty() {
            let fps: Vec<String> = capped.iter().take(4).map(|fp| format!("{fp:#x}")).collect();
            push(
                Severity::Warn,
                "heal_effectiveness",
                format!(
                    "{} fingerprint(s) hit the retry cap and stay pinned until the next \
                     catalog epoch: {}",
                    capped.len(),
                    fps.join(", ")
                ),
            );
        } else if total_swaps == 0 && total_pins > 0 && !s.suspects().is_empty() {
            push(
                Severity::Warn,
                "heal_effectiveness",
                format!(
                    "healing attempted but nothing landed: {total_pins} pin(s) against \
                     {} live suspect(s)",
                    s.suspects().len()
                ),
            );
        } else if total_swaps > 0 {
            push(
                Severity::Info,
                "heal_effectiveness",
                format!(
                    "{total_swaps} healed candidate(s) swapped in, {total_pins} pinned \
                     by the stability guard"
                ),
            );
        }

        // Executor fallback rate: the serving layer keeps selecting the
        // vectorized executor only to have `supports()` decline the plan —
        // every such request silently runs on the serial engine. A handful
        // is expected (the vexec subset is intentionally partial); a
        // majority means the workload and the executor choice disagree.
        let fallbacks = c("vexec_fallbacks");
        let executions = c("serve_executions");
        let vexec_active = fallbacks + c("vexec_batches") + c("vexec_morsels_queued") > 0;
        if vexec_active && executions >= 10 && fallbacks * 2 >= executions {
            push(
                Severity::Warn,
                "executor_fallback",
                format!(
                    "{fallbacks} of {executions} executed request(s) fell back to the \
                     serial engine (plans outside the vexec subset — see exec_fallback \
                     trace reasons, or set executor=serial)"
                ),
            );
        } else if fallbacks > 0 {
            push(
                Severity::Info,
                "executor_fallback",
                format!(
                    "{fallbacks} vexec fallback(s) over {executions} execution(s) \
                     served serially"
                ),
            );
        }

        Diagnosis { findings }
    }

    /// No warnings or criticals.
    pub fn healthy(&self) -> bool {
        self.findings.iter().all(|f| f.severity == Severity::Info)
    }

    pub fn crit_count(&self) -> usize {
        self.count(Severity::Crit)
    }

    pub fn warn_count(&self) -> usize {
        self.count(Severity::Warn)
    }

    fn count(&self, sev: Severity) -> usize {
        self.findings.iter().filter(|f| f.severity == sev).count()
    }

    /// The verdict as machine-readable JSON (parity with `watch --json`):
    /// findings sorted most-severe-first, plus the aggregate verdict.
    pub fn to_json(&self) -> String {
        let mut ordered = self.findings.clone();
        ordered.sort_by_key(|f| std::cmp::Reverse(f.severity));
        let findings: Vec<String> = ordered
            .iter()
            .map(|f| {
                JsonObj::new()
                    .str("severity", f.severity.tag())
                    .str("check", f.check)
                    .str("detail", &f.detail)
                    .finish()
            })
            .collect();
        JsonObj::new()
            .bool("healthy", self.healthy())
            .u64("crit", self.crit_count() as u64)
            .u64("warn", self.warn_count() as u64)
            .raw("findings", &format!("[{}]", findings.join(",")))
            .finish()
    }

    pub fn render(&self) -> String {
        let mut out = String::from("== starqo doctor ==\n");
        if self.findings.is_empty() {
            out.push_str("  all checks passed\n");
        }
        let mut ordered = self.findings.clone();
        ordered.sort_by_key(|f| std::cmp::Reverse(f.severity));
        for f in &ordered {
            out.push_str(&format!(
                "  [{}] {}: {}\n",
                f.severity.tag(),
                f.check,
                f.detail
            ));
        }
        out.push_str(&format!(
            "verdict: {}\n",
            if self.healthy() {
                "HEALTHY".to_string()
            } else {
                format!(
                    "{} critical, {} warning(s)",
                    self.crit_count(),
                    self.warn_count()
                )
            }
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::live::smoke_snapshot;

    #[test]
    fn smoke_snapshot_yields_the_expected_findings() {
        let d = Diagnosis::from_snapshot(&smoke_snapshot());
        assert!(!d.healthy());
        let checks: Vec<&str> = d.findings.iter().map(|f| f.check).collect();
        // The smoke snapshot plants a drifted suspect and a saturated
        // top-K entry; the doctor must find both and nothing critical.
        assert!(checks.contains(&"plan_drift"), "{checks:?}");
        assert!(checks.contains(&"topk_saturation"), "{checks:?}");
        assert_eq!(d.crit_count(), 0);
        let text = d.render();
        assert!(text.contains("[WARN] plan_drift"));
        assert!(text.contains("verdict: 0 critical"));
    }

    #[test]
    fn clean_snapshot_is_healthy() {
        let mut s = smoke_snapshot();
        s.qerror.clear();
        s.topk.clear();
        let d = Diagnosis::from_snapshot(&s);
        assert!(d.healthy(), "{}", d.render());
        assert!(d.render().contains("verdict: HEALTHY"));
    }

    #[test]
    fn pressure_counters_escalate_to_critical() {
        let mut s = smoke_snapshot();
        s.qerror.clear();
        s.topk.clear();
        for (name, v) in s.counters.iter_mut() {
            if name == "serve_errors" {
                *v = 3;
            }
            if name == "serve_rejected" {
                *v = 7;
            }
        }
        let d = Diagnosis::from_snapshot(&s);
        assert_eq!(d.crit_count(), 2);
        let text = d.render();
        assert!(text.contains("[CRIT] errors: 3"));
        assert!(text.contains("[CRIT] admission: 7"));
        // Criticals sort above warnings and infos.
        assert!(text.find("[CRIT]").unwrap() < text.find("verdict").unwrap());
    }

    #[test]
    fn span_store_eviction_warns_and_all_dropped_window_is_info() {
        let mut s = smoke_snapshot();
        s.qerror.clear();
        s.topk.clear();
        s.span_evicted = 9;
        let d = Diagnosis::from_snapshot(&s);
        let f = d
            .findings
            .iter()
            .find(|f| f.check == "span_saturation")
            .expect("span_saturation finding");
        assert_eq!(f.severity, Severity::Warn);
        assert!(f.detail.contains("9 retained span tree(s)"), "{}", f.detail);
        // A window where the tail sampler kept nothing is context, not a
        // fault: there was simply nothing worth retaining.
        s.span_evicted = 0;
        for (name, v) in s.counters.iter_mut() {
            if name == "serve_spans_kept" {
                *v = 0;
            }
        }
        let d = Diagnosis::from_snapshot(&s);
        let f = d
            .findings
            .iter()
            .find(|f| f.check == "span_saturation")
            .expect("span_saturation finding");
        assert_eq!(f.severity, Severity::Info);
    }

    #[test]
    fn json_verdict_parses_and_sorts_most_severe_first() {
        use starqo_trace::{parse_json, JsonValue};
        let mut s = smoke_snapshot();
        for (name, v) in s.counters.iter_mut() {
            if name == "serve_errors" {
                *v = 2;
            }
        }
        let d = Diagnosis::from_snapshot(&s);
        let v = parse_json(&d.to_json()).expect("doctor json parses");
        assert_eq!(v.get("healthy").and_then(|x| x.as_bool()), Some(false));
        assert_eq!(v.get("crit").and_then(|x| x.as_u64()), Some(1));
        let Some(JsonValue::Arr(findings)) = v.get("findings") else {
            panic!("findings array");
        };
        assert!(!findings.is_empty());
        assert_eq!(
            findings[0].get("severity").and_then(|x| x.as_str()),
            Some("CRIT")
        );
        assert_eq!(
            findings[0].get("check").and_then(|x| x.as_str()),
            Some("errors")
        );
    }

    #[test]
    fn reopt_storm_flags_a_thrashing_heal_loop() {
        let mut s = smoke_snapshot();
        for (name, v) in s.counters.iter_mut() {
            if name == "serve_reopt_attempts" {
                *v = 12;
            }
            if name == "serve_plan_swap" {
                *v = 1;
            }
        }
        let d = Diagnosis::from_snapshot(&s);
        let f = d
            .findings
            .iter()
            .find(|f| f.check == "reopt_storm")
            .expect("reopt_storm finding");
        assert_eq!(f.severity, Severity::Warn);
        assert!(
            f.detail.contains("12 re-optimization attempt(s)"),
            "{}",
            f.detail
        );
        // The smoke snapshot itself (3 attempts, 1 swap) is below the bar.
        let d = Diagnosis::from_snapshot(&smoke_snapshot());
        assert!(d.findings.iter().all(|f| f.check != "reopt_storm"));
    }

    #[test]
    fn heal_effectiveness_grades_swaps_pins_and_the_retry_cap() {
        // The smoke snapshot healed something: info, not a warning.
        let d = Diagnosis::from_snapshot(&smoke_snapshot());
        let f = d
            .findings
            .iter()
            .find(|f| f.check == "heal_effectiveness")
            .expect("heal_effectiveness finding");
        assert_eq!(f.severity, Severity::Info);
        assert!(f.detail.contains("1 healed candidate(s)"), "{}", f.detail);

        // Pins without swaps against a live suspect: healing runs but
        // never lands.
        let mut s = smoke_snapshot();
        s.heal[0].swaps = 0;
        s.heal[0].pins = 3;
        s.heal[0].last_reason = "regression".into();
        let d = Diagnosis::from_snapshot(&s);
        let f = d
            .findings
            .iter()
            .find(|f| f.check == "heal_effectiveness")
            .expect("heal_effectiveness finding");
        assert_eq!(f.severity, Severity::Warn);
        assert!(f.detail.contains("nothing landed"), "{}", f.detail);

        // The retry cap dominates: the fingerprint is stuck until the next
        // epoch, whatever else the tallies say.
        let mut s = smoke_snapshot();
        s.heal[0].retry_capped = true;
        let d = Diagnosis::from_snapshot(&s);
        let f = d
            .findings
            .iter()
            .find(|f| f.check == "heal_effectiveness")
            .expect("heal_effectiveness finding");
        assert_eq!(f.severity, Severity::Warn);
        assert!(f.detail.contains("retry cap"), "{}", f.detail);
        assert!(f.detail.contains("0xa11ce"), "{}", f.detail);
    }

    #[test]
    fn executor_fallback_rate_grades_info_vs_warn() {
        // The smoke snapshot's 5 fallbacks over 200 executions are the
        // expected trickle: context only.
        let d = Diagnosis::from_snapshot(&smoke_snapshot());
        let f = d
            .findings
            .iter()
            .find(|f| f.check == "executor_fallback")
            .expect("executor_fallback finding");
        assert_eq!(f.severity, Severity::Info);
        assert!(f.detail.contains("5 vexec fallback(s)"), "{}", f.detail);

        // A majority of executions falling back means the executor choice
        // and the workload disagree.
        let mut s = smoke_snapshot();
        for (name, v) in s.counters.iter_mut() {
            if name == "vexec_fallbacks" {
                *v = 150;
            }
        }
        let d = Diagnosis::from_snapshot(&s);
        let f = d
            .findings
            .iter()
            .find(|f| f.check == "executor_fallback")
            .expect("executor_fallback finding");
        assert_eq!(f.severity, Severity::Warn);
        assert!(f.detail.contains("150 of 200"), "{}", f.detail);

        // No vexec activity at all: the check stays silent.
        let mut s = smoke_snapshot();
        for (name, v) in s.counters.iter_mut() {
            if name.starts_with("vexec_") {
                *v = 0;
            }
        }
        let d = Diagnosis::from_snapshot(&s);
        assert!(d.findings.iter().all(|f| f.check != "executor_fallback"));
    }

    #[test]
    fn missing_feedback_under_executions_is_flagged() {
        let mut s = smoke_snapshot();
        s.qerror.clear();
        s.topk.clear();
        for (name, v) in s.counters.iter_mut() {
            if name == "serve_feedback_runs" {
                *v = 0;
            }
        }
        let d = Diagnosis::from_snapshot(&s);
        assert!(d.findings.iter().any(|f| f.check == "feedback_coverage"));
    }
}

//! Shared terminal formatting helpers: every obs section renders durations
//! and trend series the same way, so the helpers live here rather than in
//! whichever report happened to need them first.

/// Humanize a nano count: `999ns`, `12.3µs`, `4.56ms`, `7.89s`.
pub fn fmt_nanos(nanos: u64) -> String {
    let n = nanos as f64;
    if nanos < 1_000 {
        format!("{nanos}ns")
    } else if nanos < 1_000_000 {
        format!("{:.1}µs", n / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2}ms", n / 1e6)
    } else {
        format!("{:.2}s", n / 1e9)
    }
}

/// A unicode sparkline over the series, scaled to its own max.
pub fn sparkline(series: &[u64]) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let max = series.iter().copied().max().unwrap_or(0);
    series
        .iter()
        .map(|&v| {
            if max == 0 {
                BARS[0]
            } else {
                BARS[((v as u128 * (BARS.len() as u128 - 1)).div_ceil(max as u128)) as usize]
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_nanos_picks_sane_units() {
        assert_eq!(fmt_nanos(999), "999ns");
        assert_eq!(fmt_nanos(12_300), "12.3µs");
        assert_eq!(fmt_nanos(4_560_000), "4.56ms");
        assert_eq!(fmt_nanos(7_890_000_000), "7.89s");
    }

    #[test]
    fn sparkline_scales_to_max() {
        assert_eq!(sparkline(&[]), "");
        assert_eq!(sparkline(&[0, 0]), "▁▁");
        let line = sparkline(&[1, 4, 8]);
        assert_eq!(line.chars().count(), 3);
        assert!(line.ends_with('█'));
    }
}

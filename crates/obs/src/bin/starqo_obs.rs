//! Trace-analytics CLI.
//!
//! ```text
//! starqo-obs profile  <trace.jsonl>                 rule-level profile
//! starqo-obs flame    <trace.jsonl> [--folded]      expansion flamegraph
//! starqo-obs diff     <a.jsonl> <b.jsonl>           compare two runs
//! starqo-obs accuracy <trace.jsonl> [--json <out>]  est-vs-actual Q-error
//! starqo-obs calibrate <trace.jsonl> [--out <file>] fit a cost profile
//! starqo-obs gate     <baseline.json> <fresh.json>  bench regression gate
//!                     [--wall-pct N] [--counter-pct N]
//!                     [--enforce | --enforce-counters]
//! starqo-obs live     <snapshot.json>               live-telemetry dashboard
//!                     [--since <prev.json>] [--prom]
//! starqo-obs live --smoke                           synthetic end-to-end check
//! starqo-obs watch    <snapshot.json>               refreshing dashboard + trends
//!                     [--interval-ms N] [--once] [--json]
//! starqo-obs watch --smoke                          synthetic watch-loop check
//! starqo-obs doctor   <snapshot.json>               one-shot health verdict
//!                     [--enforce] [--json <out>]
//! starqo-obs doctor --smoke                         synthetic doctor check
//! starqo-obs spans    <spans.jsonl>                 retained-request table
//!                     [--limit N] [--chrome <out.json>]
//! starqo-obs spans --smoke                          synthetic spans check
//! starqo-obs timeline <spans.jsonl> --request <id>  per-request waterfall
//! starqo-obs timeline --smoke                       synthetic waterfall check
//! ```
//!
//! `gate` is report-only by default (always exits 0, for observability in
//! CI logs); `--enforce` exits 1 on any violation, `--enforce-counters`
//! only on deterministic work-counter violations (wall-clock regressions
//! stay report-only — CI machines are noisy, counters aren't).

use std::process::ExitCode;

use starqo_obs::{
    calibrate, gate, smoke_sequence, smoke_snapshot, smoke_trees, AccuracyReport, Diagnosis,
    FlameTree, LiveReport, Profile, SpanReport, Thresholds, TraceDiff, Watcher,
};
use starqo_trace::{
    from_chrome_trace, load_jsonl, read_span_trees, to_chrome_trace, TelemetrySnapshot, TraceEvent,
};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut positional: Vec<&str> = Vec::new();
    let mut folded = false;
    let mut enforce = false;
    let mut enforce_counters = false;
    let mut wall_pct: Option<f64> = None;
    let mut counter_pct: Option<f64> = None;
    let mut json_out: Option<&str> = None;
    let mut profile_out: Option<&str> = None;
    let mut since: Option<&str> = None;
    let mut smoke = false;
    let mut prom = false;
    let mut once = false;
    let mut interval_ms: u64 = 2_000;
    let mut chrome_out: Option<&str> = None;
    let mut request_id: Option<u64> = None;
    let mut limit: usize = 20;
    let mut it = args.iter().map(String::as_str);
    while let Some(a) = it.next() {
        match a {
            "--folded" => folded = true,
            "--enforce" => enforce = true,
            "--enforce-counters" => enforce_counters = true,
            "--smoke" => smoke = true,
            "--prom" => prom = true,
            "--once" => once = true,
            "--interval-ms" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => interval_ms = v,
                None => return usage("--interval-ms needs a number"),
            },
            "--since" => match it.next() {
                Some(p) => since = Some(p),
                None => return usage("--since needs a path"),
            },
            "--json" => match it.next() {
                Some(p) => json_out = Some(p),
                None => return usage("--json needs a path"),
            },
            "--out" => match it.next() {
                Some(p) => profile_out = Some(p),
                None => return usage("--out needs a path"),
            },
            "--chrome" => match it.next() {
                Some(p) => chrome_out = Some(p),
                None => return usage("--chrome needs a path"),
            },
            "--request" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => request_id = Some(v),
                None => return usage("--request needs a request id"),
            },
            "--limit" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => limit = v,
                None => return usage("--limit needs a number"),
            },
            "--wall-pct" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => wall_pct = Some(v),
                None => return usage("--wall-pct needs a number"),
            },
            "--counter-pct" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => counter_pct = Some(v),
                None => return usage("--counter-pct needs a number"),
            },
            "-h" | "--help" => return usage(""),
            _ if a.starts_with('-') => return usage(&format!("unknown flag {a}")),
            _ => positional.push(a),
        }
    }

    match positional.as_slice() {
        ["profile", path] => with_trace(path, |events| {
            print!("{}", Profile::from_events(&events).render());
            ExitCode::SUCCESS
        }),
        ["flame", path] => with_trace(path, |events| {
            let tree = FlameTree::from_events(&events);
            if folded {
                print!("{}", tree.folded());
            } else {
                print!("{}", tree.render());
            }
            ExitCode::SUCCESS
        }),
        ["diff", a, b] => with_trace(a, |ea| {
            with_trace(b, |eb| {
                let d = TraceDiff::compare(&ea, &eb);
                print!("{}", d.render());
                ExitCode::SUCCESS
            })
        }),
        ["accuracy", path] => with_trace(path, |events| {
            let report = AccuracyReport::from_events(&events);
            print!("{}", report.render());
            if let Some(p) = json_out {
                if let Err(e) = std::fs::write(p, report.to_json() + "\n") {
                    eprintln!("starqo-obs accuracy: cannot write {p}: {e}");
                    return ExitCode::FAILURE;
                }
                println!("json report written to {p}");
            }
            ExitCode::SUCCESS
        }),
        ["calibrate", path] => with_trace(path, |events| {
            let report = AccuracyReport::from_events(&events);
            match calibrate::fit(&calibrate::samples(&report)) {
                Ok(f) => {
                    print!("{}", f.render());
                    let out = profile_out.unwrap_or("cost_profile.json");
                    if let Err(e) = f.profile.save(out) {
                        eprintln!("starqo-obs calibrate: cannot write {out}: {e}");
                        return ExitCode::FAILURE;
                    }
                    println!("profile written to {out} (use via STARQO_COST_PROFILE={out})");
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("starqo-obs calibrate: {e}");
                    ExitCode::FAILURE
                }
            }
        }),
        ["gate", baseline, fresh] => {
            let read =
                |p: &str| std::fs::read_to_string(p).map_err(|e| format!("cannot read {p}: {e}"));
            let mut th = Thresholds::default();
            if let Some(v) = wall_pct {
                th.wall_pct = v;
            }
            if let Some(v) = counter_pct {
                th.counter_pct = v;
            }
            // With --enforce-counters, only deterministic work-counter
            // regressions fail the run; wall_ms stays report-only.
            let run = || -> Result<(bool, bool), String> {
                let r = gate(&read(baseline)?, &read(fresh)?, th)?;
                print!("{}", r.render());
                let counters_ok = !r.violations.iter().any(|v| v.metric != "wall_ms");
                Ok((r.passed(), counters_ok))
            };
            match run() {
                Ok((true, _)) => ExitCode::SUCCESS,
                Ok((false, _)) if enforce => ExitCode::FAILURE,
                Ok((false, counters_ok)) if enforce_counters => {
                    if counters_ok {
                        println!("(wall-clock only: report-only under --enforce-counters)");
                        ExitCode::SUCCESS
                    } else {
                        ExitCode::FAILURE
                    }
                }
                Ok((false, _)) => {
                    println!(
                        "(report-only: pass --enforce or --enforce-counters to fail on violations)"
                    );
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("starqo-obs gate: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        ["live"] if smoke => {
            // Synthetic end-to-end check: render the dashboard and push the
            // snapshot through both exporters and back.
            let snap = smoke_snapshot();
            let parsed = match TelemetrySnapshot::from_json(&snap.to_json()) {
                Ok(p) => p,
                Err(e) => {
                    eprintln!("starqo-obs live --smoke: JSON round-trip failed: {e}");
                    return ExitCode::FAILURE;
                }
            };
            if parsed != snap {
                eprintln!("starqo-obs live --smoke: round-tripped snapshot differs");
                return ExitCode::FAILURE;
            }
            if prom {
                print!("{}", snap.to_prometheus());
            } else {
                print!("{}", LiveReport::new(snap).render());
            }
            println!("live --smoke ok");
            ExitCode::SUCCESS
        }
        ["live", path] => {
            let load = |p: &str| -> Result<TelemetrySnapshot, String> {
                let text =
                    std::fs::read_to_string(p).map_err(|e| format!("cannot read {p}: {e}"))?;
                TelemetrySnapshot::from_json(&text)
            };
            let run = || -> Result<String, String> {
                let current = load(path)?;
                let report = match since {
                    Some(prev) => LiveReport::since(&current, &load(prev)?),
                    None => LiveReport::new(current),
                };
                Ok(if prom {
                    report.snapshot().to_prometheus()
                } else {
                    report.render()
                })
            };
            match run() {
                Ok(text) => {
                    print!("{text}");
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("starqo-obs live: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        ["watch"] if smoke => {
            // Synthetic watch-loop check: feed a deterministic snapshot
            // sequence through the ring and render every frame.
            let mut w = Watcher::new(16);
            let mut last = String::new();
            for s in smoke_sequence() {
                last = w.tick(s);
            }
            print!("{last}");
            if !last.contains("-- trend --") {
                eprintln!("starqo-obs watch --smoke: trend section missing");
                return ExitCode::FAILURE;
            }
            println!("watch --smoke ok");
            ExitCode::SUCCESS
        }
        ["watch", path] => {
            let load = |p: &str| -> Result<TelemetrySnapshot, String> {
                let text =
                    std::fs::read_to_string(p).map_err(|e| format!("cannot read {p}: {e}"))?;
                TelemetrySnapshot::from_json(&text)
            };
            let mut w = Watcher::new(32);
            loop {
                let snap = match load(path) {
                    Ok(s) => s,
                    Err(e) => {
                        eprintln!("starqo-obs watch: {e}");
                        return ExitCode::FAILURE;
                    }
                };
                if let Some(out) = json_out {
                    // Machine-readable tap: the latest absolute snapshot.
                    if let Err(e) = std::fs::write(out, snap.to_json() + "\n") {
                        eprintln!("starqo-obs watch: cannot write {out}: {e}");
                        return ExitCode::FAILURE;
                    }
                }
                let frame = w.tick(snap);
                if once {
                    print!("{frame}");
                    return ExitCode::SUCCESS;
                }
                // Clear and redraw, terminal-dashboard style.
                print!("\x1b[2J\x1b[H{frame}");
                std::thread::sleep(std::time::Duration::from_millis(interval_ms.max(100)));
            }
        }
        ["doctor"] if smoke => {
            // Synthetic doctor check: the smoke snapshot plants a drifted
            // suspect and a saturated tracker entry; the doctor must find
            // both without any critical finding.
            let d = Diagnosis::from_snapshot(&smoke_snapshot());
            print!("{}", d.render());
            let found = |check: &str| d.findings.iter().any(|f| f.check == check);
            if !found("plan_drift") || !found("topk_saturation") || d.crit_count() > 0 {
                eprintln!("starqo-obs doctor --smoke: expected findings missing");
                return ExitCode::FAILURE;
            }
            if let Some(p) = json_out {
                if let Err(e) = std::fs::write(p, d.to_json() + "\n") {
                    eprintln!("starqo-obs doctor --smoke: cannot write {p}: {e}");
                    return ExitCode::FAILURE;
                }
                println!("json verdict written to {p}");
            }
            println!("doctor --smoke ok");
            ExitCode::SUCCESS
        }
        ["doctor", path] => {
            let run = || -> Result<Diagnosis, String> {
                let text = std::fs::read_to_string(path)
                    .map_err(|e| format!("cannot read {path}: {e}"))?;
                Ok(Diagnosis::from_snapshot(&TelemetrySnapshot::from_json(
                    &text,
                )?))
            };
            match run() {
                Ok(d) => {
                    print!("{}", d.render());
                    if let Some(p) = json_out {
                        if let Err(e) = std::fs::write(p, d.to_json() + "\n") {
                            eprintln!("starqo-obs doctor: cannot write {p}: {e}");
                            return ExitCode::FAILURE;
                        }
                        println!("json verdict written to {p}");
                    }
                    if enforce && d.crit_count() > 0 {
                        ExitCode::FAILURE
                    } else {
                        ExitCode::SUCCESS
                    }
                }
                Err(e) => {
                    eprintln!("starqo-obs doctor: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        ["spans"] if smoke => {
            // Synthetic spans check: render the table and push the trees
            // through the JSONL and Chrome exports and back.
            let trees = smoke_trees();
            let jsonl: String = trees.iter().map(|t| t.to_json() + "\n").collect();
            let (back, skipped) = read_span_trees(&jsonl);
            if skipped > 0 || back != trees {
                eprintln!("starqo-obs spans --smoke: JSONL round-trip failed");
                return ExitCode::FAILURE;
            }
            match from_chrome_trace(&to_chrome_trace(&trees)) {
                Ok(back) if back == trees => {}
                _ => {
                    eprintln!("starqo-obs spans --smoke: Chrome round-trip failed");
                    return ExitCode::FAILURE;
                }
            }
            if let Some(p) = chrome_out {
                if let Err(e) = std::fs::write(p, to_chrome_trace(&trees) + "\n") {
                    eprintln!("starqo-obs spans --smoke: cannot write {p}: {e}");
                    return ExitCode::FAILURE;
                }
                println!("chrome trace written to {p}");
            }
            print!("{}", SpanReport::new(trees).render_table(limit));
            println!("spans --smoke ok");
            ExitCode::SUCCESS
        }
        ["spans", path] => with_spans(path, |trees| {
            if let Some(p) = chrome_out {
                if let Err(e) = std::fs::write(p, to_chrome_trace(&trees) + "\n") {
                    eprintln!("starqo-obs spans: cannot write {p}: {e}");
                    return ExitCode::FAILURE;
                }
                println!("chrome trace written to {p}");
            }
            print!("{}", SpanReport::new(trees).render_table(limit));
            ExitCode::SUCCESS
        }),
        ["timeline"] if smoke => {
            let report = SpanReport::new(smoke_trees());
            let id = request_id
                .or_else(|| report.trees().first().map(|t| t.request_id))
                .unwrap_or(0);
            match report.render_waterfall(id) {
                Some(text) => {
                    print!("{text}");
                    println!("timeline --smoke ok");
                    ExitCode::SUCCESS
                }
                None => {
                    eprintln!("starqo-obs timeline --smoke: request {id} not retained");
                    ExitCode::FAILURE
                }
            }
        }
        ["timeline", path] => with_spans(path, |trees| {
            let report = SpanReport::new(trees);
            // Default to the slowest retained request (display order).
            let id = request_id
                .or_else(|| report.trees().first().map(|t| t.request_id))
                .unwrap_or(0);
            match report.render_waterfall(id) {
                Some(text) => {
                    print!("{text}");
                    ExitCode::SUCCESS
                }
                None => {
                    eprintln!(
                        "starqo-obs timeline: request {id} not retained ({} tree(s) in {path})",
                        report.trees().len()
                    );
                    ExitCode::FAILURE
                }
            }
        }),
        _ => usage("expected a subcommand"),
    }
}

/// Load a span-tree JSONL file and hand it to `f`; unparsable lines are
/// skipped with a note on stderr.
fn with_spans(path: &str, f: impl FnOnce(Vec<starqo_trace::SpanTree>) -> ExitCode) -> ExitCode {
    match std::fs::read_to_string(path) {
        Ok(text) => {
            let (trees, skipped) = read_span_trees(&text);
            if skipped > 0 {
                eprintln!("starqo-obs: skipped {skipped} unparsable line(s) in {path}");
            }
            f(trees)
        }
        Err(e) => {
            eprintln!("starqo-obs: cannot read {path}: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Load a JSONL trace and hand it to `f`; unparsable lines are skipped
/// with a note on stderr.
fn with_trace(path: &str, f: impl FnOnce(Vec<TraceEvent>) -> ExitCode) -> ExitCode {
    match load_jsonl(path) {
        Ok((events, skipped)) => {
            if skipped > 0 {
                eprintln!("starqo-obs: skipped {skipped} unparsable line(s) in {path}");
            }
            f(events)
        }
        Err(e) => {
            eprintln!("starqo-obs: cannot read {path}: {e}");
            ExitCode::FAILURE
        }
    }
}

fn usage(err: &str) -> ExitCode {
    if !err.is_empty() {
        eprintln!("starqo-obs: {err}");
    }
    eprintln!(
        "usage:\n  starqo-obs profile <trace.jsonl>\n  starqo-obs flame <trace.jsonl> [--folded]\n  starqo-obs diff <a.jsonl> <b.jsonl>\n  starqo-obs accuracy <trace.jsonl> [--json <out.json>]\n  starqo-obs calibrate <trace.jsonl> [--out <profile.json>]\n  starqo-obs gate <baseline.json> <fresh.json> [--wall-pct N] [--counter-pct N] [--enforce|--enforce-counters]\n  starqo-obs live <snapshot.json> [--since <prev.json>] [--prom]\n  starqo-obs live --smoke [--prom]\n  starqo-obs watch <snapshot.json> [--interval-ms N] [--once] [--json <out.json>]\n  starqo-obs watch --smoke\n  starqo-obs doctor <snapshot.json> [--enforce] [--json <out.json>]\n  starqo-obs doctor --smoke\n  starqo-obs spans <spans.jsonl> [--limit N] [--chrome <out.json>]\n  starqo-obs spans --smoke [--chrome <out.json>]\n  starqo-obs timeline <spans.jsonl> [--request <id>]\n  starqo-obs timeline --smoke"
    );
    if err.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

//! Trace-analytics CLI.
//!
//! ```text
//! starqo-obs profile <trace.jsonl>                  rule-level profile
//! starqo-obs flame   <trace.jsonl> [--folded]       expansion flamegraph
//! starqo-obs diff    <a.jsonl> <b.jsonl>            compare two runs
//! starqo-obs gate    <baseline.json> <fresh.json>   bench regression gate
//!                    [--wall-pct N] [--counter-pct N] [--enforce]
//! ```
//!
//! `gate` is report-only by default (always exits 0, for observability in
//! CI logs); `--enforce` exits 1 on violations.

use std::process::ExitCode;

use starqo_obs::{gate, FlameTree, Profile, Thresholds, TraceDiff};
use starqo_trace::{load_jsonl, TraceEvent};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut positional: Vec<&str> = Vec::new();
    let mut folded = false;
    let mut enforce = false;
    let mut wall_pct: Option<f64> = None;
    let mut counter_pct: Option<f64> = None;
    let mut it = args.iter().map(String::as_str);
    while let Some(a) = it.next() {
        match a {
            "--folded" => folded = true,
            "--enforce" => enforce = true,
            "--wall-pct" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => wall_pct = Some(v),
                None => return usage("--wall-pct needs a number"),
            },
            "--counter-pct" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => counter_pct = Some(v),
                None => return usage("--counter-pct needs a number"),
            },
            "-h" | "--help" => return usage(""),
            _ if a.starts_with('-') => return usage(&format!("unknown flag {a}")),
            _ => positional.push(a),
        }
    }

    match positional.as_slice() {
        ["profile", path] => with_trace(path, |events| {
            print!("{}", Profile::from_events(&events).render());
            ExitCode::SUCCESS
        }),
        ["flame", path] => with_trace(path, |events| {
            let tree = FlameTree::from_events(&events);
            if folded {
                print!("{}", tree.folded());
            } else {
                print!("{}", tree.render());
            }
            ExitCode::SUCCESS
        }),
        ["diff", a, b] => with_trace(a, |ea| {
            with_trace(b, |eb| {
                let d = TraceDiff::compare(&ea, &eb);
                print!("{}", d.render());
                ExitCode::SUCCESS
            })
        }),
        ["gate", baseline, fresh] => {
            let read =
                |p: &str| std::fs::read_to_string(p).map_err(|e| format!("cannot read {p}: {e}"));
            let mut th = Thresholds::default();
            if let Some(v) = wall_pct {
                th.wall_pct = v;
            }
            if let Some(v) = counter_pct {
                th.counter_pct = v;
            }
            let run = || -> Result<bool, String> {
                let r = gate(&read(baseline)?, &read(fresh)?, th)?;
                print!("{}", r.render());
                Ok(r.passed())
            };
            match run() {
                Ok(true) => ExitCode::SUCCESS,
                Ok(false) if enforce => ExitCode::FAILURE,
                Ok(false) => {
                    println!("(report-only: pass --enforce to fail on violations)");
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("starqo-obs gate: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        _ => usage("expected a subcommand"),
    }
}

/// Load a JSONL trace and hand it to `f`; unparsable lines are skipped
/// with a note on stderr.
fn with_trace(path: &str, f: impl FnOnce(Vec<TraceEvent>) -> ExitCode) -> ExitCode {
    match load_jsonl(path) {
        Ok((events, skipped)) => {
            if skipped > 0 {
                eprintln!("starqo-obs: skipped {skipped} unparsable line(s) in {path}");
            }
            f(events)
        }
        Err(e) => {
            eprintln!("starqo-obs: cannot read {path}: {e}");
            ExitCode::FAILURE
        }
    }
}

fn usage(err: &str) -> ExitCode {
    if !err.is_empty() {
        eprintln!("starqo-obs: {err}");
    }
    eprintln!(
        "usage:\n  starqo-obs profile <trace.jsonl>\n  starqo-obs flame <trace.jsonl> [--folded]\n  starqo-obs diff <a.jsonl> <b.jsonl>\n  starqo-obs gate <baseline.json> <fresh.json> [--wall-pct N] [--counter-pct N] [--enforce]"
    );
    if err.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

//! Hand-constructed traces shared by the analytics tests. Every number
//! here is asserted somewhere — change with care.

use starqo_trace::{CostBreakdownEv, TraceEvent};

/// A minimal but complete run: `JoinRoot` expands once and references
/// `JMeth` twice (one expansion, one memo hit). `JMeth`'s alt 1 fails its
/// condition, alt 2 fires and builds two plans (one inserted, one pruned),
/// and a third candidate is rejected. The winner is `JOIN(MG)` over
/// `ACCESS(heap)`.
pub fn trace_one_star() -> Vec<TraceEvent> {
    vec![
        TraceEvent::StarRef {
            star: "JoinRoot".into(),
            sid: 0,
            id: 1,
            parent: 0,
            memo_hit: false,
        },
        TraceEvent::StarRef {
            star: "JMeth".into(),
            sid: 1,
            id: 2,
            parent: 1,
            memo_hit: false,
        },
        TraceEvent::CondFailed {
            star: "JMeth".into(),
            alt: 1,
            ref_id: 2,
            cond: "enabled('hashjoin')".into(),
        },
        TraceEvent::AltFired {
            star: "JMeth".into(),
            alt: 2,
            ref_id: 2,
            plans: 2,
        },
        TraceEvent::PlanBuilt {
            op: "JOIN(MG)".into(),
            fp: 100,
            ref_id: 2,
            card: 100.0,
            cost_once: 42.0,
            cost_rescan: 1.0,
            breakdown: CostBreakdownEv::default(),
        },
        TraceEvent::PlanBuilt {
            op: "JOIN(NL)".into(),
            fp: 101,
            ref_id: 2,
            card: 100.0,
            cost_once: 99.0,
            cost_rescan: 9.0,
            breakdown: CostBreakdownEv::default(),
        },
        TraceEvent::PlanRejected {
            op: "SORT".into(),
            ref_id: 2,
            reason: "no key".into(),
        },
        TraceEvent::TableInsert {
            op: "JOIN(MG)".into(),
            fp: 100,
            cost: 43.0,
            evicted: 0,
        },
        TraceEvent::TablePrune {
            op: "JOIN(NL)".into(),
            fp: 101,
            cost: 108.0,
            duplicate: false,
        },
        TraceEvent::StarDone {
            star: "JMeth".into(),
            id: 2,
            plans: 1,
            nanos: 1_500,
        },
        TraceEvent::StarRef {
            star: "JMeth".into(),
            sid: 1,
            id: 3,
            parent: 1,
            memo_hit: true,
        },
        TraceEvent::StarDone {
            star: "JoinRoot".into(),
            id: 1,
            plans: 1,
            nanos: 2_000,
        },
        TraceEvent::BestNode {
            op: "JOIN(MG)".into(),
            fp: 100,
            depth: 0,
            origin: "JMeth[alt 2]".into(),
            card: 100.0,
            cost: 43.0,
        },
        TraceEvent::BestNode {
            op: "ACCESS(heap)".into(),
            fp: 50,
            depth: 1,
            origin: "AccessStar[alt 1]".into(),
            card: 10.0,
            cost: 5.0,
        },
    ]
}

//! Trace diff: what changed between two optimizer runs.
//!
//! Compares rule behavior (per-alternative fire counts, condition
//! failures), plan-table content (the sets of inserted fingerprints), and
//! the outcome (best-plan cost and lineage). The typical use: run the same
//! query with and without a strategy family enabled and see exactly which
//! alternatives appeared, which conditions started failing, and what it
//! cost.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;

use starqo_trace::TraceEvent;

use crate::profile::Profile;

/// A keyed count that differs between the two runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Delta {
    pub key: String,
    pub a: u64,
    pub b: u64,
}

impl Delta {
    fn signed(&self) -> i128 {
        self.b as i128 - self.a as i128
    }
}

/// The full comparison of two traces.
#[derive(Debug, Clone, Default)]
pub struct TraceDiff {
    /// Per `Star[alt k]` fire-count changes.
    pub fire_deltas: Vec<Delta>,
    /// Per `Star: cond` condition-failure changes.
    pub cond_deltas: Vec<Delta>,
    /// Fingerprints inserted into the plan table in exactly one run.
    pub only_in_a: usize,
    pub only_in_b: usize,
    pub inserts_a: usize,
    pub inserts_b: usize,
    /// Best-plan root cost per run (None if the trace has no `best_node`).
    pub best_cost_a: Option<f64>,
    pub best_cost_b: Option<f64>,
    /// Rendered `op <= origin` lineage lines per run.
    pub lineage_a: Vec<String>,
    pub lineage_b: Vec<String>,
}

impl TraceDiff {
    /// Compare two event streams ("a" = baseline, "b" = candidate).
    pub fn compare(a: &[TraceEvent], b: &[TraceEvent]) -> TraceDiff {
        let pa = Profile::from_events(a);
        let pb = Profile::from_events(b);

        let mut fires_a: BTreeMap<String, u64> = BTreeMap::new();
        let mut fires_b: BTreeMap<String, u64> = BTreeMap::new();
        let mut conds_a: BTreeMap<String, u64> = BTreeMap::new();
        let mut conds_b: BTreeMap<String, u64> = BTreeMap::new();
        for (profile, fires, conds) in [
            (&pa, &mut fires_a, &mut conds_a),
            (&pb, &mut fires_b, &mut conds_b),
        ] {
            for s in &profile.stars {
                for (alt, n) in &s.alt_fires {
                    fires.insert(format!("{}[alt {}]", s.name, alt), *n);
                }
                for (cond, n) in &s.cond_failures {
                    conds.insert(format!("{}: {}", s.name, cond), *n);
                }
            }
        }

        let fp_set = |events: &[TraceEvent]| -> BTreeSet<u64> {
            events
                .iter()
                .filter_map(|e| match e {
                    TraceEvent::TableInsert { fp, .. } => Some(*fp),
                    _ => None,
                })
                .collect()
        };
        let fps_a = fp_set(a);
        let fps_b = fp_set(b);

        let lineage = |p: &Profile| -> Vec<String> {
            p.lineage
                .iter()
                .map(|r| format!("{} <= {}", r.op, r.origin))
                .collect()
        };

        TraceDiff {
            fire_deltas: deltas(&fires_a, &fires_b),
            cond_deltas: deltas(&conds_a, &conds_b),
            only_in_a: fps_a.difference(&fps_b).count(),
            only_in_b: fps_b.difference(&fps_a).count(),
            inserts_a: fps_a.len(),
            inserts_b: fps_b.len(),
            best_cost_a: pa.lineage.first().map(|r| r.cost),
            best_cost_b: pb.lineage.first().map(|r| r.cost),
            lineage_a: lineage(&pa),
            lineage_b: lineage(&pb),
        }
    }

    /// Any difference at all?
    pub fn is_empty(&self) -> bool {
        self.fire_deltas.is_empty()
            && self.cond_deltas.is_empty()
            && self.only_in_a == 0
            && self.only_in_b == 0
            && self.best_cost_a == self.best_cost_b
            && self.lineage_a == self.lineage_b
    }

    /// Human rendering.
    pub fn render(&self) -> String {
        let mut out = String::new();
        if self.is_empty() {
            let _ = writeln!(out, "traces are behaviorally identical");
            return out;
        }
        if !self.fire_deltas.is_empty() {
            let _ = writeln!(out, "rule firings (a -> b):");
            for d in &self.fire_deltas {
                let _ = writeln!(
                    out,
                    "  {:<36} {:>6} -> {:<6} ({:+})",
                    d.key,
                    d.a,
                    d.b,
                    d.signed()
                );
            }
        }
        if !self.cond_deltas.is_empty() {
            let _ = writeln!(out, "condition failures (a -> b):");
            for d in &self.cond_deltas {
                let _ = writeln!(
                    out,
                    "  {:<36} {:>6} -> {:<6} ({:+})",
                    d.key,
                    d.a,
                    d.b,
                    d.signed()
                );
            }
        }
        let _ = writeln!(
            out,
            "plan table: {} inserts vs {}; {} fingerprints only in a, {} only in b",
            self.inserts_a, self.inserts_b, self.only_in_a, self.only_in_b
        );
        match (self.best_cost_a, self.best_cost_b) {
            (Some(ca), Some(cb)) => {
                let _ = write!(out, "best plan cost: {ca:.1} -> {cb:.1}");
                if ca > 0.0 {
                    let _ = write!(out, " ({:+.1}%)", (cb - ca) * 100.0 / ca);
                }
                let _ = writeln!(out);
            }
            _ => {
                let _ = writeln!(out, "best plan lineage missing from at least one trace");
            }
        }
        if self.lineage_a != self.lineage_b {
            let _ = writeln!(out, "winning lineage diverged:");
            let _ = writeln!(out, "  a:");
            for l in &self.lineage_a {
                let _ = writeln!(out, "    {l}");
            }
            let _ = writeln!(out, "  b:");
            for l in &self.lineage_b {
                let _ = writeln!(out, "    {l}");
            }
        } else {
            let _ = writeln!(out, "winning lineage unchanged");
        }
        out
    }
}

/// Keys whose counts differ (missing = 0), sorted by |delta| descending.
fn deltas(a: &BTreeMap<String, u64>, b: &BTreeMap<String, u64>) -> Vec<Delta> {
    let keys: BTreeSet<&String> = a.keys().chain(b.keys()).collect();
    let mut out: Vec<Delta> = keys
        .into_iter()
        .filter_map(|k| {
            let (va, vb) = (
                a.get(k).copied().unwrap_or(0),
                b.get(k).copied().unwrap_or(0),
            );
            (va != vb).then(|| Delta {
                key: k.clone(),
                a: va,
                b: vb,
            })
        })
        .collect();
    out.sort_by(|x, y| {
        y.signed()
            .abs()
            .cmp(&x.signed().abs())
            .then_with(|| x.key.cmp(&y.key))
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::trace_one_star;

    #[test]
    fn identical_traces_diff_empty() {
        let t = trace_one_star();
        let d = TraceDiff::compare(&t, &t);
        assert!(d.is_empty(), "{d:?}");
        assert!(d.render().contains("identical"));
    }

    #[test]
    fn disabled_alternative_shows_as_fire_delta() {
        let a = trace_one_star();
        // Run "b": alt 2 no longer fires (say its feature got disabled);
        // instead its condition fails and nothing is built.
        let b: Vec<TraceEvent> = a
            .iter()
            .filter(|e| {
                !matches!(
                    e,
                    TraceEvent::AltFired { .. }
                        | TraceEvent::PlanBuilt { .. }
                        | TraceEvent::TableInsert { .. }
                        | TraceEvent::TablePrune { .. }
                        | TraceEvent::BestNode { .. }
                )
            })
            .cloned()
            .collect();
        let d = TraceDiff::compare(&a, &b);
        assert_eq!(d.fire_deltas.len(), 1);
        assert_eq!(d.fire_deltas[0].key, "JMeth[alt 2]");
        assert_eq!((d.fire_deltas[0].a, d.fire_deltas[0].b), (1, 0));
        assert_eq!(d.only_in_a, 1, "fp 100 inserted only in a");
        assert_eq!(d.only_in_b, 0);
        assert_eq!(d.best_cost_a, Some(43.0));
        assert_eq!(d.best_cost_b, None);
        let text = d.render();
        assert!(text.contains("JMeth[alt 2]"), "{text}");
        assert!(text.contains("(-1)"), "{text}");
    }

    #[test]
    fn cost_regression_is_reported_in_percent() {
        let a = trace_one_star();
        let mut b = trace_one_star();
        for ev in &mut b {
            if let TraceEvent::BestNode { cost, depth: 0, .. } = ev {
                *cost = 86.0;
            }
        }
        let d = TraceDiff::compare(&a, &b);
        assert_eq!(d.best_cost_b, Some(86.0));
        let text = d.render();
        assert!(text.contains("43.0 -> 86.0"), "{text}");
        assert!(text.contains("+100.0%"), "{text}");
    }
}

//! Per-STAR attribution profile: what every rule did during a traced run.
//!
//! Built in one pass over the event stream. The joins:
//! - `star_ref.id` → STAR name maps every `ref_id`-carrying event (alt
//!   firings, condition failures, plan construction) to the rule it
//!   happened under;
//! - `plan_built.fp` → the building STAR maps plan-table churn
//!   (`table_insert` / `table_prune` / `table_dominated`, keyed by
//!   fingerprint) back to the rule that offered the plan;
//! - `best_node` events (pre-order, emitted post-optimization) give the
//!   winning plan's lineage directly.

use std::collections::BTreeMap;
use std::collections::HashMap;
use std::fmt::Write as _;

use starqo_trace::TraceEvent;

use crate::fmt::fmt_nanos;

/// Everything attributed to one STAR across a run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StarProfile {
    pub name: String,
    /// References (memo hits + expansions).
    pub refs: u64,
    pub memo_hits: u64,
    /// Fire count per alternative (1-based, as emitted).
    pub alt_fires: BTreeMap<usize, u64>,
    /// Plans returned by fired alternatives (pre-dedup).
    pub plans_from_alts: u64,
    /// Condition-of-applicability failures, keyed by rendered condition.
    pub cond_failures: BTreeMap<String, u64>,
    /// Plan nodes built / rejected while this STAR's alternatives ran.
    pub plans_built: u64,
    pub plans_rejected: u64,
    /// Plan-table outcomes for plans this STAR built.
    pub table_inserted: u64,
    pub table_pruned: u64,
    /// Entries this STAR built that a later dominator evicted.
    pub table_evicted: u64,
    /// Inclusive wall-clock nanos across all non-memoized expansions.
    pub inclusive_nanos: u64,
    /// Nodes of the winning plan attributed to this STAR.
    pub best_nodes: u64,
}

impl StarProfile {
    pub fn fires(&self) -> u64 {
        self.alt_fires.values().sum()
    }

    pub fn cond_failed(&self) -> u64 {
        self.cond_failures.values().sum()
    }
}

/// One node of the winning plan, as traced.
#[derive(Debug, Clone, PartialEq)]
pub struct LineageRow {
    pub op: String,
    pub depth: usize,
    pub origin: String,
    pub card: f64,
    pub cost: f64,
}

/// One `rule_quarantined` event: an alternative the engine disabled after a
/// panic or error, attributed to the query running at the time (when the
/// trace carries `query_start` markers).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuarantineRow {
    pub star: String,
    pub alt: usize,
    pub cond: String,
    pub reason: String,
    pub query: Option<String>,
}

/// One `budget_exhausted` event, attributed like [`QuarantineRow`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DegradedRow {
    pub resource: String,
    pub detail: String,
    pub query: Option<String>,
}

/// Plan-cache activity from a serving-layer trace: the `cache_*` events
/// plus any `serve_*` counter snapshots the service emitted.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServeCacheStats {
    /// `cache_hit` events (true hits and coalesced in-flight shares).
    pub hits: u64,
    /// `cache_miss` events (cold optimizations).
    pub misses: u64,
    pub evicts: u64,
    pub invalidates: u64,
    /// Cold-optimization time warm serves avoided, summed.
    pub saved_nanos: u64,
    /// Latest `serve_*` counter snapshot (the service emits monotonic
    /// snapshots, so last-write-wins is the end-of-run state).
    pub counters: BTreeMap<String, u64>,
}

impl ServeCacheStats {
    /// Whether the trace carried any serving-layer activity at all.
    pub fn any(&self) -> bool {
        self.hits + self.misses + self.evicts + self.invalidates > 0 || !self.counters.is_empty()
    }

    /// Warm serves over all serves that produced a plan.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Vectorized-executor activity from a serving-layer trace: the
/// `exec_fallback` event stream plus any `vexec_*` counter snapshots.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServeExecStats {
    /// `exec_fallback` events: plans the vectorized executor declined,
    /// keyed by the typed reason (the request ran serially).
    pub fallback_reasons: BTreeMap<String, u64>,
    /// Latest `vexec_*` counter snapshot (last-write-wins, like the serve
    /// counters).
    pub counters: BTreeMap<String, u64>,
}

impl ServeExecStats {
    pub fn fallbacks(&self) -> u64 {
        self.fallback_reasons.values().sum()
    }

    /// Whether the trace carried any vectorized-executor activity at all.
    pub fn any(&self) -> bool {
        self.fallbacks() > 0 || !self.counters.is_empty()
    }
}

/// Self-healing activity from a serving-layer trace: the `plan_reopt` /
/// `plan_swap` / `plan_pinned` event stream.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServeHealStats {
    /// `plan_reopt` events (re-optimization attempts started).
    pub reopts: u64,
    /// Candidates that passed the stability guard and replaced the
    /// incumbent.
    pub swaps: u64,
    /// Attempts resolved by keeping the incumbent, keyed by typed reason.
    pub pin_reasons: BTreeMap<String, u64>,
    /// Probation work units, summed across swaps: how much the incumbents
    /// cost against what the winning candidates cost.
    pub incumbent_work: u64,
    pub candidate_work: u64,
}

impl ServeHealStats {
    pub fn pins(&self) -> u64 {
        self.pin_reasons.values().sum()
    }

    /// Whether the trace carried any healing activity at all.
    pub fn any(&self) -> bool {
        self.reopts + self.swaps + self.pins() > 0
    }
}

/// The whole-run profile: per-STAR rows plus the winning-plan lineage.
#[derive(Debug, Clone, Default)]
pub struct Profile {
    pub stars: Vec<StarProfile>,
    pub lineage: Vec<LineageRow>,
    pub events: usize,
    /// Plans built outside any STAR reference (ref_id 0: driver/Glue).
    pub driver_plans_built: u64,
    /// Rule alternatives disabled mid-run after a panic or error.
    pub quarantines: Vec<QuarantineRow>,
    /// Budget exhaustions (queries that degraded to greedy exploration).
    pub degraded: Vec<DegradedRow>,
    /// Serving-layer plan-cache activity (empty unless the trace came from
    /// a `starqo-serve` service).
    pub serve: ServeCacheStats,
    /// Self-healing activity (empty unless the service healed something).
    pub heal: ServeHealStats,
    /// Vectorized-executor activity (empty unless the service routed
    /// requests through `starqo-vexec`).
    pub exec: ServeExecStats,
}

impl Profile {
    /// Aggregate a trace. Events with `ref_id` 0 (driver or Glue work
    /// outside any STAR) accumulate under `driver_plans_built`.
    pub fn from_events(events: &[TraceEvent]) -> Profile {
        let mut by_name: BTreeMap<String, StarProfile> = BTreeMap::new();
        // ref id → STAR name, populated as star_ref events stream past
        // (references always precede the events they enclose).
        let mut ref_star: HashMap<u64, String> = HashMap::new();
        // fingerprint → building STAR name (first builder wins, matching
        // the engine's provenance rule).
        let mut fp_star: HashMap<u64, String> = HashMap::new();
        let mut lineage = Vec::new();
        let mut driver_plans_built = 0u64;
        let mut quarantines = Vec::new();
        let mut degraded = Vec::new();
        let mut serve = ServeCacheStats::default();
        let mut heal = ServeHealStats::default();
        let mut exec = ServeExecStats::default();
        // The query whose events are streaming past, when the trace carries
        // `query_start` markers (fleet runs do; single-query traces don't).
        let mut cur_query: Option<String> = None;

        let star_of = |by_name: &mut BTreeMap<String, StarProfile>, name: &str| {
            by_name
                .entry(name.to_string())
                .or_insert_with(|| StarProfile {
                    name: name.to_string(),
                    ..StarProfile::default()
                });
        };

        for ev in events {
            match ev {
                TraceEvent::StarRef {
                    star, id, memo_hit, ..
                } => {
                    star_of(&mut by_name, star);
                    let p = by_name.get_mut(star).unwrap();
                    p.refs += 1;
                    if *memo_hit {
                        p.memo_hits += 1;
                    }
                    ref_star.insert(*id, star.clone());
                }
                TraceEvent::StarDone { star, nanos, .. } => {
                    star_of(&mut by_name, star);
                    by_name.get_mut(star).unwrap().inclusive_nanos += nanos;
                }
                TraceEvent::AltFired {
                    star, alt, plans, ..
                } => {
                    star_of(&mut by_name, star);
                    let p = by_name.get_mut(star).unwrap();
                    *p.alt_fires.entry(*alt).or_insert(0) += 1;
                    p.plans_from_alts += *plans as u64;
                }
                TraceEvent::CondFailed { star, cond, .. } => {
                    star_of(&mut by_name, star);
                    *by_name
                        .get_mut(star)
                        .unwrap()
                        .cond_failures
                        .entry(cond.clone())
                        .or_insert(0) += 1;
                }
                TraceEvent::PlanBuilt { fp, ref_id, .. } => {
                    match ref_star.get(ref_id) {
                        Some(star) => {
                            let star = star.clone();
                            star_of(&mut by_name, &star);
                            by_name.get_mut(&star).unwrap().plans_built += 1;
                            fp_star.entry(*fp).or_insert(star);
                        }
                        None => driver_plans_built += 1,
                    };
                }
                TraceEvent::PlanRejected { ref_id, .. } => {
                    if let Some(star) = ref_star.get(ref_id) {
                        let star = star.clone();
                        star_of(&mut by_name, &star);
                        by_name.get_mut(&star).unwrap().plans_rejected += 1;
                    }
                }
                TraceEvent::TableInsert { fp, .. } => {
                    if let Some(star) = fp_star.get(fp) {
                        if let Some(p) = by_name.get_mut(star) {
                            p.table_inserted += 1;
                        }
                    }
                }
                TraceEvent::TablePrune { fp, .. } => {
                    if let Some(star) = fp_star.get(fp) {
                        if let Some(p) = by_name.get_mut(star) {
                            p.table_pruned += 1;
                        }
                    }
                }
                TraceEvent::TableDominated { fp, .. } => {
                    if let Some(star) = fp_star.get(fp) {
                        if let Some(p) = by_name.get_mut(star) {
                            p.table_evicted += 1;
                        }
                    }
                }
                TraceEvent::BestNode {
                    op,
                    depth,
                    origin,
                    card,
                    cost,
                    ..
                } => {
                    lineage.push(LineageRow {
                        op: op.clone(),
                        depth: *depth,
                        origin: origin.clone(),
                        card: *card,
                        cost: *cost,
                    });
                    if let Some(star) = origin.split('[').next().filter(|s| !s.is_empty()) {
                        if let Some(p) = by_name.get_mut(star) {
                            p.best_nodes += 1;
                        }
                    }
                }
                TraceEvent::QueryStart { name } => {
                    cur_query = Some(name.clone());
                }
                TraceEvent::RuleQuarantined {
                    star,
                    alt,
                    cond,
                    reason,
                    ..
                } => {
                    quarantines.push(QuarantineRow {
                        star: star.clone(),
                        alt: *alt,
                        cond: cond.clone(),
                        reason: reason.clone(),
                        query: cur_query.clone(),
                    });
                }
                TraceEvent::BudgetExhausted { resource, detail } => {
                    degraded.push(DegradedRow {
                        resource: resource.clone(),
                        detail: detail.clone(),
                        query: cur_query.clone(),
                    });
                }
                TraceEvent::CacheHit { saved_nanos, .. } => {
                    serve.hits += 1;
                    serve.saved_nanos += saved_nanos;
                }
                TraceEvent::CacheMiss { .. } => serve.misses += 1,
                TraceEvent::CacheEvict { .. } => serve.evicts += 1,
                TraceEvent::CacheInvalidate { .. } => serve.invalidates += 1,
                TraceEvent::Counter { name, value } if name.starts_with("serve_") => {
                    serve.counters.insert(name.clone(), *value);
                }
                TraceEvent::Counter { name, value } if name.starts_with("vexec_") => {
                    exec.counters.insert(name.clone(), *value);
                }
                TraceEvent::ExecFallback { reason, .. } => {
                    *exec.fallback_reasons.entry(reason.clone()).or_insert(0) += 1;
                }
                TraceEvent::PlanReopt { .. } => heal.reopts += 1,
                TraceEvent::PlanSwap {
                    incumbent_work,
                    candidate_work,
                    ..
                } => {
                    heal.swaps += 1;
                    heal.incumbent_work += incumbent_work;
                    heal.candidate_work += candidate_work;
                }
                TraceEvent::PlanPinned { reason, .. } => {
                    *heal.pin_reasons.entry(reason.clone()).or_insert(0) += 1;
                }
                _ => {}
            }
        }

        let mut stars: Vec<StarProfile> = by_name.into_values().collect();
        stars.sort_by(|a, b| {
            b.inclusive_nanos
                .cmp(&a.inclusive_nanos)
                .then_with(|| b.refs.cmp(&a.refs))
                .then_with(|| a.name.cmp(&b.name))
        });
        Profile {
            stars,
            lineage,
            events: events.len(),
            driver_plans_built,
            quarantines,
            degraded,
            serve,
            heal,
            exec,
        }
    }

    pub fn star(&self, name: &str) -> Option<&StarProfile> {
        self.stars.iter().find(|s| s.name == name)
    }

    /// Human rendering: the per-rule table, the top failing conditions,
    /// and the winning plan's lineage.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "rule profile ({} events)", self.events);
        let _ = writeln!(
            out,
            "{:<16} {:>6} {:>6} {:>6} {:>7} {:>7} {:>5} {:>5} {:>7} {:>6} {:>10}",
            "star",
            "refs",
            "memo",
            "fires",
            "failed",
            "built",
            "rej",
            "ins",
            "pruned",
            "best",
            "incl"
        );
        for s in &self.stars {
            let _ = writeln!(
                out,
                "{:<16} {:>6} {:>6} {:>6} {:>7} {:>7} {:>5} {:>5} {:>7} {:>6} {:>10}",
                s.name,
                s.refs,
                s.memo_hits,
                s.fires(),
                s.cond_failed(),
                s.plans_built,
                s.plans_rejected,
                s.table_inserted,
                s.table_pruned,
                s.best_nodes,
                fmt_nanos(s.inclusive_nanos),
            );
        }
        if self.driver_plans_built > 0 {
            let _ = writeln!(
                out,
                "(driver/glue)    plans built outside rules: {}",
                self.driver_plans_built
            );
        }

        let mut failing: Vec<(&str, &String, u64)> = self
            .stars
            .iter()
            .flat_map(|s| {
                s.cond_failures
                    .iter()
                    .map(move |(c, n)| (s.name.as_str(), c, *n))
            })
            .collect();
        if !failing.is_empty() {
            failing.sort_by(|a, b| b.2.cmp(&a.2).then_with(|| (a.0, a.1).cmp(&(b.0, b.1))));
            let _ = writeln!(out, "\ntop failing conditions:");
            for (star, cond, n) in failing.iter().take(10) {
                let _ = writeln!(out, "  {n:>6}x  {star}: {cond}");
            }
        }

        if !self.quarantines.is_empty() || !self.degraded.is_empty() {
            let _ = writeln!(out, "\nquarantined rules / degraded queries:");
            for q in &self.quarantines {
                let _ = writeln!(
                    out,
                    "  quarantined {}[alt {}] (cond: {}){}: {}",
                    q.star,
                    q.alt,
                    q.cond,
                    q.query
                        .as_deref()
                        .map(|n| format!(" during {n}"))
                        .unwrap_or_default(),
                    q.reason,
                );
            }
            for d in &self.degraded {
                let _ = writeln!(
                    out,
                    "  degraded{}: budget exhausted ({}: {})",
                    d.query
                        .as_deref()
                        .map(|n| format!(" {n}"))
                        .unwrap_or_default(),
                    d.resource,
                    d.detail,
                );
            }
        }

        if self.serve.any() {
            let _ = writeln!(out, "\nserve cache:");
            let _ = writeln!(
                out,
                "  hits {} (incl. coalesced)  misses {}  evicts {}  invalidates {}",
                self.serve.hits, self.serve.misses, self.serve.evicts, self.serve.invalidates,
            );
            let _ = writeln!(
                out,
                "  hit ratio {:.3}  cold time avoided {}",
                self.serve.hit_ratio(),
                fmt_nanos(self.serve.saved_nanos),
            );
            if !self.serve.counters.is_empty() {
                let rendered: Vec<String> = self
                    .serve
                    .counters
                    .iter()
                    .map(|(k, v)| format!("{k}={v}"))
                    .collect();
                let _ = writeln!(out, "  counters: {}", rendered.join("  "));
            }
        }

        if self.heal.any() {
            let _ = writeln!(out, "\nserve heal:");
            let _ = writeln!(
                out,
                "  reopt attempts {}  swaps {}  pins {}",
                self.heal.reopts,
                self.heal.swaps,
                self.heal.pins(),
            );
            if self.heal.swaps > 0 {
                let _ = writeln!(
                    out,
                    "  probation work: incumbent {}  candidate {}",
                    self.heal.incumbent_work, self.heal.candidate_work,
                );
            }
            if !self.heal.pin_reasons.is_empty() {
                let rendered: Vec<String> = self
                    .heal
                    .pin_reasons
                    .iter()
                    .map(|(r, n)| format!("{r}={n}"))
                    .collect();
                let _ = writeln!(out, "  pin reasons: {}", rendered.join("  "));
            }
        }

        if self.exec.any() {
            let _ = writeln!(out, "\nexecutor:");
            if !self.exec.counters.is_empty() {
                let rendered: Vec<String> = self
                    .exec
                    .counters
                    .iter()
                    .map(|(k, v)| format!("{k}={v}"))
                    .collect();
                let _ = writeln!(out, "  counters: {}", rendered.join("  "));
            }
            if self.exec.fallbacks() > 0 {
                let _ = writeln!(
                    out,
                    "  fallbacks {} (unsupported plans served serially)",
                    self.exec.fallbacks(),
                );
                let rendered: Vec<String> = self
                    .exec
                    .fallback_reasons
                    .iter()
                    .map(|(r, n)| format!("{n}x {r}"))
                    .collect();
                let _ = writeln!(out, "  fallback reasons: {}", rendered.join("  "));
            }
        }

        if !self.lineage.is_empty() {
            let _ = writeln!(out, "\nwinning plan lineage:");
            for row in &self.lineage {
                let _ = writeln!(
                    out,
                    "  {}{}  <= {}  [card={:.1} cost={:.1}]",
                    "  ".repeat(row.depth),
                    row.op,
                    row.origin,
                    row.card,
                    row.cost,
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::trace_one_star;

    #[test]
    fn attributes_fires_failures_and_table_churn() {
        let events = trace_one_star();
        let p = Profile::from_events(&events);
        let s = p.star("JMeth").expect("JMeth profiled");
        assert_eq!(s.refs, 2);
        assert_eq!(s.memo_hits, 1);
        assert_eq!(s.fires(), 1);
        assert_eq!(s.alt_fires.get(&2), Some(&1));
        assert_eq!(s.cond_failed(), 1);
        assert_eq!(s.cond_failures.get("enabled('hashjoin')").copied(), Some(1));
        assert_eq!(s.plans_built, 2);
        assert_eq!(s.plans_rejected, 1);
        assert_eq!(s.table_inserted, 1);
        assert_eq!(s.table_pruned, 1);
        assert_eq!(s.inclusive_nanos, 1_500);
        assert_eq!(s.best_nodes, 1);
    }

    #[test]
    fn lineage_comes_from_best_node_events() {
        let events = trace_one_star();
        let p = Profile::from_events(&events);
        assert_eq!(p.lineage.len(), 2);
        assert_eq!(p.lineage[0].op, "JOIN(MG)");
        assert_eq!(p.lineage[0].depth, 0);
        assert_eq!(p.lineage[0].origin, "JMeth[alt 2]");
        assert_eq!(p.lineage[1].depth, 1);
        let text = p.render();
        assert!(text.contains("winning plan lineage"), "{text}");
        assert!(text.contains("JMeth[alt 2]"), "{text}");
        assert!(text.contains("enabled('hashjoin')"), "{text}");
    }

    #[test]
    fn unattributed_plans_count_as_driver_work() {
        let events = vec![TraceEvent::PlanBuilt {
            op: "ACCESS(heap)".into(),
            fp: 1,
            ref_id: 0,
            card: 1.0,
            cost_once: 1.0,
            cost_rescan: 0.0,
            breakdown: Default::default(),
        }];
        let p = Profile::from_events(&events);
        assert!(p.stars.is_empty());
        assert_eq!(p.driver_plans_built, 1);
    }

    #[test]
    fn quarantines_and_degradations_attributed_to_queries() {
        let events = vec![
            TraceEvent::QueryStart {
                name: "paper_q1".into(),
            },
            TraceEvent::RuleQuarantined {
                star: "JMeth".into(),
                alt: 3,
                ref_id: 7,
                cond: "enabled('hashjoin')".into(),
                reason: "panic in STAR JMeth[alt 3]: boom".into(),
            },
            TraceEvent::QueryStart {
                name: "paper_q2".into(),
            },
            TraceEvent::BudgetExhausted {
                resource: "memo_entries".into(),
                detail: "cap 4 reached".into(),
            },
        ];
        let p = Profile::from_events(&events);
        assert_eq!(p.quarantines.len(), 1);
        assert_eq!(p.quarantines[0].query.as_deref(), Some("paper_q1"));
        assert_eq!(p.degraded.len(), 1);
        assert_eq!(p.degraded[0].query.as_deref(), Some("paper_q2"));
        let text = p.render();
        assert!(
            text.contains("quarantined rules / degraded queries"),
            "{text}"
        );
        assert!(text.contains("JMeth[alt 3]"), "{text}");
        assert!(text.contains("during paper_q1"), "{text}");
        assert!(text.contains("degraded paper_q2"), "{text}");
        assert!(text.contains("memo_entries"), "{text}");
    }

    #[test]
    fn serve_cache_events_aggregate_into_their_own_section() {
        let events = vec![
            TraceEvent::CacheMiss { fp: 1, epoch: 0 },
            TraceEvent::CacheHit {
                fp: 1,
                epoch: 0,
                saved_nanos: 1_000,
            },
            TraceEvent::CacheHit {
                fp: 1,
                epoch: 0,
                saved_nanos: 2_000,
            },
            TraceEvent::CacheInvalidate { fp: 1, epoch: 1 },
            TraceEvent::CacheEvict {
                fp: 2,
                reason: "capacity".into(),
            },
            // Two snapshots of the same counter: last one wins.
            TraceEvent::Counter {
                name: "serve_requests".into(),
                value: 2,
            },
            TraceEvent::Counter {
                name: "serve_requests".into(),
                value: 4,
            },
            // Non-serve counters stay out of the section.
            TraceEvent::Counter {
                name: "plans_built".into(),
                value: 9,
            },
        ];
        let p = Profile::from_events(&events);
        assert!(p.serve.any());
        assert_eq!(p.serve.hits, 2);
        assert_eq!(p.serve.misses, 1);
        assert_eq!(p.serve.evicts, 1);
        assert_eq!(p.serve.invalidates, 1);
        assert_eq!(p.serve.saved_nanos, 3_000);
        assert!((p.serve.hit_ratio() - 2.0 / 3.0).abs() < 1e-9);
        assert_eq!(p.serve.counters.get("serve_requests"), Some(&4));
        assert_eq!(p.serve.counters.get("plans_built"), None);
        let text = p.render();
        assert!(text.contains("serve cache:"), "{text}");
        assert!(text.contains("hit ratio 0.667"), "{text}");
        assert!(text.contains("serve_requests=4"), "{text}");
    }

    #[test]
    fn profiles_without_serve_events_omit_the_section() {
        let p = Profile::from_events(&trace_one_star());
        assert!(!p.serve.any());
        assert!(!p.render().contains("serve cache:"));
        assert!(!p.heal.any());
        assert!(!p.render().contains("serve heal:"));
        assert!(!p.exec.any());
        assert!(!p.render().contains("executor:"));
    }

    #[test]
    fn exec_fallbacks_and_vexec_counters_aggregate_into_their_own_section() {
        let events = vec![
            TraceEvent::ExecFallback {
                fp: 7,
                reason: "correlated inner".into(),
            },
            TraceEvent::ExecFallback {
                fp: 9,
                reason: "correlated inner".into(),
            },
            TraceEvent::ExecFallback {
                fp: 11,
                reason: "extension operator".into(),
            },
            // Two snapshots of the same counter: last one wins.
            TraceEvent::Counter {
                name: "vexec_rows".into(),
                value: 100,
            },
            TraceEvent::Counter {
                name: "vexec_rows".into(),
                value: 250,
            },
            TraceEvent::Counter {
                name: "vexec_batches".into(),
                value: 12,
            },
            // Serve and engine counters stay in their own homes.
            TraceEvent::Counter {
                name: "serve_requests".into(),
                value: 3,
            },
        ];
        let p = Profile::from_events(&events);
        assert!(p.exec.any());
        assert_eq!(p.exec.fallbacks(), 3);
        assert_eq!(p.exec.fallback_reasons.get("correlated inner"), Some(&2));
        assert_eq!(p.exec.fallback_reasons.get("extension operator"), Some(&1));
        assert_eq!(p.exec.counters.get("vexec_rows"), Some(&250));
        assert_eq!(p.exec.counters.get("vexec_batches"), Some(&12));
        assert_eq!(p.exec.counters.get("serve_requests"), None);
        assert_eq!(p.serve.counters.get("serve_requests"), Some(&3));
        let text = p.render();
        assert!(text.contains("executor:"), "{text}");
        assert!(
            text.contains("counters: vexec_batches=12  vexec_rows=250"),
            "{text}"
        );
        assert!(
            text.contains("fallbacks 3 (unsupported plans served serially)"),
            "{text}"
        );
        assert!(
            text.contains("fallback reasons: 2x correlated inner  1x extension operator"),
            "{text}"
        );
    }

    #[test]
    fn counters_alone_surface_the_executor_section() {
        // A healthy vexec run has no fallback events, only counters; the
        // section must still appear.
        let events = vec![TraceEvent::Counter {
            name: "vexec_morsels".into(),
            value: 40,
        }];
        let p = Profile::from_events(&events);
        assert!(p.exec.any());
        assert_eq!(p.exec.fallbacks(), 0);
        let text = p.render();
        assert!(text.contains("executor:"), "{text}");
        assert!(text.contains("vexec_morsels=40"), "{text}");
        assert!(!text.contains("fallback reasons"), "{text}");
    }

    #[test]
    fn heal_events_aggregate_into_their_own_section() {
        let events = vec![
            TraceEvent::PlanReopt {
                fp: 7,
                epoch: 1,
                attempt: 1,
            },
            TraceEvent::PlanPinned {
                fp: 7,
                epoch: 1,
                reason: "reopt_error".into(),
                attempt: 1,
                backoff_nanos: 1_000,
            },
            TraceEvent::PlanReopt {
                fp: 7,
                epoch: 1,
                attempt: 2,
            },
            TraceEvent::PlanSwap {
                fp: 7,
                epoch: 1,
                incumbent_work: 900,
                candidate_work: 300,
            },
            TraceEvent::PlanPinned {
                fp: 9,
                epoch: 1,
                reason: "regression".into(),
                attempt: 1,
                backoff_nanos: 2_000,
            },
        ];
        let p = Profile::from_events(&events);
        assert!(p.heal.any());
        assert_eq!(p.heal.reopts, 2);
        assert_eq!(p.heal.swaps, 1);
        assert_eq!(p.heal.pins(), 2);
        assert_eq!(p.heal.pin_reasons.get("reopt_error"), Some(&1));
        assert_eq!(p.heal.pin_reasons.get("regression"), Some(&1));
        assert_eq!((p.heal.incumbent_work, p.heal.candidate_work), (900, 300));
        let text = p.render();
        assert!(text.contains("serve heal:"), "{text}");
        assert!(text.contains("reopt attempts 2  swaps 1  pins 2"), "{text}");
        assert!(
            text.contains("probation work: incumbent 900  candidate 300"),
            "{text}"
        );
        assert!(
            text.contains("pin reasons: regression=1  reopt_error=1"),
            "{text}"
        );
    }

    #[test]
    fn sorted_by_inclusive_time() {
        let mk = |star: &str, id: u64, nanos: u64| {
            vec![
                TraceEvent::StarRef {
                    star: star.into(),
                    sid: 0,
                    id,
                    parent: 0,
                    memo_hit: false,
                },
                TraceEvent::StarDone {
                    star: star.into(),
                    id,
                    plans: 0,
                    nanos,
                },
            ]
        };
        let mut events = mk("Cheap", 1, 10);
        events.extend(mk("Hot", 2, 10_000));
        let p = Profile::from_events(&events);
        assert_eq!(p.stars[0].name, "Hot");
        assert_eq!(p.stars[1].name, "Cheap");
    }
}

//! Benchmark regression gate: compare a fresh `BENCH_*.json` against a
//! committed baseline with percentage thresholds.
//!
//! Two classes of measurement get different thresholds:
//! - **wall_ms** is wall-clock and noisy — gated by `wall_pct`;
//! - **work counters** (star_refs, plans_built, ...) are deterministic for
//!   a fixed rule set and query — gated by the tighter `counter_pct`.
//!
//! Only *increases* violate: doing less work or running faster never
//! fails the gate. Counters present in just one file are reported as
//! informational notes, not violations (benchmarks grow new counters).

use std::fmt::Write as _;

use starqo_trace::read::{parse_json, JsonValue};

/// One measurement that regressed past its threshold.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    pub metric: String,
    pub baseline: f64,
    pub fresh: f64,
    pub change_pct: f64,
    pub threshold_pct: f64,
}

/// The outcome of gating one fresh report against one baseline.
#[derive(Debug, Clone, Default)]
pub struct GateResult {
    pub bench: String,
    pub violations: Vec<Violation>,
    /// Measurements compared (wall_ms + shared counters).
    pub checked: usize,
    /// Counters present in only one of the two files.
    pub notes: Vec<String>,
}

impl GateResult {
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }

    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "gate[{}]: {} measurements checked, {} violation(s)",
            self.bench,
            self.checked,
            self.violations.len()
        );
        for v in &self.violations {
            let _ = writeln!(
                out,
                "  REGRESSION {}: {} -> {} ({:+.1}%, threshold {:.1}%)",
                v.metric, v.baseline, v.fresh, v.change_pct, v.threshold_pct
            );
        }
        for n in &self.notes {
            let _ = writeln!(out, "  note: {n}");
        }
        out
    }
}

/// Percentage thresholds for [`gate`].
#[derive(Debug, Clone, Copy)]
pub struct Thresholds {
    /// Allowed wall-clock increase, percent.
    pub wall_pct: f64,
    /// Allowed work-counter increase, percent.
    pub counter_pct: f64,
}

impl Default for Thresholds {
    fn default() -> Self {
        Thresholds {
            wall_pct: 25.0,
            counter_pct: 5.0,
        }
    }
}

/// Compare two `BENCH_*.json` documents (baseline, fresh).
pub fn gate(baseline: &str, fresh: &str, th: Thresholds) -> Result<GateResult, String> {
    let base = parse_json(baseline).map_err(|e| format!("baseline: {e}"))?;
    let new = parse_json(fresh).map_err(|e| format!("fresh: {e}"))?;
    let mut result = GateResult {
        bench: new
            .get("bench")
            .and_then(JsonValue::as_str)
            .unwrap_or("?")
            .to_string(),
        ..GateResult::default()
    };

    if let (Some(bw), Some(fw)) = (
        base.get("wall_ms").and_then(JsonValue::as_f64),
        new.get("wall_ms").and_then(JsonValue::as_f64),
    ) {
        result.checked += 1;
        check("wall_ms", bw, fw, th.wall_pct, &mut result.violations);
    }

    let counters = |doc: &JsonValue| -> Vec<(String, f64)> {
        doc.get("metrics")
            .and_then(|m| m.get("counters"))
            .and_then(JsonValue::fields)
            .map(|fields| {
                fields
                    .iter()
                    .filter_map(|(k, v)| v.as_f64().map(|n| (k.clone(), n)))
                    .collect()
            })
            .unwrap_or_default()
    };
    let bc = counters(&base);
    let fc = counters(&new);
    for (k, bv) in &bc {
        match fc.iter().find(|(fk, _)| fk == k) {
            Some((_, fv)) => {
                result.checked += 1;
                check(k, *bv, *fv, th.counter_pct, &mut result.violations);
            }
            None => result
                .notes
                .push(format!("counter {k} missing from fresh run")),
        }
    }
    for (k, _) in &fc {
        if !bc.iter().any(|(bk, _)| bk == k) {
            result.notes.push(format!("counter {k} new in fresh run"));
        }
    }
    Ok(result)
}

fn check(metric: &str, baseline: f64, fresh: f64, threshold_pct: f64, out: &mut Vec<Violation>) {
    if baseline <= 0.0 {
        // Can't compute a percentage; any nonzero growth from zero is a
        // regression only if the threshold is zero too — skip instead of
        // dividing by zero.
        return;
    }
    let change_pct = (fresh - baseline) * 100.0 / baseline;
    if change_pct > threshold_pct {
        out.push(Violation {
            metric: metric.to_string(),
            baseline,
            fresh,
            change_pct,
            threshold_pct,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench_json(wall_ms: f64, star_refs: u64, plans: u64) -> String {
        format!(
            r#"{{"bench":"strategies","wall_ms":{wall_ms},"reports":2,"metrics":{{"counters":{{"plans_built":{plans},"star_refs":{star_refs}}},"phase_nanos":{{"enumerate":100}}}}}}"#
        )
    }

    #[test]
    fn unchanged_run_passes() {
        let doc = bench_json(100.0, 500, 2000);
        let r = gate(&doc, &doc, Thresholds::default()).unwrap();
        assert!(r.passed(), "{r:?}");
        assert_eq!(r.checked, 3);
        assert_eq!(r.bench, "strategies");
    }

    #[test]
    fn counter_growth_past_threshold_fails() {
        // star_refs 500 -> 600 = +20%, over the 5% counter threshold.
        let base = bench_json(100.0, 500, 2000);
        let fresh = bench_json(100.0, 600, 2000);
        let r = gate(&base, &fresh, Thresholds::default()).unwrap();
        assert_eq!(r.violations.len(), 1);
        let v = &r.violations[0];
        assert_eq!(v.metric, "star_refs");
        assert!((v.change_pct - 20.0).abs() < 1e-9);
        assert!(
            r.render().contains("REGRESSION star_refs"),
            "{}",
            r.render()
        );
    }

    #[test]
    fn wall_clock_gets_the_looser_threshold() {
        // +20% wall time: under the 25% wall threshold, passes.
        let base = bench_json(100.0, 500, 2000);
        let fresh = bench_json(120.0, 500, 2000);
        assert!(gate(&base, &fresh, Thresholds::default()).unwrap().passed());
        // +30%: fails.
        let fresh = bench_json(130.0, 500, 2000);
        let r = gate(&base, &fresh, Thresholds::default()).unwrap();
        assert_eq!(r.violations.len(), 1);
        assert_eq!(r.violations[0].metric, "wall_ms");
    }

    #[test]
    fn improvements_never_violate() {
        let base = bench_json(100.0, 500, 2000);
        let fresh = bench_json(10.0, 100, 50);
        assert!(gate(&base, &fresh, Thresholds::default()).unwrap().passed());
    }

    #[test]
    fn missing_and_new_counters_are_notes_not_violations() {
        let base = r#"{"bench":"x","wall_ms":1,"metrics":{"counters":{"old_counter":5}}}"#;
        let fresh = r#"{"bench":"x","wall_ms":1,"metrics":{"counters":{"new_counter":9}}}"#;
        let r = gate(base, fresh, Thresholds::default()).unwrap();
        assert!(r.passed());
        assert_eq!(r.notes.len(), 2);
    }

    #[test]
    fn malformed_json_is_an_error() {
        assert!(gate("not json", "{}", Thresholds::default()).is_err());
        assert!(gate("{}", "nope", Thresholds::default()).is_err());
    }
}

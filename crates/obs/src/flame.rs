//! The STAR expansion tree as a flamegraph.
//!
//! `star_ref` events carry `(id, parent)`, so the expansion forest
//! reconstructs exactly; sibling references of the same STAR under the same
//! aggregate path merge into one frame (the standard flamegraph collapse).
//! Inclusive time comes from `star_done`; memo hits contribute a reference
//! count but no time (the engine spent none). Self time is inclusive minus
//! the children's inclusive, floored at zero — clock jitter between nested
//! measurements must not produce negative frames.
//!
//! Two renderings:
//! - [`FlameTree::render`] — an indented ASCII tree with bars, counts, and
//!   percentages (terminal-friendly);
//! - [`FlameTree::folded`] — `semicolon;separated;stacks value` lines, the
//!   interchange format standard flamegraph tooling consumes.

use std::collections::BTreeMap;
use std::collections::HashMap;
use std::fmt::Write as _;

use starqo_trace::TraceEvent;

use crate::fmt::fmt_nanos;

/// One aggregated frame of the expansion tree.
#[derive(Debug, Clone, Default)]
pub struct Frame {
    pub name: String,
    /// References that landed on this frame (memo hits included).
    pub refs: u64,
    pub memo_hits: u64,
    /// Inclusive nanos summed over the frame's expansions.
    pub inclusive: u64,
    children: BTreeMap<String, usize>,
}

/// The aggregated expansion forest of one traced run.
#[derive(Debug, Clone)]
pub struct FlameTree {
    /// Arena; index 0 is the synthetic root ("the driver").
    frames: Vec<Frame>,
}

impl FlameTree {
    /// Build from a trace. Only `star_ref` / `star_done` events matter;
    /// anything else is ignored.
    pub fn from_events(events: &[TraceEvent]) -> FlameTree {
        let mut frames = vec![Frame {
            name: "driver".to_string(),
            ..Frame::default()
        }];
        // Concrete reference id → aggregate frame index.
        let mut ref_frame: HashMap<u64, usize> = HashMap::new();
        for ev in events {
            match ev {
                TraceEvent::StarRef {
                    star,
                    id,
                    parent,
                    memo_hit,
                    ..
                } => {
                    let parent_idx = ref_frame.get(parent).copied().unwrap_or(0);
                    let idx = match frames[parent_idx].children.get(star) {
                        Some(i) => *i,
                        None => {
                            frames.push(Frame {
                                name: star.clone(),
                                ..Frame::default()
                            });
                            let i = frames.len() - 1;
                            frames[parent_idx].children.insert(star.clone(), i);
                            i
                        }
                    };
                    frames[idx].refs += 1;
                    if *memo_hit {
                        frames[idx].memo_hits += 1;
                    }
                    ref_frame.insert(*id, idx);
                }
                TraceEvent::StarDone { id, nanos, .. } => {
                    if let Some(idx) = ref_frame.get(id) {
                        frames[*idx].inclusive += nanos;
                    }
                }
                _ => {}
            }
        }
        // The driver's inclusive time is its children's total.
        frames[0].inclusive = frames[0]
            .children
            .values()
            .map(|i| frames[*i].inclusive)
            .sum();
        FlameTree { frames }
    }

    pub fn root(&self) -> &Frame {
        &self.frames[0]
    }

    fn children_sorted(&self, idx: usize) -> Vec<usize> {
        let mut kids: Vec<usize> = self.frames[idx].children.values().copied().collect();
        kids.sort_by(|a, b| {
            self.frames[*b]
                .inclusive
                .cmp(&self.frames[*a].inclusive)
                .then_with(|| self.frames[*a].name.cmp(&self.frames[*b].name))
        });
        kids
    }

    /// Self time of a frame: inclusive minus children's inclusive,
    /// saturating (nested clock reads can exceed the outer measurement).
    pub fn self_nanos(&self, idx: usize) -> u64 {
        let child_sum: u64 = self.frames[idx]
            .children
            .values()
            .map(|i| self.frames[*i].inclusive)
            .sum();
        self.frames[idx].inclusive.saturating_sub(child_sum)
    }

    /// Indented ASCII rendering, hottest subtree first.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let total = self.frames[0].inclusive.max(1);
        let _ = writeln!(
            out,
            "STAR expansion flame (total {})",
            fmt_nanos(self.frames[0].inclusive)
        );
        for idx in self.children_sorted(0) {
            self.render_rec(idx, 0, total, &mut out);
        }
        out
    }

    fn render_rec(&self, idx: usize, depth: usize, total: u64, out: &mut String) {
        let f = &self.frames[idx];
        let pct = f.inclusive as f64 * 100.0 / total as f64;
        let bar_len =
            ((pct / 100.0 * 30.0).round() as usize).clamp(if pct > 0.0 { 1 } else { 0 }, 30);
        let _ = writeln!(
            out,
            "{:<30} {:>8} {:>5.1}% {:>5} refs {:>4} memo  |{}",
            format!("{}{}", "  ".repeat(depth), f.name),
            fmt_nanos(f.inclusive),
            pct,
            f.refs,
            f.memo_hits,
            "#".repeat(bar_len),
        );
        for c in self.children_sorted(idx) {
            self.render_rec(c, depth + 1, total, out);
        }
    }

    /// Folded-stacks interchange output: one `a;b;c <self-nanos>` line per
    /// frame with nonzero self time (root excluded), ready for
    /// `flamegraph.pl` or any compatible renderer.
    pub fn folded(&self) -> String {
        let mut out = String::new();
        let mut stack: Vec<String> = Vec::new();
        self.folded_rec(0, &mut stack, &mut out);
        out
    }

    fn folded_rec(&self, idx: usize, stack: &mut Vec<String>, out: &mut String) {
        if idx != 0 {
            stack.push(self.frames[idx].name.clone());
            let own = self.self_nanos(idx);
            if own > 0 {
                let _ = writeln!(out, "{} {}", stack.join(";"), own);
            }
        }
        for c in self.children_sorted(idx) {
            self.folded_rec(c, stack, out);
        }
        if idx != 0 {
            stack.pop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::trace_one_star;

    #[test]
    fn reconstructs_the_expansion_tree() {
        let t = FlameTree::from_events(&trace_one_star());
        assert_eq!(t.root().children.len(), 1, "one root star");
        let root_kid = *t.root().children.get("JoinRoot").unwrap();
        let jr = &t.frames[root_kid];
        assert_eq!(jr.name, "JoinRoot");
        assert_eq!(jr.refs, 1);
        assert_eq!(jr.inclusive, 2_000);
        let jm = &t.frames[*jr.children.get("JMeth").unwrap()];
        // Two references merged into one frame: one expansion + one memo hit.
        assert_eq!(jm.refs, 2);
        assert_eq!(jm.memo_hits, 1);
        assert_eq!(jm.inclusive, 1_500);
    }

    #[test]
    fn self_time_is_inclusive_minus_children() {
        let t = FlameTree::from_events(&trace_one_star());
        let jr = *t.root().children.get("JoinRoot").unwrap();
        assert_eq!(t.self_nanos(jr), 500);
        let jm = *t.frames[jr].children.get("JMeth").unwrap();
        assert_eq!(t.self_nanos(jm), 1_500);
    }

    #[test]
    fn folded_output_matches_hand_computation() {
        let t = FlameTree::from_events(&trace_one_star());
        let folded = t.folded();
        let lines: Vec<&str> = folded.lines().collect();
        assert_eq!(lines, vec!["JoinRoot 500", "JoinRoot;JMeth 1500"]);
    }

    #[test]
    fn self_time_saturates_at_zero() {
        // Child claims more time than the parent measured.
        let events = vec![
            TraceEvent::StarRef {
                star: "A".into(),
                sid: 0,
                id: 1,
                parent: 0,
                memo_hit: false,
            },
            TraceEvent::StarRef {
                star: "B".into(),
                sid: 1,
                id: 2,
                parent: 1,
                memo_hit: false,
            },
            TraceEvent::StarDone {
                star: "B".into(),
                id: 2,
                plans: 0,
                nanos: 150,
            },
            TraceEvent::StarDone {
                star: "A".into(),
                id: 1,
                plans: 0,
                nanos: 100,
            },
        ];
        let t = FlameTree::from_events(&events);
        let a = *t.root().children.get("A").unwrap();
        assert_eq!(t.self_nanos(a), 0);
        assert!(t.folded().lines().all(|l| !l.starts_with("A ")));
    }

    #[test]
    fn render_mentions_every_star() {
        let text = FlameTree::from_events(&trace_one_star()).render();
        assert!(text.contains("JoinRoot"), "{text}");
        assert!(text.contains("JMeth"), "{text}");
        assert!(text.contains("2.0µs"), "{text}");
    }
}

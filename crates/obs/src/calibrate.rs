//! Cost-model calibration: fit a [`CostCalibration`] profile from the
//! observatory's (estimated cost breakdown, actual nanos) pairs.
//!
//! Every joined plan node contributes one sample: `plan_built` carries the
//! node's *inclusive* estimated I/O/CPU/communication split, and the
//! executor measured its inclusive wall time. Using all nodes — not just
//! query roots — matters: leaf scans are I/O-heavy, joins CPU-heavy, SHIPs
//! communication-heavy, and that operator-level diversity is what makes
//! the three columns separable (root-only mixes are nearly collinear). The
//! fit solves the per-component linear model
//!
//! ```text
//!   nanos ≈ s_io·io + s_cpu·(cpu + other) + s_comm·comm
//! ```
//!
//! two ways and keeps whichever scores better on the metric that actually
//! matters:
//!
//! 1. **Relative least squares** — each sample weighted by `1/nanos²`, so
//!    the normal equations minimize `Σ ((pred − nanos) / nanos)²`
//!    (hand-rolled 3×3, no dependencies, deterministic). Exact when the
//!    data really is a linear mix of the three components.
//! 2. **Grid search over scale ratios** — the io and comm columns are
//!    nearly collinear with cpu on real traces (every component grows
//!    with rows), so the unconstrained LS solution can swing negative and
//!    would invert plan rankings. The grid walks `2^(k/2)` ratios (then
//!    refines at quarter- and eighth-steps) and scores each candidate by
//!    the *geomean-normalized Q-error deviation* — median plus a p90 tail
//!    term — exactly how the accuracy report will judge the re-run.
//!
//! The least-squares candidate competes on the same score and is dropped
//! outright if any fitted scale is non-positive. `other` is folded into
//! the CPU column: the few operators that report unattributed cost are
//! compute-shaped.
//!
//! Degenerate inputs are handled conservatively: components that never
//! appear in the workload (e.g. no distributed queries → comm ≡ 0) fall
//! back to the uniform scale — reported as notes.

use std::fmt::Write as _;

use starqo_plan::CostCalibration;

use crate::accuracy::AccuracyReport;

/// One (estimate breakdown, actual) pair — a joined plan node.
#[derive(Debug, Clone, PartialEq)]
pub struct CalibSample {
    pub query: String,
    pub io: f64,
    /// CPU plus any unattributed ("other") estimate.
    pub cpu: f64,
    pub comm: f64,
    pub nanos: f64,
}

/// Fitting samples from an accuracy join: every joined node that had both
/// a `plan_built` breakdown and an executor actual.
pub fn samples(report: &AccuracyReport) -> Vec<CalibSample> {
    report
        .nodes
        .iter()
        .filter_map(|n| {
            let b = n.breakdown?;
            Some(CalibSample {
                query: n.query.clone(),
                io: b.io,
                cpu: b.cpu + b.other,
                comm: b.comm,
                nanos: n.act_nanos as f64,
            })
        })
        .collect()
}

/// A fitted profile plus fit diagnostics.
#[derive(Debug, Clone)]
pub struct CalibFit {
    pub profile: CostCalibration,
    /// Relative RMS residual of the single-scale (uniform) baseline, for
    /// comparison with `profile.residual_rms`.
    pub uniform_rms: f64,
    /// Degenerate-input annotations (dropped columns, clamped scales).
    pub notes: Vec<String>,
}

impl CalibFit {
    pub fn render(&self) -> String {
        let mut out = String::new();
        let p = &self.profile;
        let _ = writeln!(
            out,
            "calibration fit over {} samples (ns per cost unit):",
            p.samples
        );
        let _ = writeln!(out, "  scale_io   = {:.4}", p.scale_io);
        let _ = writeln!(out, "  scale_cpu  = {:.4}", p.scale_cpu);
        let _ = writeln!(out, "  scale_comm = {:.4}", p.scale_comm);
        let _ = writeln!(
            out,
            "  relative residual rms {:.3} (uniform single-scale baseline {:.3})",
            p.residual_rms, self.uniform_rms
        );
        for n in &self.notes {
            let _ = writeln!(out, "  note: {n}");
        }
        out
    }
}

/// Fit per-component scales: relative least squares and a Q-error grid
/// search compete; the candidate with the lower Q-error score wins. Needs
/// at least 3 samples (one per unknown); errors on fewer or on an
/// all-zero design.
pub fn fit(samples: &[CalibSample]) -> Result<CalibFit, String> {
    let n = samples.len();
    if n < 3 {
        return Err(format!("need at least 3 samples to fit 3 scales, got {n}"));
    }
    let xs: Vec<[f64; 3]> = samples.iter().map(|s| [s.io, s.cpu, s.comm]).collect();
    // Actuals floored at 1ns: a zero-time node must not produce an
    // infinite relative weight.
    let ys: Vec<f64> = samples.iter().map(|s| s.nanos.max(1.0)).collect();
    // Relative weights: w = 1/y² turns the absolute residual (pred − y)
    // into the relative one (pred − y)/y inside the least-squares sum.
    let ws: Vec<f64> = ys.iter().map(|y| 1.0 / (y * y)).collect();

    // Uniform baseline: one scale for the total, s0 = Σ w·t·y / Σ w·t².
    let (mut st2, mut sty) = (0.0, 0.0);
    for ((x, y), w) in xs.iter().zip(&ys).zip(&ws) {
        let t = x[0] + x[1] + x[2];
        st2 += w * t * t;
        sty += w * t * y;
    }
    if st2 <= 0.0 {
        return Err("all estimated costs are zero; nothing to fit".to_string());
    }
    let s0 = (sty / st2).max(f64::MIN_POSITIVE);
    let uniform_rms = rel_rms(&xs, &ys, [s0, s0, s0]);

    let mut notes = Vec::new();
    // Columns with no mass can't be identified from this workload.
    let active: [bool; 3] = std::array::from_fn(|j| xs.iter().any(|x| x[j].abs() > 1e-12));
    let names = ["io", "cpu", "comm"];
    for (j, name) in names.iter().enumerate() {
        if !active[j] {
            notes.push(format!(
                "component {name} absent from the workload; using the uniform scale {s0:.4}"
            ));
        }
    }

    // Candidate 1: relative least squares over the active columns
    // (weighted normal equations A·s = b).
    let mut a = [[0.0f64; 3]; 3];
    let mut b = [0.0f64; 3];
    for ((x, y), w) in xs.iter().zip(&ys).zip(&ws) {
        for i in 0..3 {
            b[i] += w * x[i] * y;
            for j in 0..3 {
                a[i][j] += w * x[i] * x[j];
            }
        }
    }
    let ls = match solve_active(a, b, active) {
        Some(sol) if (0..3).all(|j| !active[j] || (sol[j].is_finite() && sol[j] > 0.0)) => {
            // Reject solutions whose component *ratios* drift further than
            // the grid search is allowed to (16× spread): the calibrated
            // model re-plans the workload, and extreme ratios pick
            // degenerate plans outside the training distribution.
            let act: Vec<f64> = (0..3).filter(|&j| active[j]).map(|j| sol[j]).collect();
            let spread = act.iter().cloned().fold(f64::MIN, f64::max)
                / act.iter().cloned().fold(f64::MAX, f64::min);
            if spread > 16.0 {
                notes.push(format!(
                    "least-squares solution [{:.4}, {:.4}, {:.4}] has a {spread:.0}× component \
                     spread (collinear components); using the grid search instead",
                    sol[0], sol[1], sol[2]
                ));
                None
            } else {
                let mut s = [s0; 3];
                for j in 0..3 {
                    if active[j] {
                        s[j] = sol[j];
                    }
                }
                Some(s)
            }
        }
        Some(sol) => {
            notes.push(format!(
                "least-squares solution [{:.4}, {:.4}, {:.4}] has a non-positive scale \
                 (collinear components); using the grid search instead",
                sol[0], sol[1], sol[2]
            ));
            None
        }
        None => {
            notes.push(
                "normal equations singular (collinear components); using the grid search instead"
                    .to_string(),
            );
            None
        }
    };

    // Candidate 2: grid search over scale *ratios*, scored by the
    // geomean-normalized Q-error deviation the accuracy report will see.
    let grid = grid_search(&xs, &ys, active, s0);

    let scales = match ls {
        Some(s) => {
            let (ls_score, grid_score) = (q_score(&xs, &ys, s), q_score(&xs, &ys, grid));
            // Strict improvement only: the exact LS solution wins ties.
            if grid_score < ls_score - 1e-12 {
                notes.push(format!(
                    "grid search beat least squares on median q-error score ({grid_score:.4} vs {ls_score:.4})"
                ));
                grid
            } else {
                s
            }
        }
        None => grid,
    };

    let profile = CostCalibration {
        scale_io: scales[0],
        scale_cpu: scales[1],
        scale_comm: scales[2],
        samples: n as u64,
        residual_rms: rel_rms(&xs, &ys, scales),
    };
    Ok(CalibFit {
        profile,
        uniform_rms,
        notes,
    })
}

/// Q-error score of a candidate: deviations `dᵢ = ln(predᵢ) − ln(yᵢ)` are
/// centered by their mean (the geomean normalization the accuracy report
/// applies), then scored as `median(|d|) + 0.5·p90(|d|)` — the median is
/// the headline metric, the p90 term keeps the tail honest (the re-run
/// re-plans under the new weights, so an aggressive ratio that looks fine
/// on the fixed training plans can blow up the tail afterwards). 0 =
/// perfectly proportional estimates.
fn q_score(xs: &[[f64; 3]], ys: &[f64], s: [f64; 3]) -> f64 {
    let mut devs: Vec<f64> = xs
        .iter()
        .zip(ys)
        .map(|(x, y)| {
            let pred = (s[0] * x[0] + s[1] * x[1] + s[2] * x[2]).max(1e-12);
            (pred / y).ln()
        })
        .collect();
    let mean = devs.iter().sum::<f64>() / devs.len() as f64;
    for d in &mut devs {
        *d = (*d - mean).abs();
    }
    devs.sort_by(f64::total_cmp);
    let n = devs.len();
    let med = devs[n / 2];
    let p90 = devs[(9 * (n - 1)) / 10];
    med + 0.5 * p90
}

/// Walk scale ratios (cpu anchored at 1) over a coarse `2^(k/2)` grid,
/// then refine around the best point at quarter- and eighth-steps. Only
/// active non-anchor columns vary; the absolute level is set afterwards so
/// the predictions' geomean matches the actuals' (the score itself is
/// level-invariant). Deterministic, always positive.
fn grid_search(xs: &[[f64; 3]], ys: &[f64], active: [bool; 3], s0: f64) -> [f64; 3] {
    // Anchor on the first active column; grid the other active ones.
    let anchor = (0..3).find(|&j| active[j]).unwrap_or(1);
    let dims: Vec<usize> = (0..3).filter(|&j| active[j] && j != anchor).collect();

    let eval = |ratio: [f64; 3]| q_score(xs, ys, ratio);
    let mut best = [1.0f64; 3];
    let mut best_score = eval(best);

    // Coarse pass: every combination of 2^(k/2), k ∈ [-4, 4]. The range is
    // deliberately tight (component ratios within 4× of the anchor): the
    // calibrated model *re-plans* the workload, and extreme ratios (e.g.
    // near-free I/O) push the optimizer into degenerate plans the training
    // samples never saw, so an unconstrained training optimum transfers
    // badly to the re-run.
    const MAX_OCTAVES: f64 = 2.0;
    let coarse: Vec<f64> = (-4..=4).map(|k| (k as f64 / 2.0).exp2()).collect();
    let mut walk = vec![best];
    for &d in &dims {
        let mut next = Vec::new();
        for base in &walk {
            for &r in &coarse {
                let mut c = *base;
                c[d] = r;
                next.push(c);
            }
        }
        walk = next;
    }
    for c in walk {
        let sc = eval(c);
        if sc < best_score - 1e-12 {
            best_score = sc;
            best = c;
        }
    }

    // Refinement: quarter- then eighth-steps around the current best.
    for step in [0.25f64, 0.125] {
        let factors = [(-step).exp2(), 1.0, step.exp2()];
        let mut improved = true;
        while improved {
            improved = false;
            for &d in &dims {
                for f in factors {
                    let mut c = best;
                    c[d] = (c[d] * f).clamp((-MAX_OCTAVES).exp2(), MAX_OCTAVES.exp2());
                    let sc = eval(c);
                    if sc < best_score - 1e-12 {
                        best_score = sc;
                        best = c;
                        improved = true;
                    }
                }
            }
        }
    }

    // Pin the absolute level: geomean(pred) = geomean(actual).
    let offset: f64 = xs
        .iter()
        .zip(ys)
        .map(|(x, y)| {
            let pred = (best[0] * x[0] + best[1] * x[1] + best[2] * x[2]).max(1e-12);
            (y / pred).ln()
        })
        .sum::<f64>()
        / xs.len() as f64;
    let alpha = offset.exp();
    std::array::from_fn(|j| if active[j] { best[j] * alpha } else { s0 })
}

/// RMS of the relative residual `(pred − y) / y`; `ys` are pre-floored.
fn rel_rms(xs: &[[f64; 3]], ys: &[f64], s: [f64; 3]) -> f64 {
    let sq: f64 = xs
        .iter()
        .zip(ys)
        .map(|(x, y)| {
            let r = (s[0] * x[0] + s[1] * x[1] + s[2] * x[2] - y) / y;
            r * r
        })
        .sum();
    (sq / xs.len() as f64).sqrt()
}

/// Solve `A·x = b` restricted to the `active` rows/columns (Gaussian
/// elimination with partial pivoting); inactive slots come back as 0.
fn solve_active(a: [[f64; 3]; 3], b: [f64; 3], active: [bool; 3]) -> Option<[f64; 3]> {
    let idx: Vec<usize> = (0..3).filter(|&j| active[j]).collect();
    let k = idx.len();
    if k == 0 {
        return None;
    }
    // Build the reduced augmented matrix.
    let mut m = vec![vec![0.0f64; k + 1]; k];
    for (ri, &i) in idx.iter().enumerate() {
        for (ci, &j) in idx.iter().enumerate() {
            m[ri][ci] = a[i][j];
        }
        m[ri][k] = b[i];
    }
    // Forward elimination with partial pivoting.
    for col in 0..k {
        let pivot = (col..k).max_by(|&r1, &r2| m[r1][col].abs().total_cmp(&m[r2][col].abs()))?;
        if m[pivot][col].abs() < 1e-12 {
            return None;
        }
        m.swap(col, pivot);
        let prow = m[col].clone();
        for row in m.iter_mut().take(k).skip(col + 1) {
            let f = row[col] / prow[col];
            for (c, &pv) in prow.iter().enumerate().skip(col) {
                row[c] -= f * pv;
            }
        }
    }
    // Back substitution.
    let mut sol = vec![0.0f64; k];
    for row in (0..k).rev() {
        let mut v = m[row][k];
        for c in row + 1..k {
            v -= m[row][c] * sol[c];
        }
        sol[row] = v / m[row][row];
    }
    let mut full = [0.0f64; 3];
    for (ri, &j) in idx.iter().enumerate() {
        full[j] = sol[ri];
    }
    Some(full)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(io: f64, cpu: f64, comm: f64, nanos: f64) -> CalibSample {
        CalibSample {
            query: "q".into(),
            io,
            cpu,
            comm,
            nanos,
        }
    }

    /// Noise-free samples generated from known scales are recovered
    /// exactly (up to float error), with ~zero residual. The true scales
    /// stay within the 16× component-spread bound the fitter enforces on
    /// least-squares solutions (wider spreads fall back to the grid).
    #[test]
    fn recovers_known_scales_exactly() {
        let (si, sc, sm) = (3.0, 12.0, 0.8);
        let gen =
            |io: f64, cpu: f64, comm: f64| sample(io, cpu, comm, si * io + sc * cpu + sm * comm);
        let samples = vec![
            gen(10.0, 1.0, 0.0),
            gen(2.0, 8.0, 4.0),
            gen(0.0, 3.0, 9.0),
            gen(5.0, 5.0, 5.0),
            gen(1.0, 0.0, 2.0),
        ];
        let f = fit(&samples).unwrap();
        assert!((f.profile.scale_io - si).abs() < 1e-6, "{:?}", f.profile);
        assert!((f.profile.scale_cpu - sc).abs() < 1e-6, "{:?}", f.profile);
        assert!((f.profile.scale_comm - sm).abs() < 1e-6, "{:?}", f.profile);
        assert!(f.profile.residual_rms < 1e-6);
        assert_eq!(f.profile.samples, 5);
        // The per-component fit is at least as good as the uniform one.
        assert!(f.profile.residual_rms <= f.uniform_rms + 1e-9);
        assert!(f.notes.is_empty(), "{:?}", f.notes);
    }

    #[test]
    fn absent_component_falls_back_to_uniform_scale() {
        // No communication anywhere (a purely local workload).
        let samples = vec![
            sample(10.0, 1.0, 0.0, 35.0),
            sample(2.0, 8.0, 0.0, 46.0),
            sample(6.0, 3.0, 0.0, 33.0),
            sample(1.0, 9.0, 0.0, 48.0),
        ];
        let f = fit(&samples).unwrap();
        // io≈3, cpu≈5 solve the active 2×2 system exactly.
        assert!((f.profile.scale_io - 3.0).abs() < 1e-6, "{:?}", f.profile);
        assert!((f.profile.scale_cpu - 5.0).abs() < 1e-6, "{:?}", f.profile);
        assert!(f.profile.scale_comm > 0.0);
        assert!(f.notes.iter().any(|n| n.contains("comm")), "{:?}", f.notes);
    }

    #[test]
    fn too_few_or_empty_samples_error() {
        assert!(fit(&[]).is_err());
        assert!(fit(&[sample(1.0, 1.0, 1.0, 3.0)]).is_err());
        let zeros = vec![sample(0.0, 0.0, 0.0, 5.0); 4];
        assert!(fit(&zeros).is_err());
    }

    #[test]
    fn anticorrelated_component_falls_back_to_grid_search() {
        // cpu column fights the actuals hard enough to go negative in the
        // unconstrained LS solution; the grid search takes over and always
        // produces positive scales.
        let samples = vec![
            sample(1.0, 10.0, 0.0, 10.0),
            sample(2.0, 20.0, 0.0, 18.0),
            sample(10.0, 1.0, 0.0, 1000.0),
            sample(20.0, 2.0, 0.0, 2100.0),
        ];
        let f = fit(&samples).unwrap();
        assert!(f.profile.scale_io > 0.0);
        assert!(f.profile.scale_cpu > 0.0);
        assert!(
            f.notes.iter().any(|n| n.contains("grid search")),
            "{:?}",
            f.notes
        );
        // The profile must survive its own JSON round-trip (positivity is
        // enforced by the parser).
        let back = CostCalibration::from_json(&f.profile.to_json()).unwrap();
        assert_eq!(back, f.profile);
    }

    #[test]
    fn fit_render_mentions_scales_and_residual() {
        let samples = vec![
            sample(1.0, 2.0, 3.0, 20.0),
            sample(4.0, 5.0, 6.0, 47.0),
            sample(7.0, 8.0, 0.0, 55.0),
            sample(2.0, 2.0, 2.0, 18.0),
        ];
        let f = fit(&samples).unwrap();
        let text = f.render();
        assert!(text.contains("scale_io"), "{text}");
        assert!(text.contains("residual rms"), "{text}");
    }

    #[test]
    fn samples_come_from_every_joined_node_with_a_breakdown() {
        use starqo_trace::TraceEvent;
        let evs = vec![
            TraceEvent::QueryStart { name: "q1".into() },
            TraceEvent::PlanBuilt {
                op: "JOIN(NL)".into(),
                fp: 1,
                ref_id: 0,
                card: 10.0,
                cost_once: 9.0,
                cost_rescan: 1.0,
                breakdown: starqo_trace::CostBreakdownEv {
                    io: 4.0,
                    cpu: 3.0,
                    comm: 2.0,
                    other: 1.0,
                },
            },
            TraceEvent::PlanBuilt {
                op: "ACCESS(heap)".into(),
                fp: 2,
                ref_id: 1,
                card: 10.0,
                cost_once: 3.0,
                cost_rescan: 0.0,
                breakdown: starqo_trace::CostBreakdownEv {
                    io: 3.0,
                    cpu: 0.5,
                    comm: 0.0,
                    other: 0.0,
                },
            },
            TraceEvent::BestNode {
                op: "JOIN(NL)".into(),
                fp: 1,
                depth: 0,
                origin: "JMeth[alt 1]".into(),
                card: 10.0,
                cost: 10.0,
            },
            TraceEvent::BestNode {
                op: "ACCESS(heap)".into(),
                fp: 2,
                depth: 1,
                origin: "TblAccess[alt 1]".into(),
                card: 10.0,
                cost: 3.0,
            },
            TraceEvent::BestNode {
                op: "SORT".into(),
                fp: 3,
                depth: 1,
                origin: "Glue[alt 1]".into(),
                card: 10.0,
                cost: 5.0,
            },
            TraceEvent::ExecNode {
                op: "JOIN(NL)".into(),
                fp: 1,
                rows_out: 10,
                invocations: 1,
                nanos: 1_000,
            },
            TraceEvent::ExecNode {
                op: "ACCESS(heap)".into(),
                fp: 2,
                rows_out: 10,
                invocations: 1,
                nanos: 300,
            },
            TraceEvent::ExecNode {
                op: "SORT".into(),
                fp: 3,
                rows_out: 10,
                invocations: 1,
                nanos: 200,
            },
        ];
        let r = AccuracyReport::from_events(&evs);
        let s = samples(&r);
        // Both nodes with a `plan_built` breakdown contribute — root and
        // leaf alike ("other" folds into the cpu column); the SORT node
        // joined but never reported a breakdown, so it is skipped.
        assert_eq!(r.joined(), 3);
        assert_eq!(
            s,
            vec![
                CalibSample {
                    query: "q1".into(),
                    io: 4.0,
                    cpu: 4.0,
                    comm: 2.0,
                    nanos: 1_000.0,
                },
                CalibSample {
                    query: "q1".into(),
                    io: 3.0,
                    cpu: 0.5,
                    comm: 0.0,
                    nanos: 300.0,
                }
            ]
        );
    }
}

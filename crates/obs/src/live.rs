//! The live-telemetry dashboard: renders a [`TelemetrySnapshot`] (the
//! serving layer's always-on metrics plane) as a terminal report —
//! throughput, cache effectiveness, latency quantiles per path, and the
//! hot-query top-K. Point-in-time by default; hand it the delta of two
//! snapshots ([`TelemetrySnapshot::delta_since`]) and the same renderer
//! shows interval rates instead of lifetime totals.

use starqo_trace::{Histogram, TelemetrySnapshot};

use crate::fmt::fmt_nanos;

/// A renderable view over one snapshot (lifetime or interval).
#[derive(Debug, Clone)]
pub struct LiveReport {
    snapshot: TelemetrySnapshot,
    /// True when the snapshot is a delta between two points in time.
    interval: bool,
}

impl LiveReport {
    /// A lifetime (since-service-start) view.
    pub fn new(snapshot: TelemetrySnapshot) -> LiveReport {
        LiveReport {
            snapshot,
            interval: false,
        }
    }

    /// An interval view: `current` diffed against `previous`.
    pub fn since(current: &TelemetrySnapshot, previous: &TelemetrySnapshot) -> LiveReport {
        LiveReport {
            snapshot: current.delta_since(previous),
            interval: true,
        }
    }

    pub fn snapshot(&self) -> &TelemetrySnapshot {
        &self.snapshot
    }

    pub fn render(&self) -> String {
        let s = &self.snapshot;
        let c = |name: &str| s.counter(name).unwrap_or(0);
        let mut out = String::new();
        let window = if self.interval { "interval" } else { "uptime" };
        out.push_str(&format!(
            "== starqo live telemetry ==  ({window} {})\n\n",
            fmt_nanos(s.uptime_nanos)
        ));

        out.push_str("-- serving --\n");
        out.push_str(&format!(
            "  requests        {:>10}   ({:.1}/s)\n",
            c("serve_requests"),
            s.requests_per_sec()
        ));
        out.push_str(&format!(
            "  cache           {:>9.2}% hit   (hit {} + coalesced {} / miss {})\n",
            s.hit_ratio() * 100.0,
            c("serve_cache_hit"),
            c("serve_cache_coalesced"),
            c("serve_cache_miss")
        ));
        out.push_str(&format!(
            "  churn           evict {}   invalidate {}\n",
            c("serve_cache_evict"),
            c("serve_cache_invalidate")
        ));
        out.push_str(&format!(
            "  pressure        rejected {}   degraded {}   errors {}\n",
            c("serve_rejected"),
            c("serve_degraded"),
            c("serve_errors")
        ));
        out.push_str(&format!(
            "  execution       {} runs   {} rows   {} pipeline rows\n",
            c("serve_executions"),
            c("serve_exec_rows"),
            c("serve_pipeline_rows")
        ));
        if c("serve_feedback_runs") > 0 {
            out.push_str(&format!(
                "  feedback        {} runs folded   {} suspects flagged\n",
                c("serve_feedback_runs"),
                c("serve_suspects_flagged")
            ));
        }
        let (sampled, unsampled) = (c("serve_trace_sampled"), c("serve_trace_unsampled"));
        if sampled + unsampled > 0 {
            out.push_str(&format!(
                "  tracing         {sampled} sampled / {unsampled} suppressed\n"
            ));
        }
        let (kept, dropped) = (c("serve_spans_kept"), c("serve_spans_dropped"));
        if kept + dropped > 0 || s.span_capacity > 0 {
            out.push_str(&format!(
                "  spans           {kept} kept / {dropped} dropped   store {}/{} resident   {} evicted\n",
                s.span_resident, s.span_capacity, s.span_evicted
            ));
        }
        out.push_str(&format!(
            "  optimizer work  {} star refs   {} memo hits   {} plans built   {} glue refs\n",
            c("opt_star_refs"),
            c("opt_memo_hits"),
            c("opt_plans_built"),
            c("opt_glue_refs")
        ));

        // Vectorized-executor plane: present only once the service has
        // routed at least one request through (or away from) vexec.
        let vexec_active = c("vexec_morsels_queued") + c("vexec_rows") + c("vexec_fallbacks");
        if vexec_active > 0 {
            out.push_str("\n-- executor --\n");
            out.push_str(&format!(
                "  vectorized      {} batches   {} rows\n",
                c("vexec_batches"),
                c("vexec_rows")
            ));
            out.push_str(&format!(
                "  morsels         {} completed / {} queued   ({} in flight)\n",
                c("vexec_morsels"),
                c("vexec_morsels_queued"),
                c("vexec_morsels_queued").saturating_sub(c("vexec_morsels"))
            ));
            out.push_str(&format!(
                "  fallbacks       {} (unsupported plans served serially)\n",
                c("vexec_fallbacks")
            ));
        }

        out.push_str("\n-- latency --\n");
        out.push_str(&format!(
            "  {:<12} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9}\n",
            "path", "count", "p50", "p90", "p99", "p999", "max"
        ));
        for (path, h) in &s.latency {
            out.push_str(&format!(
                "  {:<12} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9}\n",
                path,
                h.count(),
                fmt_quantile(h, 0.5),
                fmt_quantile(h, 0.9),
                fmt_quantile(h, 0.99),
                fmt_quantile(h, 0.999),
                h.max().map(fmt_nanos).unwrap_or_else(|| "-".into())
            ));
        }

        if !s.phases.is_empty() {
            out.push_str("\n-- phases --\n");
            out.push_str(&format!(
                "  {:<12} {:>9} {:>10} {:>10}\n",
                "phase", "count", "total", "mean"
            ));
            for (name, nanos, count) in &s.phases {
                let mean = nanos.checked_div(*count).unwrap_or(0);
                out.push_str(&format!(
                    "  {:<12} {:>9} {:>10} {:>10}\n",
                    name,
                    count,
                    fmt_nanos(*nanos),
                    fmt_nanos(mean)
                ));
            }
        }

        out.push_str("\n-- hot queries --\n");
        if s.topk.is_empty() {
            out.push_str("  (none tracked)\n");
        } else {
            out.push_str(&format!(
                "  {:<4} {:<18} {:>8} {:>6} {:>10} {:>10} {:>6}\n",
                "#", "fingerprint", "count", "±err", "total", "mean", "epoch"
            ));
            let mut saturated = 0usize;
            for (rank, e) in s.topk.iter().enumerate() {
                let mean = e.nanos.checked_div(e.count).unwrap_or(0);
                // err is the space-saving overcount bound: once it reaches
                // half the count, the entry's rank is mostly recycling
                // noise, not real traffic.
                let sat = e.count > 0 && e.err >= e.count / 2;
                saturated += usize::from(sat);
                out.push_str(&format!(
                    "  {:<4} {:<18} {:>8} {:>6} {:>10} {:>10} {:>6}{}\n",
                    rank + 1,
                    format!("{:#018x}", e.fp),
                    e.count,
                    e.err,
                    fmt_nanos(e.nanos),
                    fmt_nanos(mean),
                    e.last_epoch,
                    if sat { "  !sat" } else { "" }
                ));
            }
            if saturated > 0 {
                out.push_str(&format!(
                    "  warning: {saturated} entries have overcount bound >= count/2 \
                     (tracker saturated; raise topk capacity)\n"
                ));
            }
        }

        out.push_str("\n-- plan quality --\n");
        if s.qerror.is_empty() {
            out.push_str("  (feedback plane empty)\n");
        } else {
            out.push_str(&format!(
                "  {:<18} {:>6} {:>9} {:>9} {:>10} {:>17} {:>9} {:>6}\n",
                "fingerprint", "runs", "geomeanQ", "maxQ", "est", "actual", "mean", "epoch"
            ));
            for e in &s.qerror {
                let fmt_q =
                    |q: Option<f64>| q.map(|v| format!("{v:.2}")).unwrap_or_else(|| "-".into());
                let actuals = if e.runs == 0 {
                    "-".to_string()
                } else if e.actual_min == e.actual_max {
                    e.actual_min.to_string()
                } else {
                    format!("{}..{}", e.actual_min, e.actual_max)
                };
                out.push_str(&format!(
                    "  {:<18} {:>6} {:>9} {:>9} {:>10} {:>17} {:>9} {:>6}{}\n",
                    format!("{:#018x}", e.fp),
                    e.runs,
                    fmt_q(e.geomean_q()),
                    fmt_q(e.max_q()),
                    e.est_rows,
                    actuals,
                    e.mean_nanos().map(fmt_nanos).unwrap_or_else(|| "-".into()),
                    e.last_epoch,
                    if e.suspect { "  SUSPECT" } else { "" }
                ));
            }
            let suspects = s.suspects().len();
            if suspects > 0 {
                out.push_str(&format!(
                    "  {suspects} suspect plan(s): observed Q-error/latency crossed the \
                     configured thresholds\n"
                ));
            }
        }

        let reopt_total = c("serve_reopt_attempts")
            + c("serve_reopt_backoff")
            + c("serve_plan_swap")
            + c("serve_plan_pinned");
        if reopt_total > 0 || !s.heal.is_empty() {
            out.push_str("\n-- serve heal --\n");
            out.push_str(&format!(
                "  reopt           {} attempts   {} failures   swap {} / pin {}\n",
                c("serve_reopt_attempts"),
                c("serve_reopt_failures"),
                c("serve_plan_swap"),
                c("serve_plan_pinned")
            ));
            out.push_str(&format!(
                "  backoff         {} suppressed   {} retry-capped\n",
                c("serve_reopt_backoff"),
                c("serve_reopt_retry_capped")
            ));
            if !s.heal.is_empty() {
                out.push_str(&format!(
                    "  {:<18} {:>6} {:>8} {:>6} {:>6} {:>8} {:<14}\n",
                    "fingerprint", "epoch", "attempts", "swaps", "pins", "backoff", "last"
                ));
                for h in &s.heal {
                    let state = if h.retry_capped {
                        "  CAPPED"
                    } else if h.backoff_until_nanos > 0 {
                        "  backing off"
                    } else {
                        ""
                    };
                    out.push_str(&format!(
                        "  {:<18} {:>6} {:>8} {:>6} {:>6} {:>8} {:<14}{}\n",
                        format!("{:#018x}", h.fp),
                        h.epoch,
                        h.attempts,
                        h.swaps,
                        h.pins,
                        h.backoff_hits,
                        if h.last_reason.is_empty() {
                            "-"
                        } else {
                            &h.last_reason
                        },
                        state
                    ));
                }
            }
        }
        out
    }
}

/// One latency quantile, humanized ("-" for an empty histogram).
fn fmt_quantile(h: &Histogram, q: f64) -> String {
    h.quantile(q).map(fmt_nanos).unwrap_or_else(|| "-".into())
}

/// A deterministic synthetic snapshot for smoke-testing the dashboard
/// pipeline (render + JSON + Prometheus) without a live service.
pub fn smoke_snapshot() -> TelemetrySnapshot {
    use starqo_trace::{FeedbackPlane, HotQuery, SuspectConfig};
    let mut optimize = Histogram::new();
    let mut cache_hit = Histogram::new();
    let mut execute = Histogram::new();
    let mut end_to_end = Histogram::new();
    for i in 0..200u64 {
        // A few cold optimizations, many cheap warm serves.
        if i % 50 == 0 {
            optimize.record(2_000_000 + i * 10_000);
            end_to_end.record(2_100_000 + i * 10_000);
        } else {
            cache_hit.record(2_000 + (i % 7) * 300);
            end_to_end.record(2_500 + (i % 7) * 300);
        }
        execute.record(40_000 + (i % 11) * 1_000);
    }
    TelemetrySnapshot {
        uptime_nanos: 2_000_000_000,
        counters: vec![
            ("serve_requests".into(), 200),
            ("serve_cache_hit".into(), 196),
            ("serve_cache_coalesced".into(), 0),
            ("serve_cache_miss".into(), 4),
            ("serve_cache_evict".into(), 0),
            ("serve_cache_invalidate".into(), 0),
            ("serve_rejected".into(), 0),
            ("serve_degraded".into(), 0),
            ("serve_errors".into(), 0),
            ("serve_executions".into(), 200),
            ("serve_exec_rows".into(), 1_600),
            ("serve_trace_sampled".into(), 3),
            ("serve_trace_unsampled".into(), 197),
            ("opt_star_refs".into(), 56),
            ("opt_memo_hits".into(), 24),
            ("opt_plans_built".into(), 180),
            ("opt_glue_refs".into(), 32),
            ("serve_opt_nanos".into(), 8_600_000),
            ("serve_saved_nanos".into(), 420_000_000),
            ("serve_exec_nanos".into(), 9_000_000),
            ("serve_pipeline_rows".into(), 2_400),
            ("serve_feedback_runs".into(), 200),
            ("serve_suspects_flagged".into(), 1),
            ("serve_spans_kept".into(), 6),
            ("serve_spans_dropped".into(), 194),
            ("serve_reopt_attempts".into(), 3),
            ("serve_reopt_failures".into(), 1),
            ("serve_reopt_backoff".into(), 2),
            ("serve_reopt_retry_capped".into(), 0),
            ("serve_plan_swap".into(), 1),
            ("serve_plan_pinned".into(), 2),
            ("vexec_batches".into(), 240),
            ("vexec_morsels_queued".into(), 62),
            ("vexec_morsels".into(), 60),
            ("vexec_rows".into(), 1_550),
            ("vexec_fallbacks".into(), 5),
        ],
        phases: vec![
            ("prepare".into(), 400_000, 200),
            ("cache_lookup".into(), 600_000, 196),
            ("enumerate".into(), 7_200_000, 4),
            ("glue".into(), 900_000, 4),
            ("compile".into(), 300_000, 4),
            ("execute".into(), 9_000_000, 200),
        ],
        span_resident: 6,
        span_capacity: 64,
        span_evicted: 0,
        latency: vec![
            ("optimize".into(), optimize),
            ("cache_hit".into(), cache_hit),
            ("execute".into(), execute),
            ("end_to_end".into(), end_to_end),
        ],
        topk: vec![
            HotQuery {
                fp: 0xA11CE,
                count: 120,
                err: 0,
                nanos: 360_000,
                last_epoch: 1,
            },
            HotQuery {
                fp: 0xB0B,
                count: 80,
                err: 45,
                nanos: 250_000,
                last_epoch: 1,
            },
        ],
        qerror: {
            // A drifted fingerprint (flags suspect) and an accurate one,
            // folded through the real plane so the smoke snapshot stays
            // honest about the sketch invariants.
            let plane = FeedbackPlane::new(
                1,
                4,
                SuspectConfig {
                    min_runs: 4,
                    ..SuspectConfig::default()
                },
            );
            for i in 0..8u64 {
                plane.record(0xA11CE, 20, 320, 40_000 + i * 1_000, 1);
                plane.record(0xB0B, 64, 64, 45_000 + i * 1_000, 1);
            }
            plane.snapshot()
        },
        heal: vec![starqo_trace::HealRecord {
            fp: 0xA11CE,
            epoch: 1,
            attempts: 0,
            swaps: 1,
            pins: 2,
            backoff_hits: 2,
            retry_capped: false,
            last_reason: "swapped".into(),
            backoff_until_nanos: 0,
        }],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_every_section_with_real_quantiles() {
        let report = LiveReport::new(smoke_snapshot());
        let text = report.render();
        assert!(text.contains("== starqo live telemetry =="));
        // 200 requests over the 2s uptime.
        assert!(text.contains("(100.0/s)"), "{text}");
        assert!(text.contains("98.00% hit"));
        assert!(text.contains("-- latency --"));
        for path in ["optimize", "cache_hit", "execute", "end_to_end"] {
            assert!(text.contains(path), "missing path {path}");
        }
        assert!(text.contains("-- hot queries --"));
        assert!(text.contains("0x00000000000a11ce"));
        // Span retention + cold-path phase attribution sections.
        assert!(text.contains("6 kept / 194 dropped"), "{text}");
        assert!(text.contains("store 6/64 resident"), "{text}");
        assert!(text.contains("-- phases --"), "{text}");
        assert!(text.contains("cache_lookup"), "{text}");
        // Vectorized-executor plane: batch/morsel tallies, in-flight gauge
        // (queued - completed), and the serial-fallback count.
        assert!(text.contains("-- executor --"), "{text}");
        assert!(text.contains("240 batches   1550 rows"), "{text}");
        assert!(
            text.contains("60 completed / 62 queued   (2 in flight)"),
            "{text}"
        );
        assert!(text.contains("fallbacks       5"), "{text}");
        // Quantiles are real values, not placeholders, for non-empty paths.
        let latency_line = text
            .lines()
            .find(|l| l.trim_start().starts_with("end_to_end"))
            .expect("end_to_end row");
        assert!(!latency_line.contains('-'), "dash in {latency_line}");
        // Satellite sections: feedback counters, the saturation warning on
        // the 0xB0B entry (err 45 >= 80/2), and the plan-quality table.
        assert!(text.contains("200 runs folded   1 suspects flagged"));
        assert!(text.contains("!sat"), "{text}");
        assert!(text.contains("overcount bound >= count/2"));
        assert!(text.contains("-- plan quality --"));
        assert!(text.contains("SUSPECT"));
        assert!(text.contains("1 suspect plan(s)"));
        // The drifted sketch: est 20 vs actual 320 is Q = 16.
        let drifted = text
            .lines()
            .find(|l| l.contains("0x00000000000a11ce") && l.contains("SUSPECT"))
            .expect("drifted plan row");
        assert!(drifted.contains("16.00"), "{drifted}");
        // The self-healing section: counters plus the per-fingerprint table.
        assert!(text.contains("-- serve heal --"), "{text}");
        assert!(text.contains("3 attempts   1 failures   swap 1 / pin 2"));
        assert!(text.contains("2 suppressed   0 retry-capped"));
        let heal_row = text
            .lines()
            .find(|l| l.contains("0x00000000000a11ce") && l.contains("swapped"))
            .expect("heal record row");
        assert!(heal_row.contains("swapped"), "{heal_row}");
    }

    #[test]
    fn interval_view_renders_rates_over_the_window() {
        let later = smoke_snapshot();
        let mut earlier = smoke_snapshot();
        earlier.uptime_nanos = 1_000_000_000;
        earlier.counters = vec![("serve_requests".into(), 150)];
        let report = LiveReport::since(&later, &earlier);
        let text = report.render();
        assert!(text.contains("interval 1.00s"));
        // 200 - 150 = 50 requests over the 1s interval.
        assert!(text.contains("(50.0/s)"), "{text}");
    }

    #[test]
    fn smoke_snapshot_roundtrips_through_both_exporters() {
        let snap = smoke_snapshot();
        let parsed = TelemetrySnapshot::from_json(&snap.to_json()).expect("json");
        assert_eq!(parsed, snap);
        let prom = snap.to_prometheus();
        assert!(prom.contains("starqo_serve_requests_total 200"));
        assert!(prom.contains("quantile=\"0.999\""));
    }
}

//! `starqo-obs spans` / `timeline`: render retained request span trees —
//! the tail sampler's slow/errored/degraded/suspect survivors — as a
//! slowest-N table and a per-request waterfall. Input is the span JSONL a
//! service or bench exports ([`starqo_trace::read_span_trees`]); output is
//! for terminals, with a lossless Chrome `trace_event` export alongside
//! for `chrome://tracing` / Perfetto.

use std::fmt::Write as _;

use starqo_trace::{SpanRecord, SpanTree};

use crate::fmt::fmt_nanos;

/// Width of the waterfall bar column, in cells.
const BAR_CELLS: usize = 40;

/// A renderable view over a set of retained span trees.
#[derive(Debug, Clone)]
pub struct SpanReport {
    trees: Vec<SpanTree>,
}

impl SpanReport {
    /// Wrap a tree set, slowest request first (display order for the
    /// table; `tree(id)` still finds any request by id).
    pub fn new(mut trees: Vec<SpanTree>) -> SpanReport {
        trees.sort_by(|a, b| {
            b.total_nanos
                .cmp(&a.total_nanos)
                .then(a.request_id.cmp(&b.request_id))
        });
        SpanReport { trees }
    }

    pub fn trees(&self) -> &[SpanTree] {
        &self.trees
    }

    pub fn is_empty(&self) -> bool {
        self.trees.is_empty()
    }

    /// The tree for one request id, if retained.
    pub fn tree(&self, request_id: u64) -> Option<&SpanTree> {
        self.trees.iter().find(|t| t.request_id == request_id)
    }

    /// The slowest-N table: one row per retained request, slowest first.
    pub fn render_table(&self, limit: usize) -> String {
        let mut out = String::from("== starqo spans ==\n");
        if self.trees.is_empty() {
            out.push_str("  (no retained span trees)\n");
            return out;
        }
        let _ = writeln!(
            out,
            "  {:<8} {:<18} {:>10} {:<9} {:<9} {:>6} {:>7}",
            "request", "fingerprint", "total", "outcome", "retained", "spans", "flags"
        );
        for t in self.trees.iter().take(limit.max(1)) {
            let mut flags = String::new();
            if t.degraded {
                flags.push('D');
            }
            if t.suspect {
                flags.push('S');
            }
            if t.dropped > 0 {
                let _ = write!(flags, "!{}", t.dropped);
            }
            let _ = writeln!(
                out,
                "  {:<8} {:<18} {:>10} {:<9} {:<9} {:>6} {:>7}",
                t.request_id,
                format!("{:#018x}", t.fp),
                fmt_nanos(t.total_nanos),
                t.outcome,
                t.retained,
                t.spans.len(),
                flags
            );
        }
        if self.trees.len() > limit {
            let _ = writeln!(out, "  ({} more not shown)", self.trees.len() - limit);
        }
        out
    }

    /// The waterfall for one request: spans in start order, indented by
    /// tree depth, with bars scaled to the request's total duration.
    pub fn render_waterfall(&self, request_id: u64) -> Option<String> {
        let tree = self.tree(request_id)?;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "== request {} ==  fp {:#018x}  epoch {}  {}  retained: {}{}{}",
            tree.request_id,
            tree.fp,
            tree.epoch,
            tree.outcome,
            tree.retained,
            if tree.degraded { "  DEGRADED" } else { "" },
            if tree.suspect { "  SUSPECT" } else { "" },
        );
        let _ = writeln!(out, "  total {}", fmt_nanos(tree.total_nanos));
        // Bars scale to the request total, so a span's share of the
        // request is its share of the row.
        let total = tree.total_nanos.max(1);
        for span in tree.ordered() {
            let depth = tree.depth_of(span);
            let dur = span.end_nanos.saturating_sub(span.start_nanos);
            let lead = ((span.start_nanos as u128 * BAR_CELLS as u128) / total as u128) as usize;
            let fill = (dur as u128 * BAR_CELLS as u128).div_ceil(total as u128) as usize;
            let lead = lead.min(BAR_CELLS - 1);
            let fill = fill.clamp(1, BAR_CELLS - lead);
            let bar: String = std::iter::repeat_n(' ', lead)
                .chain(std::iter::repeat_n('█', fill))
                .chain(std::iter::repeat_n(' ', BAR_CELLS - lead - fill))
                .collect();
            let label = format!("{}{}", "  ".repeat(depth), span.name);
            let meta = if span.meta != 0 {
                format!("  [{}]", span.meta)
            } else {
                String::new()
            };
            let _ = writeln!(
                out,
                "  {label:<28} |{bar}| {:>10} @ {:>10}{meta}",
                fmt_nanos(dur),
                fmt_nanos(span.start_nanos),
            );
        }
        if tree.dropped > 0 {
            let _ = writeln!(
                out,
                "  ({} span(s) dropped at the per-request cap)",
                tree.dropped
            );
        }
        Some(out)
    }
}

/// Deterministic synthetic trees for smoke-testing the spans pipeline
/// (table + waterfall + Chrome export) without a live service: a slow cold
/// request with nested optimizer spans and a fast suspect hit.
pub fn smoke_trees() -> Vec<SpanTree> {
    let span = |id: u32, parent: u32, name: &str, start: u64, end: u64, meta: u64| SpanRecord {
        id,
        parent,
        name: name.to_string().into(),
        start_nanos: start,
        end_nanos: end,
        meta,
    };
    vec![
        SpanTree {
            request_id: 7,
            fp: 0xA11CE,
            epoch: 1,
            total_nanos: 2_600_000,
            outcome: "miss".to_string(),
            degraded: false,
            suspect: false,
            retained: "slow".to_string(),
            spans: vec![
                span(2, 1, "prepare", 2_000, 42_000, 0),
                span(5, 4, "enumerate", 130_000, 1_890_000, 0),
                span(6, 5, "star:Join", 150_000, 900_000, 3),
                span(7, 5, "star:AccessRoot", 910_000, 1_400_000, 5),
                span(8, 5, "glue", 1_410_000, 1_800_000, 0),
                span(4, 3, "optimize", 120_000, 1_950_000, 0),
                span(3, 1, "cache_lookup", 60_000, 2_000_000, 0),
                span(9, 1, "execute", 2_050_000, 2_540_000, 0),
                span(10, 9, "pipeline:join", 2_060_000, 2_500_000, 160),
                span(1, 0, "request", 0, 2_600_000, 0),
            ],
            dropped: 0,
        },
        SpanTree {
            request_id: 9,
            fp: 0xB0B,
            epoch: 1,
            total_nanos: 9_000,
            outcome: "hit".to_string(),
            degraded: false,
            suspect: true,
            retained: "suspect".to_string(),
            spans: vec![
                span(2, 1, "prepare", 500, 1_500, 0),
                span(3, 1, "cache_lookup", 2_000, 5_000, 0),
                span(4, 1, "execute", 5_500, 8_600, 0),
                span(5, 4, "pipeline:scan", 5_600, 8_500, 64),
                span(1, 0, "request", 0, 9_000, 0),
            ],
            dropped: 0,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_sorts_slowest_first_and_flags_suspects() {
        let r = SpanReport::new(smoke_trees());
        let text = r.render_table(10);
        let slow = text.find("  7 ").expect("slow request row");
        let fast = text.find("  9 ").expect("suspect request row");
        assert!(slow < fast, "slowest first:\n{text}");
        assert!(text.contains("slow"), "{text}");
        assert!(text.contains("suspect"), "{text}");
        let suspect_row = text.lines().find(|l| l.contains(" 9 ")).unwrap();
        assert!(suspect_row.trim_end().ends_with('S'), "{suspect_row}");
    }

    #[test]
    fn table_truncates_and_reports_hidden_rows() {
        let r = SpanReport::new(smoke_trees());
        let text = r.render_table(1);
        assert!(text.contains("(1 more not shown)"), "{text}");
    }

    #[test]
    fn waterfall_indents_by_depth_and_scales_bars() {
        let r = SpanReport::new(smoke_trees());
        let text = r.render_waterfall(7).expect("tree 7");
        assert!(text.contains("== request 7 =="), "{text}");
        // Depth grows request → cache_lookup → optimize → enumerate →
        // star:Join; meta carries the shared star_ref id.
        assert!(text.contains("        star:Join"), "{text}");
        assert!(text.contains("[3]"), "{text}");
        // The root bar spans the full request.
        let root = text
            .lines()
            .find(|l| l.trim_start().starts_with("request"))
            .unwrap();
        assert!(root.contains(&"█".repeat(BAR_CELLS)), "{root}");
        assert!(r.render_waterfall(999).is_none());
    }

    #[test]
    fn empty_report_renders_placeholder() {
        let r = SpanReport::new(Vec::new());
        assert!(r.is_empty());
        assert!(r.render_table(5).contains("no retained span trees"));
    }

    #[test]
    fn smoke_trees_survive_json_and_chrome_round_trips() {
        use starqo_trace::{from_chrome_trace, read_span_trees, to_chrome_trace};
        let trees = smoke_trees();
        let jsonl: String = trees.iter().map(|t| t.to_json() + "\n").collect();
        let (back, skipped) = read_span_trees(&jsonl);
        assert_eq!(skipped, 0);
        assert_eq!(back, trees);
        let chrome = to_chrome_trace(&trees);
        let back = from_chrome_trace(&chrome).expect("chrome parse");
        assert_eq!(back, trees);
    }
}

//! Shadow execution: run a plan off the serving path, with no telemetry
//! plane attached, and return both the rows and the executor's simulated
//! resource counters.
//!
//! The self-healing loop in `starqo-serve` uses this twice per candidate:
//! once to *verify* (the candidate's rows must bit-match the incumbent's —
//! the same multiset oracle experiment E13 uses) and then repeatedly to
//! *measure* the probation A/B. Keeping telemetry off matters: shadow runs
//! are the healer's private experiments and must not fold into the
//! feedback plane, or they would perturb the very drift signal that
//! triggered them.

use starqo_plan::PlanRef;
use starqo_query::Query;
use starqo_storage::Database;

use crate::error::Result;
use crate::eval::{ExecStats, Executor};
use crate::result::QueryResult;

/// Execute `plan` for `query` against `db` in a fresh, unobserved
/// executor. Returns the projected result and the run's resource counters.
pub fn shadow_run(
    db: &Database,
    query: &Query,
    plan: &PlanRef,
) -> Result<(QueryResult, ExecStats)> {
    let mut ex = Executor::new(db, query);
    let rows = ex.run(plan)?;
    let stats = *ex.stats();
    Ok((rows, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    use starqo_catalog::{Catalog, ColId, DataType, StorageKind, Value};
    use starqo_plan::{AccessSpec, CostModel, Lolepop, PropCtx, PropEngine};
    use starqo_query::{parse_query, PredSet, QCol, QId};
    use starqo_storage::DatabaseBuilder;

    #[test]
    fn shadow_run_returns_rows_and_nonzero_work() {
        let cat = Arc::new(
            Catalog::builder()
                .site("NY")
                .table("T", "NY", StorageKind::Heap, 4)
                .column("A", DataType::Int, Some(4))
                .build()
                .unwrap(),
        );
        let mut b = DatabaseBuilder::new(Arc::clone(&cat));
        for i in 0..4i64 {
            b.insert("T", vec![Value::Int(i)]).unwrap();
        }
        let db = b.build().unwrap();
        let q = parse_query(&cat, "SELECT A FROM T").unwrap();
        let model = CostModel::default();
        let ctx = PropCtx::new(db.catalog(), &q, &model);
        let plan = PropEngine::new()
            .build(
                Lolepop::Access {
                    spec: AccessSpec::HeapTable(QId(0)),
                    cols: [QCol::new(QId(0), ColId(0))].into_iter().collect(),
                    preds: PredSet::default(),
                },
                vec![],
                &ctx,
            )
            .unwrap();
        let (rows, stats) = shadow_run(&db, &q, &plan).unwrap();
        assert_eq!(rows.rows.len(), 4);
        assert!(stats.pages_read > 0, "a heap scan reads pages");
    }
}

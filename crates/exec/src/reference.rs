//! A deliberately naive reference evaluator.
//!
//! Computes the query's answer by brute force — Cartesian product of all
//! base tables, filter by every predicate, project — with no optimizer
//! involvement at all. Every plan the optimizer emits must agree with this
//! (experiment E13's oracle).

use starqo_query::{QCol, Query};
use starqo_storage::{Database, Tuple};

use crate::error::Result;
use crate::scalar::{eval_preds, Bindings, RowView};

/// Evaluate the query by brute force, returning rows projected on the
/// query's select list (or all columns of all quantifiers for `SELECT *`).
pub fn reference_eval(db: &Database, query: &Query) -> Result<Vec<Tuple>> {
    // Full concatenated schema: all columns of all quantifiers, in
    // (quantifier, column) order.
    let mut schema: Vec<QCol> = Vec::new();
    for qt in &query.quantifiers {
        let t = db.catalog().table(qt.table);
        for c in 0..t.columns.len() as u32 {
            schema.push(QCol::new(qt.id, starqo_catalog::ColId(c)));
        }
    }
    let select: Vec<QCol> = if query.select.is_empty() {
        schema.clone()
    } else {
        query.select.clone()
    };

    let mut out = Vec::new();
    let mut current: Vec<starqo_catalog::Value> = Vec::new();
    cartesian(db, query, 0, &schema, &select, &mut current, &mut out)?;
    Ok(out)
}

fn cartesian(
    db: &Database,
    query: &Query,
    qi: usize,
    schema: &[QCol],
    select: &[QCol],
    current: &mut Vec<starqo_catalog::Value>,
    out: &mut Vec<Tuple>,
) -> Result<()> {
    if qi == query.quantifiers.len() {
        let row = Tuple(current.clone());
        let bindings = Bindings::new();
        let view = RowView {
            schema,
            row: &row,
            bindings: &bindings,
        };
        if eval_preds(query, query.all_preds(), &view)? {
            let projected = select
                .iter()
                .map(|c| {
                    let pos = schema
                        .iter()
                        .position(|s| s == c)
                        .expect("select col in schema");
                    row.get(pos).clone()
                })
                .collect();
            out.push(Tuple(projected));
        }
        return Ok(());
    }
    let qt = &query.quantifiers[qi];
    let stored = db.table(qt.table)?;
    let ncols = db.catalog().table(qt.table).columns.len();
    for (_, r) in stored.scan() {
        for c in 0..ncols {
            current.push(r.get(c).clone());
        }
        cartesian(db, query, qi + 1, schema, select, current, out)?;
        current.truncate(current.len() - ncols);
    }
    Ok(())
}

//! Evaluator errors.

use std::fmt;

#[derive(Debug, Clone)]
pub enum ExecError {
    Storage(starqo_storage::StorageError),
    /// A column referenced at run time is neither in the stream schema nor
    /// bound by an enclosing nested-loop join.
    UnboundColumn(String),
    /// A plan shape the evaluator cannot run (should have been rejected by
    /// the property functions).
    BadPlan(String),
    /// Extension operator with no registered execution routine.
    UnknownExtOp(String),
    /// An operator (or extension routine) panicked; the panic was caught at
    /// the executor boundary and surfaced as a typed error.
    Panicked(String),
    /// An armed fault-injection hook fired for this operator (robustness
    /// testing only; never produced in production).
    Injected(String),
}

pub type Result<T> = std::result::Result<T, ExecError>;

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::Storage(e) => write!(f, "storage error: {e}"),
            ExecError::UnboundColumn(c) => write!(f, "unbound column {c}"),
            ExecError::BadPlan(msg) => write!(f, "unexecutable plan: {msg}"),
            ExecError::UnknownExtOp(n) => {
                write!(f, "no execution routine registered for extension op {n}")
            }
            ExecError::Panicked(msg) => write!(f, "panic during execution: {msg}"),
            ExecError::Injected(msg) => write!(f, "injected fault: {msg}"),
        }
    }
}

impl std::error::Error for ExecError {}

impl From<starqo_storage::StorageError> for ExecError {
    fn from(e: starqo_storage::StorageError) -> Self {
        ExecError::Storage(e)
    }
}

//! The recursive plan evaluator.
//!
//! The evaluator materializes each operator's output. Correlation-free
//! subtrees under `STORE` / `SORT` / `BUILD_INDEX` are cached by node
//! identity, so a temp feeding a nested-loop inner is materialized exactly
//! once — the property the paper's §4.5.2 STAR is careful to guarantee
//! ("prevent the temp from being re-materialized for each outer tuple").
//! Streams carrying pushed-down join predicates *are* re-evaluated per outer
//! tuple, which is precisely nested-loop semantics.

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;
use std::time::Instant;

use starqo_catalog::{Value, TID_COL};
use starqo_plan::{AccessSpec, JoinFlavor, Lolepop, PlanNode, PlanRef};
use starqo_query::{Classifier, CmpOp, PredSet, QCol, QId, Query, Scalar};
use starqo_storage::{Database, Tid, Tuple, ROWS_PER_PAGE};
// Shared with the vectorized executor (`starqo-vexec`), which must agree
// with this interpreter to the bit.
use crate::support::{bound_prefix as support_bound_prefix, panic_msg, value_bytes};
use starqo_trace::{
    LatencyPath, Metric, NodeActuals, SpanContext, SpanGuard, Telemetry, TraceEvent, Tracer,
};

use crate::error::{ExecError, Result};
use crate::result::{project_rows, QueryResult};
use crate::scalar::{eval_preds, eval_scalar, Bindings, RowView};
use crate::schema::{cols_schema, position, schema_of, StreamSchema};

/// A lazily built in-memory index over a cached temp: key values → row
/// numbers within the cached materialization.
type TempIndex = Arc<BTreeMap<Vec<Value>, Vec<usize>>>;

/// Simulated resource counters, mirroring the cost model's components.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Heap/index pages scanned.
    pub pages_read: u64,
    /// Individual tuple fetches performed by `GET`.
    pub tuples_fetched: u64,
    /// Messages sent by `SHIP`.
    pub msgs: u64,
    /// Bytes shipped.
    pub bytes_shipped: u64,
    /// Temp materializations performed (cache misses).
    pub temps_built: u64,
    /// Dynamic indexes built.
    pub indexes_built: u64,
    /// Index probes.
    pub probes: u64,
    /// Rows produced by the root operator.
    pub rows_out: u64,
    /// Rows crossing pipeline breakers: each correlation-free temp
    /// materialization plus the root pipeline's output. The compact
    /// per-run actual the feedback plane folds even when tracing is
    /// suppressed.
    pub pipeline_rows: u64,
}

/// Execution routine for an extension LOLEPOP (§5): receives each input's
/// (schema, rows), the output schema, and must produce output rows.
pub type ExtExecFn = Arc<
    dyn Fn(&Query, &Lolepop, &[(StreamSchema, Vec<Tuple>)], &StreamSchema) -> Result<Vec<Tuple>>
        + Send
        + Sync,
>;

/// A fault-injection hook, consulted once per operator evaluation with the
/// operator's display name (robustness testing; see `starqo-core`'s `faults`
/// module). Returning `Some(msg)` surfaces [`ExecError::Injected`]; the hook
/// may also panic (contained by [`Executor::run`]) or stall before returning
/// `None`.
pub type FaultHook = Arc<dyn Fn(&str) -> Option<String> + Send + Sync>;

/// The plan evaluator for one database.
pub struct Executor<'a> {
    db: &'a Database,
    query: &'a Query,
    ext: HashMap<String, ExtExecFn>,
    stats: ExecStats,
    /// Materialization cache for correlation-free STORE/SORT subtrees.
    temp_cache: HashMap<usize, Arc<Vec<Tuple>>>,
    /// Dynamic index cache: (store node, key) → key-values → row numbers.
    index_cache: HashMap<(usize, Vec<QCol>), TempIndex>,
    /// Structured event sink for per-node run-time measurements.
    tracer: Tracer,
    /// When set, per-node actuals are collected (timing each `eval` call).
    collect: bool,
    /// Actuals per node fingerprint; filled only when `collect` is on.
    node_stats: HashMap<u64, NodeActuals>,
    /// Armed fault-injection hook; `None` in production.
    fault_hook: Option<FaultHook>,
    /// Live metrics plane; when attached, [`Self::run`] records
    /// executions, rows out, wall nanos, and the execute-latency histogram.
    telemetry: Option<Arc<Telemetry>>,
    /// Request-scoped span recorder; when live, the root pipeline and
    /// every STORE materialization (pipeline breakers) record spans.
    spans: SpanContext,
}

impl<'a> Executor<'a> {
    pub fn new(db: &'a Database, query: &'a Query) -> Self {
        Executor {
            db,
            query,
            ext: HashMap::new(),
            stats: ExecStats::default(),
            temp_cache: HashMap::new(),
            index_cache: HashMap::new(),
            tracer: Tracer::off(),
            collect: false,
            node_stats: HashMap::new(),
            fault_hook: None,
            telemetry: None,
            spans: SpanContext::off(),
        }
    }

    /// Arm a fault-injection hook, consulted at every operator evaluation.
    pub fn set_fault_hook(&mut self, hook: FaultHook) {
        self.fault_hook = Some(hook);
    }

    /// Attach a tracer. Also turns on per-node actuals collection so
    /// `exec_node` events can be emitted when a plan finishes.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.collect = self.collect || tracer.enabled();
        self.tracer = tracer;
    }

    /// Collect per-node actuals (invocations, rows, wall time) even without
    /// a trace sink — what `explain_analyze` consumes.
    pub fn enable_node_stats(&mut self) {
        self.collect = true;
    }

    /// Attach the live telemetry plane: each successful [`Self::run`]
    /// records one execution (count, rows out, wall nanos) in the counter
    /// plane and the `execute` latency histogram. Counter cost only —
    /// per-node actuals stay off unless a tracer asks for them.
    pub fn set_telemetry(&mut self, telemetry: Arc<Telemetry>) {
        self.telemetry = Some(telemetry);
    }

    /// Attach a request's span recorder (root pipeline + STORE
    /// materialization spans).
    pub fn set_spans(&mut self, spans: SpanContext) {
        self.spans = spans;
    }

    /// Actuals per plan-node fingerprint gathered so far.
    pub fn node_actuals(&self) -> &HashMap<u64, NodeActuals> {
        &self.node_stats
    }

    /// Register the run-time routine for an extension LOLEPOP.
    pub fn register_ext(&mut self, name: &str, f: ExtExecFn) {
        self.ext.insert(name.to_string(), f);
    }

    pub fn stats(&self) -> &ExecStats {
        &self.stats
    }

    /// Execute a plan and project onto the query's select list (or the
    /// plan's full schema when the query selects `*`).
    ///
    /// Panics anywhere below the root (operators, extension routines,
    /// injected faults) are caught here and surfaced as
    /// [`ExecError::Panicked`] — never a process abort.
    pub fn run(&mut self, plan: &PlanRef) -> Result<QueryResult> {
        let started = Instant::now();
        // The root pipeline's span (`meta` = rows out); STORE subtrees
        // record their own `pipeline:store` children as they materialize.
        let mut pipeline_span = if self.spans.enabled() {
            self.spans.enter(format!("pipeline:{}", plan.op.name()))
        } else {
            SpanGuard::noop()
        };
        let out =
            match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| self.run_inner(plan))) {
                Ok(r) => r,
                Err(payload) => Err(ExecError::Panicked(panic_msg(payload))),
            };
        if let Ok(result) = &out {
            pipeline_span.set_meta(result.rows.len() as u64);
        }
        drop(pipeline_span);
        if let (Some(t), Ok(result)) = (&self.telemetry, &out) {
            let nanos = started.elapsed().as_nanos() as u64;
            t.add(Metric::Executions, 1);
            t.add(Metric::ExecRows, result.rows.len() as u64);
            t.add(Metric::ExecNanos, nanos);
            t.add(Metric::PipelineRows, self.stats.pipeline_rows);
            t.observe(LatencyPath::Execute, nanos);
        }
        out
    }

    fn run_inner(&mut self, plan: &PlanRef) -> Result<QueryResult> {
        let bindings = Bindings::new();
        let rows = self.eval(plan, &bindings)?;
        self.stats.rows_out = rows.len() as u64;
        self.stats.pipeline_rows += rows.len() as u64;
        self.emit_node_events(plan);
        let schema = schema_of(plan);
        if self.query.select.is_empty() {
            return Ok(QueryResult { schema, rows });
        }
        let want = self.query.select.clone();
        let projected = project_rows(&schema, &rows, &want)?;
        Ok(QueryResult {
            schema: want,
            rows: projected,
        })
    }

    /// Evaluate one node under the given outer bindings.
    pub fn eval(&mut self, node: &PlanNode, bindings: &Bindings) -> Result<Vec<Tuple>> {
        if !self.collect {
            return self.eval_inner(node, bindings);
        }
        // Inclusive per-node timing: the wrapper runs for every recursive
        // `eval` call, so a node's nanos include its inputs' time.
        let started = std::time::Instant::now();
        let result = self.eval_inner(node, bindings);
        let nanos = started.elapsed().as_nanos() as u64;
        if let Ok(rows) = &result {
            let entry = self.node_stats.entry(node.fingerprint()).or_default();
            entry.invocations += 1;
            entry.rows_out = rows.len() as u64;
            entry.nanos += nanos;
        }
        result
    }

    fn eval_inner(&mut self, node: &PlanNode, bindings: &Bindings) -> Result<Vec<Tuple>> {
        if let Some(hook) = &self.fault_hook {
            if let Some(msg) = hook(&node.op.name()) {
                return Err(ExecError::Injected(msg));
            }
        }
        match &node.op {
            Lolepop::Access { spec, cols, preds } => match spec {
                AccessSpec::HeapTable(q) | AccessSpec::BTreeTable(q) => {
                    self.scan_base(*q, &cols_schema(cols), *preds, bindings)
                }
                AccessSpec::Index { index, q } => {
                    self.scan_index(*index, *q, &cols_schema(cols), *preds, bindings)
                }
                AccessSpec::TempHeap => {
                    self.access_temp(node, &cols_schema(cols), *preds, bindings)
                }
                AccessSpec::TempIndex { key } => {
                    self.access_temp_index(node, key, &cols_schema(cols), *preds, bindings)
                }
            },
            Lolepop::Get { q, cols: _, preds } => self.get(node, *q, *preds, bindings),
            Lolepop::Sort { key } => {
                let child = input(node, 0)?;
                let rows = self.eval_cached(child, bindings)?;
                let schema = schema_of(child);
                let mut rows = rows.as_ref().clone();
                let idx: Vec<usize> = key
                    .iter()
                    .map(|c| {
                        position(&schema, *c).ok_or_else(|| ExecError::UnboundColumn(c.to_string()))
                    })
                    .collect::<Result<_>>()?;
                rows.sort_by(|a, b| {
                    idx.iter()
                        .map(|i| a.get(*i).cmp(b.get(*i)))
                        .find(|o| *o != std::cmp::Ordering::Equal)
                        .unwrap_or(std::cmp::Ordering::Equal)
                });
                Ok(rows)
            }
            Lolepop::Ship { .. } => {
                let rows = self.eval(input(node, 0)?, bindings)?;
                let bytes: u64 = rows
                    .iter()
                    .map(|r| r.0.iter().map(value_bytes).sum::<u64>())
                    .sum();
                self.stats.bytes_shipped += bytes;
                self.stats.msgs += (bytes / 4096).max(1);
                Ok(rows)
            }
            Lolepop::Store | Lolepop::BuildIndex { .. } => {
                // STORE materializes (cached); BUILD_INDEX passes the stored
                // rows through — its index is built lazily on first probe.
                Ok(self
                    .eval_cached(input(node, 0)?, bindings)?
                    .as_ref()
                    .clone())
            }
            Lolepop::Filter { preds } => {
                let child = input(node, 0)?;
                let rows = self.eval(child, bindings)?;
                let schema = schema_of(child);
                self.filter_rows(rows, &schema, *preds, bindings)
            }
            Lolepop::Join {
                flavor,
                join_preds,
                residual,
            } => self.join(node, *flavor, *join_preds, *residual, bindings),
            Lolepop::Union => {
                let mut rows = self.eval(input(node, 0)?, bindings)?;
                rows.extend(self.eval(input(node, 1)?, bindings)?);
                Ok(rows)
            }
            Lolepop::Ext { name, .. } => {
                let f = self
                    .ext
                    .get(name.as_ref())
                    .cloned()
                    .ok_or_else(|| ExecError::UnknownExtOp(name.to_string()))?;
                let mut inputs = Vec::with_capacity(node.inputs.len());
                for i in &node.inputs {
                    let rows = self.eval(i, bindings)?;
                    inputs.push((schema_of(i), rows));
                }
                f(self.query, &node.op, &inputs, &schema_of(node))
            }
        }
    }

    /// Emit one `exec_node` event per distinct plan node with its collected
    /// actuals (shared subtrees appear once).
    fn emit_node_events(&self, plan: &PlanRef) {
        if !self.tracer.enabled() {
            return;
        }
        let mut seen = std::collections::HashSet::new();
        plan.visit(&mut |n| {
            if !seen.insert(n.fingerprint()) {
                return;
            }
            let a = self
                .node_stats
                .get(&n.fingerprint())
                .copied()
                .unwrap_or_default();
            self.tracer.emit(|| TraceEvent::ExecNode {
                op: n.op.name(),
                fp: n.fingerprint(),
                rows_out: a.rows_out,
                invocations: a.invocations,
                nanos: a.nanos,
            });
        });
    }

    /// Evaluate with node-identity caching when the subtree is
    /// correlation-free.
    fn eval_cached(&mut self, node: &PlanRef, bindings: &Bindings) -> Result<Arc<Vec<Tuple>>> {
        let key = Arc::as_ptr(node) as usize;
        if let Some(hit) = self.temp_cache.get(&key) {
            return Ok(hit.clone());
        }
        let mut store_span = if self.spans.enabled() && matches!(node.op, Lolepop::Store) {
            self.spans.enter("pipeline:store")
        } else {
            SpanGuard::noop()
        };
        let rows = Arc::new(self.eval(node, bindings)?);
        store_span.set_meta(rows.len() as u64);
        drop(store_span);
        if !is_correlated(node, self.query) {
            // Count a temp materialization only for STORE nodes themselves
            // (not for the cached children they wrap).
            if matches!(node.op, Lolepop::Store) {
                self.stats.temps_built += 1;
                self.stats.pipeline_rows += rows.len() as u64;
            }
            self.temp_cache.insert(key, rows.clone());
        }
        Ok(rows)
    }

    fn filter_rows(
        &self,
        rows: Vec<Tuple>,
        schema: &[QCol],
        preds: PredSet,
        bindings: &Bindings,
    ) -> Result<Vec<Tuple>> {
        let mut out = Vec::with_capacity(rows.len());
        for r in rows {
            let view = RowView {
                schema,
                row: &r,
                bindings,
            };
            if eval_preds(self.query, preds, &view)? {
                out.push(r);
            }
        }
        Ok(out)
    }

    fn scan_base(
        &mut self,
        q: QId,
        schema: &[QCol],
        preds: PredSet,
        bindings: &Bindings,
    ) -> Result<Vec<Tuple>> {
        let table_id = self.query.quantifier(q).table;
        let stored = self.db.table(table_id)?;
        self.stats.pages_read += stored.pages();
        let mut out = Vec::new();
        for (tid, row) in stored.scan() {
            let tuple = Tuple(
                schema
                    .iter()
                    .map(|c| {
                        if c.col.is_tid() {
                            tid.to_value()
                        } else {
                            row.get(c.col.0 as usize).clone()
                        }
                    })
                    .collect(),
            );
            let view = RowView {
                schema,
                row: &tuple,
                bindings,
            };
            if eval_preds(self.query, preds, &view)? {
                out.push(tuple);
            }
        }
        Ok(out)
    }

    /// Find the longest bound equality prefix of an index key (see
    /// [`crate::support::bound_prefix`], shared with vexec).
    fn bound_prefix(
        &self,
        key: &[QCol],
        preds: PredSet,
        bindings: &Bindings,
    ) -> Result<Vec<Value>> {
        support_bound_prefix(self.query, key, preds, bindings)
    }

    fn scan_index(
        &mut self,
        index: starqo_catalog::IndexId,
        q: QId,
        schema: &[QCol],
        preds: PredSet,
        bindings: &Bindings,
    ) -> Result<Vec<Tuple>> {
        let def = self.db.catalog().index(index).clone();
        let data = self.db.index(index)?;
        let key_qcols: Vec<QCol> = def.cols.iter().map(|c| QCol::new(q, *c)).collect();
        let prefix = self.bound_prefix(&key_qcols, preds, bindings)?;

        let mut out = Vec::new();
        let emit = |key: &Vec<Value>, tid: Tid, out: &mut Vec<Tuple>| {
            let tuple = Tuple(
                schema
                    .iter()
                    .map(|c| {
                        if c.col.is_tid() {
                            tid.to_value()
                        } else {
                            let pos = def.cols.iter().position(|k| *k == c.col).unwrap_or(0);
                            key[pos].clone()
                        }
                    })
                    .collect(),
            );
            out.push(tuple);
        };
        if prefix.is_empty() {
            self.stats.pages_read += data.pages();
            for (key, tid) in data.scan() {
                emit(key, tid, &mut out);
            }
        } else {
            self.stats.probes += 1;
            let mut scanned = 0u64;
            for (key, tid) in data.probe_prefix(&prefix) {
                emit(key, tid, &mut out);
                scanned += 1;
            }
            self.stats.pages_read += scanned.div_ceil(ROWS_PER_PAGE) + 1;
        }
        self.filter_rows(out, schema, preds, bindings)
    }

    fn get(
        &mut self,
        node: &PlanNode,
        q: QId,
        preds: PredSet,
        bindings: &Bindings,
    ) -> Result<Vec<Tuple>> {
        let input = input(node, 0)?;
        let in_schema = schema_of(input);
        let in_rows = self.eval(input, bindings)?;
        let out_schema = schema_of(node);
        let tid_col = QCol::new(q, TID_COL);
        let tid_pos = position(&in_schema, tid_col)
            .ok_or_else(|| ExecError::BadPlan("GET input lacks TID column".into()))?;
        let table_id = self.query.quantifier(q).table;
        let stored = self.db.table(table_id)?;

        let mut out = Vec::with_capacity(in_rows.len());
        // Buffer locality: consecutive fetches from the same page cost one
        // read — this is what makes TID-sorted GETs cheap at run time.
        let mut last_page = u64::MAX;
        for r in in_rows {
            let tid = Tid::from_value(r.get(tid_pos))
                .ok_or_else(|| ExecError::BadPlan("non-TID value in TID column".into()))?;
            let base = stored.fetch(tid)?;
            self.stats.tuples_fetched += 1;
            let page = tid.page(ROWS_PER_PAGE);
            if page != last_page {
                self.stats.pages_read += 1;
                last_page = page;
            }
            let tuple = Tuple(
                out_schema
                    .iter()
                    .map(|c| {
                        if let Some(i) = position(&in_schema, *c) {
                            r.get(i).clone()
                        } else {
                            base.get(c.col.0 as usize).clone()
                        }
                    })
                    .collect(),
            );
            let view = RowView {
                schema: &out_schema,
                row: &tuple,
                bindings,
            };
            if eval_preds(self.query, preds, &view)? {
                out.push(tuple);
            }
        }
        Ok(out)
    }

    fn access_temp(
        &mut self,
        node: &PlanNode,
        schema: &[QCol],
        preds: PredSet,
        bindings: &Bindings,
    ) -> Result<Vec<Tuple>> {
        let input = input(node, 0)?;
        let in_schema = schema_of(input);
        let rows = self.eval_cached(input, bindings)?;
        self.stats.pages_read += (rows.len() as u64).div_ceil(ROWS_PER_PAGE).max(1);
        let projected = project_rows(&in_schema, &rows, schema)?;
        self.filter_rows(projected, schema, preds, bindings)
    }

    fn access_temp_index(
        &mut self,
        node: &PlanNode,
        key: &[QCol],
        schema: &[QCol],
        preds: PredSet,
        bindings: &Bindings,
    ) -> Result<Vec<Tuple>> {
        let input = input(node, 0)?;
        let in_schema = schema_of(input);
        let rows = self.eval_cached(input, bindings)?;
        let cache_key = (Arc::as_ptr(input) as usize, key.to_vec());
        let index = match self.index_cache.get(&cache_key) {
            Some(ix) => ix.clone(),
            None => {
                let mut map: BTreeMap<Vec<Value>, Vec<usize>> = BTreeMap::new();
                let kpos: Vec<usize> = key
                    .iter()
                    .map(|c| {
                        position(&in_schema, *c)
                            .ok_or_else(|| ExecError::UnboundColumn(c.to_string()))
                    })
                    .collect::<Result<_>>()?;
                for (i, r) in rows.iter().enumerate() {
                    let k: Vec<Value> = kpos.iter().map(|p| r.get(*p).clone()).collect();
                    map.entry(k).or_default().push(i);
                }
                self.stats.indexes_built += 1;
                let ix = Arc::new(map);
                self.index_cache.insert(cache_key, ix.clone());
                ix
            }
        };
        let prefix = self.bound_prefix(key, preds, bindings)?;
        self.stats.probes += 1;
        let mut hits: Vec<Tuple> = Vec::new();
        if prefix.is_empty() {
            hits.extend(rows.iter().cloned());
        } else {
            use std::ops::Bound;
            for (k, idxs) in
                index.range::<[Value], _>((Bound::Included(prefix.as_slice()), Bound::Unbounded))
            {
                if k.len() < prefix.len() || k[..prefix.len()] != prefix[..] {
                    break;
                }
                for i in idxs {
                    hits.push(rows[*i].clone());
                }
            }
        }
        self.stats.pages_read += (hits.len() as u64).div_ceil(ROWS_PER_PAGE) + 1;
        let projected = project_rows(&in_schema, &hits, schema)?;
        self.filter_rows(projected, schema, preds, bindings)
    }

    fn join(
        &mut self,
        node: &PlanNode,
        flavor: JoinFlavor,
        join_preds: PredSet,
        residual: PredSet,
        bindings: &Bindings,
    ) -> Result<Vec<Tuple>> {
        let (outer_node, inner_node) = (input(node, 0)?, input(node, 1)?);
        let o_schema = schema_of(outer_node);
        let i_schema = schema_of(inner_node);
        let out_schema = schema_of(node);
        let all_preds = join_preds.union(residual);

        let combine = |o: &Tuple, i: &Tuple| -> Tuple {
            Tuple(
                out_schema
                    .iter()
                    .map(|c| {
                        if let Some(p) = position(&o_schema, *c) {
                            o.get(p).clone()
                        } else if let Some(p) = position(&i_schema, *c) {
                            i.get(p).clone()
                        } else {
                            Value::Null
                        }
                    })
                    .collect(),
            )
        };

        let mut out = Vec::new();
        match flavor {
            JoinFlavor::NL => {
                let outer_rows = self.eval(outer_node, bindings)?;
                for o in &outer_rows {
                    // Sideways information passing: bind the outer columns.
                    let mut b2 = bindings.clone();
                    for (i, c) in o_schema.iter().enumerate() {
                        b2.insert(*c, o.get(i).clone());
                    }
                    let inner_rows = self.eval(inner_node, &b2)?;
                    for i in &inner_rows {
                        let t = combine(o, i);
                        let view = RowView {
                            schema: &out_schema,
                            row: &t,
                            bindings,
                        };
                        if eval_preds(self.query, all_preds, &view)? {
                            out.push(t);
                        }
                    }
                }
            }
            JoinFlavor::MG => {
                // Merge keys are paired *per predicate*: one (outer column,
                // inner column) pair for each sortable join predicate. A
                // column may repeat (e.g. `t0.FK = t1.ID AND t0.FK = t2.ID`
                // repeats t0.FK) — repeating keeps the two key vectors the
                // same length so positional comparison is meaningful, and a
                // stream sorted on the deduplicated key is equally sorted on
                // the repeated one.
                let mut op: Vec<usize> = Vec::new();
                let mut ip: Vec<usize> = Vec::new();
                for p in join_preds.iter() {
                    let starqo_query::PredExpr::Cmp(CmpOp::Eq, l, r) = &self.query.pred(p).expr
                    else {
                        return Err(ExecError::BadPlan(
                            "merge join predicate is not a column equality".into(),
                        ));
                    };
                    let (lc, rc) = match (l.as_col(), r.as_col()) {
                        (Some(a), Some(b)) => (a, b),
                        _ => {
                            return Err(ExecError::BadPlan(
                                "merge join predicate side is not a bare column".into(),
                            ))
                        }
                    };
                    let (oc, ic) = if outer_node.props.tables.contains(lc.q) {
                        (lc, rc)
                    } else {
                        (rc, lc)
                    };
                    op.push(
                        position(&o_schema, oc)
                            .ok_or_else(|| ExecError::UnboundColumn(oc.to_string()))?,
                    );
                    ip.push(
                        position(&i_schema, ic)
                            .ok_or_else(|| ExecError::UnboundColumn(ic.to_string()))?,
                    );
                }
                // Both streams must be sorted compatibly with the key order
                // the classifier derives (Glue guarantees it; check cheaply).
                let cl = Classifier::new(self.query);
                debug_assert!(outer_node
                    .props
                    .order_satisfies(&cl.sort_key(join_preds, outer_node.props.tables)));
                debug_assert!(inner_node
                    .props
                    .order_satisfies(&cl.sort_key(join_preds, inner_node.props.tables)));
                let outer_rows = self.eval(outer_node, bindings)?;
                let inner_rows = self.eval(inner_node, bindings)?;
                let keyed = |r: &Tuple, pos: &[usize]| -> Vec<Value> {
                    pos.iter().map(|p| r.get(*p).clone()).collect()
                };
                let (mut a, mut b) = (0usize, 0usize);
                while a < outer_rows.len() && b < inner_rows.len() {
                    let ka = keyed(&outer_rows[a], &op);
                    let kb = keyed(&inner_rows[b], &ip);
                    match ka.cmp(&kb) {
                        std::cmp::Ordering::Less => a += 1,
                        std::cmp::Ordering::Greater => b += 1,
                        std::cmp::Ordering::Equal => {
                            // Group boundaries on both sides.
                            let mut a_end = a + 1;
                            while a_end < outer_rows.len() && keyed(&outer_rows[a_end], &op) == ka {
                                a_end += 1;
                            }
                            let mut b_end = b + 1;
                            while b_end < inner_rows.len() && keyed(&inner_rows[b_end], &ip) == kb {
                                b_end += 1;
                            }
                            for o in &outer_rows[a..a_end] {
                                for i in &inner_rows[b..b_end] {
                                    let t = combine(o, i);
                                    let view = RowView {
                                        schema: &out_schema,
                                        row: &t,
                                        bindings,
                                    };
                                    if eval_preds(self.query, all_preds, &view)? {
                                        out.push(t);
                                    }
                                }
                            }
                            a = a_end;
                            b = b_end;
                        }
                    }
                }
            }
            JoinFlavor::HA => {
                // Split each hashable predicate into (outer expr, inner expr).
                let mut pairs: Vec<(Scalar, Scalar)> = Vec::new();
                for p in join_preds.iter() {
                    if let starqo_query::PredExpr::Cmp(CmpOp::Eq, l, r) = &self.query.pred(p).expr {
                        if l.quantifiers().is_subset_of(outer_node.props.tables) {
                            pairs.push((l.clone(), r.clone()));
                        } else {
                            pairs.push((r.clone(), l.clone()));
                        }
                    }
                }
                let inner_rows = self.eval(inner_node, bindings)?;
                let mut table: HashMap<Vec<Value>, Vec<usize>> = HashMap::new();
                'row: for (i, r) in inner_rows.iter().enumerate() {
                    let view = RowView {
                        schema: &i_schema,
                        row: r,
                        bindings,
                    };
                    let mut key = Vec::with_capacity(pairs.len());
                    for (_, ie) in &pairs {
                        let v = eval_scalar(ie, &view)?;
                        if v.is_null() {
                            continue 'row; // NULL keys never match
                        }
                        key.push(v);
                    }
                    table.entry(key).or_default().push(i);
                }
                let outer_rows = self.eval(outer_node, bindings)?;
                'orow: for o in &outer_rows {
                    let view = RowView {
                        schema: &o_schema,
                        row: o,
                        bindings,
                    };
                    let mut key = Vec::with_capacity(pairs.len());
                    for (oe, _) in &pairs {
                        let v = eval_scalar(oe, &view)?;
                        if v.is_null() {
                            continue 'orow;
                        }
                        key.push(v);
                    }
                    if let Some(matches) = table.get(&key) {
                        for i in matches {
                            let t = combine(o, &inner_rows[*i]);
                            let view = RowView {
                                schema: &out_schema,
                                row: &t,
                                bindings,
                            };
                            if eval_preds(self.query, all_preds, &view)? {
                                out.push(t);
                            }
                        }
                    }
                }
            }
        }
        Ok(out)
    }
}

/// Checked input access: a malformed plan (wrong operator arity) surfaces
/// as a typed `BadPlan`, never an index panic.
fn input(node: &PlanNode, i: usize) -> Result<&PlanRef> {
    node.inputs.get(i).ok_or_else(|| {
        ExecError::BadPlan(format!(
            "{} requires input #{} but the node has {}",
            node.op.name(),
            i + 1,
            node.inputs.len()
        ))
    })
}

/// True if the subtree references quantifiers outside its own table set
/// (i.e. depends on enclosing nested-loop bindings and must not be cached).
pub fn is_correlated(node: &PlanNode, query: &Query) -> bool {
    let root_tables = node.props.tables;
    node.any(&|n| {
        let preds = match &n.op {
            Lolepop::Access { preds, .. } => *preds,
            Lolepop::Get { preds, .. } => *preds,
            Lolepop::Filter { preds } => *preds,
            Lolepop::Join {
                join_preds,
                residual,
                ..
            } => join_preds.union(*residual),
            _ => PredSet::EMPTY,
        };
        preds
            .iter()
            .any(|p| !query.pred(p).quantifiers().is_subset_of(root_tables))
    })
}

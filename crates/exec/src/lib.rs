//! # starqo-exec
//!
//! The query evaluator: the run-time interpreter for LOLEPOP plans (§2.1 —
//! "the basic object to be manipulated ... is a LOw-LEvel Plan OPerator
//! (LOLEPOP) that will be interpreted by the query evaluator at run-time").
//!
//! The evaluator executes every LOLEPOP for real against the
//! `starqo-storage` substrate: heap and B-tree scans, index probes with
//! sideways information passing (join predicates bound per outer tuple),
//! TID `GET`s, sorts, simulated `SHIP`s, temp materialization with
//! caching (a temp is never re-materialized per outer tuple), dynamic
//! index builds, and all three join methods.
//!
//! It exists for two reasons:
//! 1. the paper's plans are *programs* and must run, and
//! 2. it lets the test suite verify the optimizer's central safety property:
//!    every alternative plan for a query produces the same result multiset
//!    (see [`reference::reference_eval`] and experiment E13).

pub mod error;
pub mod eval;
pub mod reference;
pub mod result;
pub mod scalar;
pub mod schema;
pub mod shadow;
pub mod support;

pub use error::{ExecError, Result};
pub use eval::{is_correlated, ExecStats, Executor, ExtExecFn, FaultHook};
pub use reference::reference_eval;
pub use result::{project_rows, rows_equal_multiset, QueryResult};
pub use scalar::Bindings;
pub use schema::{cols_schema, position, schema_of, StreamSchema};
pub use shadow::shadow_run;
pub use starqo_trace::NodeActuals;

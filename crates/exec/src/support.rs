//! Run-time helpers shared between the serial interpreter ([`crate::eval`])
//! and the vectorized batch executor (`starqo-vexec`).
//!
//! vexec's correctness contract is "bit-match the serial oracle", so any
//! semantics both runtimes need — index-prefix binding, SHIP byte
//! accounting, panic rendering — live here exactly once.

use starqo_catalog::Value;
use starqo_query::{Classifier, CmpOp, PredSet, QCol, Query, Scalar};
use starqo_storage::Tuple;

use crate::error::Result;
use crate::scalar::{eval_scalar, Bindings, RowView};

/// Find the longest bound equality prefix of an index key: for each key
/// column in order, a predicate `key_col = expr` whose `expr` is evaluable
/// from constants and outer bindings alone.
pub fn bound_prefix(
    query: &Query,
    key: &[QCol],
    preds: PredSet,
    bindings: &Bindings,
) -> Result<Vec<Value>> {
    let cl = Classifier::new(query);
    let empty_schema: Vec<QCol> = Vec::new();
    let empty_row = Tuple(Vec::new());
    let mut values = Vec::new();
    'keys: for kc in key {
        for p in preds.iter() {
            if cl.sargable_on(p, *kc) != Some(CmpOp::Eq) {
                continue;
            }
            // Locate the non-key side and try to evaluate it from
            // bindings/constants.
            if let starqo_query::PredExpr::Cmp(_, l, r) = &query.pred(p).expr {
                let other: &Scalar = if l.as_col() == Some(*kc) { r } else { l };
                let view = RowView {
                    schema: &empty_schema,
                    row: &empty_row,
                    bindings,
                };
                if let Ok(v) = eval_scalar(other, &view) {
                    if !v.is_null() {
                        values.push(v);
                        continue 'keys;
                    }
                }
            }
        }
        break;
    }
    Ok(values)
}

/// Best-effort rendering of a caught panic payload.
pub fn panic_msg(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Approximate wire size of a value, for SHIP accounting.
pub fn value_bytes(v: &Value) -> u64 {
    match v {
        Value::Null | Value::Bool(_) => 1,
        Value::Int(_) | Value::Double(_) => 8,
        Value::Str(s) => s.len() as u64,
    }
}

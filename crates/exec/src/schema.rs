//! Stream schemas: the column layout of tuples flowing between operators.
//!
//! A stream's schema is its COLS property in sorted (BTreeSet) order, so the
//! layout is fully determined by the plan's properties — the evaluator and
//! the optimizer never need to negotiate.

use starqo_plan::{ColSet, PlanNode};
use starqo_query::QCol;

/// Ordered column layout of a stream.
pub type StreamSchema = Vec<QCol>;

/// The schema of a plan node's output stream.
pub fn schema_of(node: &PlanNode) -> StreamSchema {
    cols_schema(&node.props.cols)
}

/// The schema corresponding to a column set.
pub fn cols_schema(cols: &ColSet) -> StreamSchema {
    cols.iter().copied().collect()
}

/// Position of a column within a schema.
pub fn position(schema: &[QCol], col: QCol) -> Option<usize> {
    // Schemas are sorted; binary search keeps wide rows cheap.
    schema.binary_search(&col).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use starqo_catalog::ColId;
    use starqo_query::QId;

    #[test]
    fn schema_is_sorted_and_searchable() {
        let mut cols = ColSet::new();
        for (q, c) in [(1, 0), (0, 2), (0, 1)] {
            cols.insert(QCol::new(QId(q), ColId(c)));
        }
        let s = cols_schema(&cols);
        assert_eq!(s.len(), 3);
        assert!(s.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(position(&s, QCol::new(QId(0), ColId(2))), Some(1));
        assert_eq!(position(&s, QCol::new(QId(9), ColId(9))), None);
    }
}

//! Query results and multiset comparison.

use starqo_query::QCol;
use starqo_storage::Tuple;

use crate::error::{ExecError, Result};
use crate::schema::{position, StreamSchema};

/// The rows a plan produced, with their schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryResult {
    pub schema: StreamSchema,
    pub rows: Vec<Tuple>,
}

impl QueryResult {
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Project onto a column list (reordering allowed).
    pub fn project(&self, cols: &[QCol]) -> Result<QueryResult> {
        Ok(QueryResult {
            schema: cols.to_vec(),
            rows: project_rows(&self.schema, &self.rows, cols)?,
        })
    }
}

/// Project rows from one schema onto a target column list.
pub fn project_rows(schema: &[QCol], rows: &[Tuple], cols: &[QCol]) -> Result<Vec<Tuple>> {
    let idx: Vec<usize> = cols
        .iter()
        .map(|c| position(schema, *c).ok_or_else(|| ExecError::UnboundColumn(c.to_string())))
        .collect::<Result<_>>()?;
    Ok(rows
        .iter()
        .map(|r| Tuple(idx.iter().map(|i| r.get(*i).clone()).collect()))
        .collect())
}

/// Multiset equality of two row collections (order-insensitive).
pub fn rows_equal_multiset(a: &[Tuple], b: &[Tuple]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut x: Vec<&Tuple> = a.iter().collect();
    let mut y: Vec<&Tuple> = b.iter().collect();
    x.sort();
    y.sort();
    x == y
}

#[cfg(test)]
mod tests {
    use super::*;
    use starqo_catalog::{ColId, Value};
    use starqo_query::QId;

    fn qc(q: u32, c: u32) -> QCol {
        QCol::new(QId(q), ColId(c))
    }

    #[test]
    fn projection_reorders() {
        let schema = vec![qc(0, 0), qc(0, 1)];
        let rows = vec![Tuple(vec![Value::Int(1), Value::Int(2)])];
        let out = project_rows(&schema, &rows, &[qc(0, 1), qc(0, 0)]).unwrap();
        assert_eq!(out[0], Tuple(vec![Value::Int(2), Value::Int(1)]));
        assert!(project_rows(&schema, &rows, &[qc(1, 0)]).is_err());
    }

    #[test]
    fn multiset_comparison() {
        let a = vec![Tuple(vec![Value::Int(1)]), Tuple(vec![Value::Int(2)])];
        let b = vec![Tuple(vec![Value::Int(2)]), Tuple(vec![Value::Int(1)])];
        let c = vec![Tuple(vec![Value::Int(2)]), Tuple(vec![Value::Int(2)])];
        assert!(rows_equal_multiset(&a, &b));
        assert!(!rows_equal_multiset(&a, &c));
        assert!(!rows_equal_multiset(&a, &a[..1]));
    }
}

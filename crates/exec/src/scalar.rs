//! Run-time evaluation of scalar and predicate expressions.
//!
//! A `RowView` resolves quantified columns first against the current row's
//! schema, then against the enclosing nested-loop bindings — the run-time
//! realization of "sideways information passing" (§4.4).

use std::collections::BTreeMap;

use starqo_catalog::Value;
use starqo_query::{PredExpr, PredSet, QCol, Query, Scalar};
use starqo_storage::Tuple;

use crate::error::{ExecError, Result};
use crate::schema::position;

/// Columns bound by enclosing nested-loop outers.
pub type Bindings = BTreeMap<QCol, Value>;

/// One tuple with its schema and the enclosing bindings.
pub struct RowView<'a> {
    pub schema: &'a [QCol],
    pub row: &'a Tuple,
    pub bindings: &'a Bindings,
}

impl<'a> RowView<'a> {
    pub fn lookup(&self, c: QCol) -> Result<&Value> {
        if let Some(i) = position(self.schema, c) {
            return Ok(self.row.get(i));
        }
        self.bindings
            .get(&c)
            .ok_or_else(|| ExecError::UnboundColumn(c.to_string()))
    }
}

/// Evaluate a scalar expression. Arithmetic on NULL or non-numeric values
/// yields NULL (which then fails every comparison).
pub fn eval_scalar(s: &Scalar, row: &RowView<'_>) -> Result<Value> {
    match s {
        Scalar::Col(c) => Ok(row.lookup(*c)?.clone()),
        Scalar::Const(v) => Ok(v.clone()),
        Scalar::Arith(op, l, r) => {
            let lv = eval_scalar(l, row)?;
            let rv = eval_scalar(r, row)?;
            // Preserve integerness when possible (division always widens).
            match (&lv, &rv, op) {
                (Value::Int(a), Value::Int(b), starqo_query::ArithOp::Add) => {
                    Ok(Value::Int(a.wrapping_add(*b)))
                }
                (Value::Int(a), Value::Int(b), starqo_query::ArithOp::Sub) => {
                    Ok(Value::Int(a.wrapping_sub(*b)))
                }
                (Value::Int(a), Value::Int(b), starqo_query::ArithOp::Mul) => {
                    Ok(Value::Int(a.wrapping_mul(*b)))
                }
                _ => match (lv.as_f64(), rv.as_f64()) {
                    (Some(a), Some(b)) => Ok(Value::Double(op.apply(a, b))),
                    _ => Ok(Value::Null),
                },
            }
        }
    }
}

/// Evaluate a predicate expression. NULL comparisons are false (SQL's
/// UNKNOWN collapses to false at this level).
pub fn eval_pred_expr(e: &PredExpr, row: &RowView<'_>) -> Result<bool> {
    match e {
        PredExpr::Cmp(op, l, r) => {
            let lv = eval_scalar(l, row)?;
            let rv = eval_scalar(r, row)?;
            if lv.is_null() || rv.is_null() {
                return Ok(false);
            }
            Ok(op.eval(lv.cmp(&rv)))
        }
        PredExpr::Or(arms) => {
            for a in arms {
                if eval_pred_expr(a, row)? {
                    return Ok(true);
                }
            }
            Ok(false)
        }
    }
}

/// Evaluate an entire predicate set (conjunction) against a row.
pub fn eval_preds(query: &Query, preds: PredSet, row: &RowView<'_>) -> Result<bool> {
    for p in preds.iter() {
        if !eval_pred_expr(&query.pred(p).expr, row)? {
            return Ok(false);
        }
    }
    Ok(true)
}

/// Evaluate a comparison with SQL-style equality semantics, used for join
/// key matching in merge/hash joins.
pub fn values_join_equal(a: &Value, b: &Value) -> bool {
    !a.is_null() && !b.is_null() && a == b
}

#[cfg(test)]
mod tests {
    use super::*;
    use starqo_catalog::ColId;
    use starqo_query::{ArithOp, CmpOp, QId};

    fn schema() -> Vec<QCol> {
        vec![QCol::new(QId(0), ColId(0)), QCol::new(QId(0), ColId(1))]
    }

    #[test]
    fn lookup_row_then_bindings() {
        let s = schema();
        let row = Tuple(vec![Value::Int(1), Value::Int(2)]);
        let mut b = Bindings::new();
        b.insert(QCol::new(QId(1), ColId(0)), Value::Int(99));
        let view = RowView {
            schema: &s,
            row: &row,
            bindings: &b,
        };
        assert_eq!(
            *view.lookup(QCol::new(QId(0), ColId(1))).unwrap(),
            Value::Int(2)
        );
        assert_eq!(
            *view.lookup(QCol::new(QId(1), ColId(0))).unwrap(),
            Value::Int(99)
        );
        assert!(view.lookup(QCol::new(QId(2), ColId(0))).is_err());
    }

    #[test]
    fn arithmetic_stays_integer_until_division() {
        let s = schema();
        let row = Tuple(vec![Value::Int(7), Value::Int(2)]);
        let b = Bindings::new();
        let view = RowView {
            schema: &s,
            row: &row,
            bindings: &b,
        };
        let add = Scalar::Arith(
            ArithOp::Add,
            Box::new(Scalar::col(QId(0), ColId(0))),
            Box::new(Scalar::col(QId(0), ColId(1))),
        );
        assert_eq!(eval_scalar(&add, &view).unwrap(), Value::Int(9));
        let div = Scalar::Arith(
            ArithOp::Div,
            Box::new(Scalar::col(QId(0), ColId(0))),
            Box::new(Scalar::col(QId(0), ColId(1))),
        );
        assert_eq!(eval_scalar(&div, &view).unwrap(), Value::Double(3.5));
    }

    #[test]
    fn null_poisons_arithmetic_and_fails_comparisons() {
        let s = schema();
        let row = Tuple(vec![Value::Null, Value::Int(2)]);
        let b = Bindings::new();
        let view = RowView {
            schema: &s,
            row: &row,
            bindings: &b,
        };
        let add = Scalar::Arith(
            ArithOp::Add,
            Box::new(Scalar::col(QId(0), ColId(0))),
            Box::new(Scalar::col(QId(0), ColId(1))),
        );
        assert_eq!(eval_scalar(&add, &view).unwrap(), Value::Null);
        let cmp = PredExpr::Cmp(
            CmpOp::Eq,
            Scalar::col(QId(0), ColId(0)),
            Scalar::col(QId(0), ColId(0)),
        );
        assert!(!eval_pred_expr(&cmp, &view).unwrap()); // NULL = NULL is false
    }

    #[test]
    fn or_evaluation_short_circuits() {
        let s = schema();
        let row = Tuple(vec![Value::Int(1), Value::Int(2)]);
        let b = Bindings::new();
        let view = RowView {
            schema: &s,
            row: &row,
            bindings: &b,
        };
        let or = PredExpr::Or(vec![
            PredExpr::Cmp(
                CmpOp::Eq,
                Scalar::col(QId(0), ColId(0)),
                Scalar::Const(Value::Int(1)),
            ),
            // Would error if evaluated strictly: unbound column.
            PredExpr::Cmp(
                CmpOp::Eq,
                Scalar::col(QId(5), ColId(0)),
                Scalar::Const(Value::Int(1)),
            ),
        ]);
        assert!(eval_pred_expr(&or, &view).unwrap());
    }

    #[test]
    fn join_equality_rejects_nulls() {
        assert!(values_join_equal(&Value::Int(1), &Value::Int(1)));
        assert!(!values_join_equal(&Value::Null, &Value::Null));
        assert!(!values_join_equal(&Value::Int(1), &Value::Int(2)));
    }
}

//! `ExecStats` accounting tests: hand-computed resource counters for small
//! nested-loop plans with a materialized (§4.5.2) inner.
//!
//! With `ROWS_PER_PAGE = 64`, DEPT (6 rows) and EMP (30 rows) are one page
//! each, so every page charge is computable by hand.

use std::sync::Arc;

use starqo_catalog::{Catalog, ColId, DataType, StorageKind, Value};
use starqo_exec::Executor;
use starqo_plan::{
    AccessSpec, ColSet, CostModel, JoinFlavor, Lolepop, PlanRef, PropCtx, PropEngine,
};
use starqo_query::{parse_query, PredId, PredSet, QCol, QId, Query};
use starqo_storage::{Database, DatabaseBuilder};

const D: QId = QId(0);
const E: QId = QId(1);
const SQL: &str = "SELECT E.NAME FROM DEPT D, EMP E WHERE D.MGR = 'Haas' AND D.DNO = E.DNO";
const P_MGR: PredId = PredId(0);
const P_JOIN: PredId = PredId(1);

fn catalog() -> Arc<Catalog> {
    Arc::new(
        Catalog::builder()
            .site("N.Y.")
            .table("DEPT", "N.Y.", StorageKind::Heap, 6)
            .column("DNO", DataType::Int, Some(6))
            .column("MGR", DataType::Str, Some(3))
            .table("EMP", "N.Y.", StorageKind::Heap, 30)
            .column("ENO", DataType::Int, Some(30))
            .column("NAME", DataType::Str, None)
            .column("DNO", DataType::Int, Some(6))
            .build()
            .unwrap(),
    )
}

fn database(cat: Arc<Catalog>) -> Database {
    let mut b = DatabaseBuilder::new(cat);
    let mgrs = ["Haas", "Codd", "Gray"];
    for d in 0..6i64 {
        b.insert(
            "DEPT",
            vec![Value::Int(d), Value::str(mgrs[(d % 3) as usize])],
        )
        .unwrap();
    }
    for e in 0..30i64 {
        b.insert(
            "EMP",
            vec![
                Value::Int(e),
                Value::str(format!("emp{e}")),
                Value::Int(e % 6),
            ],
        )
        .unwrap();
    }
    b.build().unwrap()
}

struct Fx {
    db: Database,
    query: Query,
    model: CostModel,
    engine: PropEngine,
}

impl Fx {
    fn new() -> Self {
        let cat = catalog();
        let db = database(cat.clone());
        let query = parse_query(&cat, SQL).unwrap();
        Fx {
            db,
            query,
            model: CostModel::default(),
            engine: PropEngine::new(),
        }
    }

    fn build(&self, op: Lolepop, inputs: Vec<PlanRef>) -> PlanRef {
        let ctx = PropCtx::new(self.db.catalog(), &self.query, &self.model);
        self.engine.build(op, inputs, &ctx).unwrap()
    }
}

fn cols(items: &[(QId, u32)]) -> ColSet {
    items
        .iter()
        .map(|(q, c)| QCol::new(*q, ColId(*c)))
        .collect()
}

/// NL join, inner = ACCESS(temp) over STORE(scan EMP): the temp is
/// materialized exactly once, each outer tuple then re-reads it.
fn nl_with_temp_inner(f: &Fx) -> PlanRef {
    let d = f.build(
        Lolepop::Access {
            spec: AccessSpec::HeapTable(D),
            cols: cols(&[(D, 0), (D, 1)]),
            preds: PredSet::single(P_MGR),
        },
        vec![],
    );
    let e = f.build(
        Lolepop::Access {
            spec: AccessSpec::HeapTable(E),
            cols: cols(&[(E, 1), (E, 2)]),
            preds: PredSet::EMPTY,
        },
        vec![],
    );
    let store = f.build(Lolepop::Store, vec![e]);
    let re = f.build(
        Lolepop::Access {
            spec: AccessSpec::TempHeap,
            cols: cols(&[(E, 1), (E, 2)]),
            preds: PredSet::single(P_JOIN),
        },
        vec![store],
    );
    f.build(
        Lolepop::Join {
            flavor: JoinFlavor::NL,
            join_preds: PredSet::single(P_JOIN),
            residual: PredSet::EMPTY,
        },
        vec![d, re],
    )
}

#[test]
fn temp_inner_page_accounting_is_exact() {
    let f = Fx::new();
    let nl = nl_with_temp_inner(&f);
    let mut ex = Executor::new(&f.db, &f.query);
    let got = ex.run(&nl).unwrap();
    // 2 'Haas' depts × 5 emps each.
    assert_eq!(got.rows.len(), 10);
    let s = ex.stats();
    // §4.5.2: despite 2 outer probes, the temp is materialized exactly once.
    assert_eq!(s.temps_built, 1);
    // Pages: DEPT scan (1) + EMP scan feeding the STORE (1) + 2 temp
    // re-reads of ceil(30/64).max(1) = 1 page each.
    assert_eq!(s.pages_read, 1 + 1 + 2);
    // A heap temp is never probed, and no TID fetches happen.
    assert_eq!(s.probes, 0);
    assert_eq!(s.tuples_fetched, 0);
    assert_eq!(s.rows_out, 10);
}

#[test]
fn temp_index_inner_counts_probes() {
    let f = Fx::new();
    let d = f.build(
        Lolepop::Access {
            spec: AccessSpec::HeapTable(D),
            cols: cols(&[(D, 0), (D, 1)]),
            preds: PredSet::single(P_MGR),
        },
        vec![],
    );
    let e = f.build(
        Lolepop::Access {
            spec: AccessSpec::HeapTable(E),
            cols: cols(&[(E, 1), (E, 2)]),
            preds: PredSet::EMPTY,
        },
        vec![],
    );
    let store = f.build(Lolepop::Store, vec![e]);
    let key = vec![QCol::new(E, ColId(2))];
    let bix = f.build(Lolepop::BuildIndex { key: key.clone() }, vec![store]);
    let probe = f.build(
        Lolepop::Access {
            spec: AccessSpec::TempIndex { key },
            cols: cols(&[(E, 1), (E, 2)]),
            preds: PredSet::single(P_JOIN),
        },
        vec![bix],
    );
    let nl = f.build(
        Lolepop::Join {
            flavor: JoinFlavor::NL,
            join_preds: PredSet::single(P_JOIN),
            residual: PredSet::EMPTY,
        },
        vec![d, probe],
    );
    let mut ex = Executor::new(&f.db, &f.query);
    let got = ex.run(&nl).unwrap();
    assert_eq!(got.rows.len(), 10);
    let s = ex.stats();
    assert_eq!(s.temps_built, 1);
    assert_eq!(s.indexes_built, 1);
    // One probe per outer 'Haas' tuple.
    assert_eq!(s.probes, 2);
    // Pages: DEPT (1) + EMP (1) + per probe ceil(5 hits / 64) + 1 = 2.
    assert_eq!(s.pages_read, 1 + 1 + 2 * 2);
}

#[test]
fn node_actuals_track_invocations_and_rows() {
    let f = Fx::new();
    let nl = nl_with_temp_inner(&f);
    let mut ex = Executor::new(&f.db, &f.query);
    ex.enable_node_stats();
    ex.run(&nl).unwrap();
    let actuals = ex.node_actuals();
    // Root join ran once and produced 10 rows.
    let join = actuals.get(&nl.fingerprint()).unwrap();
    assert_eq!(join.invocations, 1);
    assert_eq!(join.rows_out, 10);
    // The temp access (inner input) ran once per outer tuple, yielding the
    // 5 matching emps of the last probed dept.
    let inner = actuals.get(&nl.inputs[1].fingerprint()).unwrap();
    assert_eq!(inner.invocations, 2);
    assert_eq!(inner.rows_out, 5);
    // Its STORE input ran only once (then cached).
    let store = actuals.get(&nl.inputs[1].inputs[0].fingerprint()).unwrap();
    assert_eq!(store.invocations, 1);
    assert_eq!(store.rows_out, 30);
}

/// A genuine DAG: one STORE node (same `Arc`) feeds both inputs of a
/// UNION through two temp accesses. The shared subtree must evaluate once
/// (identity cache) and appear once in `node_actuals` and the trace.
#[test]
fn shared_subtree_in_a_dag_is_executed_and_counted_once() {
    use starqo_trace::{MemorySink, TraceEvent, Tracer};

    let f = Fx::new();
    let e = f.build(
        Lolepop::Access {
            spec: AccessSpec::HeapTable(E),
            cols: cols(&[(E, 1), (E, 2)]),
            preds: PredSet::EMPTY,
        },
        vec![],
    );
    let store = f.build(Lolepop::Store, vec![e]);
    let scan_temp = |_: usize| {
        f.build(
            Lolepop::Access {
                spec: AccessSpec::TempHeap,
                cols: cols(&[(E, 1), (E, 2)]),
                preds: PredSet::EMPTY,
            },
            vec![store.clone()], // same Arc both times: a true DAG
        )
    };
    let (a1, a2) = (scan_temp(0), scan_temp(1));
    assert_eq!(
        a1.fingerprint(),
        a2.fingerprint(),
        "structurally identical branches share a fingerprint"
    );
    let union = f.build(Lolepop::Union, vec![a1, a2]);

    let sink = Arc::new(MemorySink::new());
    let mut ex = Executor::new(&f.db, &f.query);
    ex.set_tracer(Tracer::shared(sink.clone()));
    let got = ex.run(&union).unwrap();
    // Both branches produce all 30 EMP rows.
    assert_eq!(got.rows.len(), 60);
    // The STORE materialized once, not once per branch...
    assert_eq!(ex.stats().temps_built, 1);
    // ...and its actuals say one invocation, 30 rows out.
    let actuals = ex.node_actuals();
    let s = actuals.get(&store.fingerprint()).unwrap();
    assert_eq!(s.invocations, 1);
    assert_eq!(s.rows_out, 30);
    // The (fingerprint-shared) temp scan ran once per branch.
    let scan = actuals.get(&union.inputs[0].fingerprint()).unwrap();
    assert_eq!(scan.invocations, 2);
    // The trace carries exactly one exec_node per distinct fingerprint —
    // the shared STORE (and the EMP scan under it) are not double-counted.
    let events = sink.events();
    let mut exec_fps: Vec<u64> = events
        .iter()
        .filter_map(|ev| match ev {
            TraceEvent::ExecNode { fp, .. } => Some(*fp),
            _ => None,
        })
        .collect();
    // union, shared temp scan, store, emp scan = 4 distinct nodes.
    assert_eq!(exec_fps.len(), 4);
    exec_fps.sort_unstable();
    exec_fps.dedup();
    assert_eq!(exec_fps.len(), 4);
    let store_ev = events.iter().find_map(|ev| match ev {
        TraceEvent::ExecNode {
            fp,
            invocations,
            rows_out,
            ..
        } if *fp == store.fingerprint() => Some((*invocations, *rows_out)),
        _ => None,
    });
    assert_eq!(store_ev, Some((1, 30)));
}

//! End-to-end evaluator tests: hand-built plans over a real in-memory
//! database, all validated against the brute-force reference evaluator.

use std::sync::Arc;

use starqo_catalog::{Catalog, ColId, DataType, IndexId, StorageKind, Value, TID_COL};
use starqo_exec::{reference_eval, rows_equal_multiset, Executor};
use starqo_plan::{
    AccessSpec, ColSet, CostModel, JoinFlavor, Lolepop, PlanRef, PropCtx, PropEngine,
};
use starqo_query::{parse_query, PredId, PredSet, QCol, QId, Query};
use starqo_storage::{Database, DatabaseBuilder};

fn catalog() -> Arc<Catalog> {
    Arc::new(
        Catalog::builder()
            .site("N.Y.")
            .site("L.A.")
            .table("DEPT", "N.Y.", StorageKind::Heap, 6)
            .column("DNO", DataType::Int, Some(6))
            .column("MGR", DataType::Str, Some(3))
            .table(
                "EMP",
                "N.Y.",
                StorageKind::BTree {
                    key: vec![ColId(0)],
                },
                30,
            )
            .column("ENO", DataType::Int, Some(30))
            .column("NAME", DataType::Str, None)
            .column("DNO", DataType::Int, Some(6))
            .index("EMP_DNO", "EMP", &["DNO"], false, false)
            .build()
            .unwrap(),
    )
}

fn database(cat: Arc<Catalog>) -> Database {
    let mut b = DatabaseBuilder::new(cat);
    let mgrs = ["Haas", "Codd", "Gray"];
    for d in 0..6i64 {
        b.insert(
            "DEPT",
            vec![Value::Int(d), Value::str(mgrs[(d % 3) as usize])],
        )
        .unwrap();
    }
    for e in 0..30i64 {
        b.insert(
            "EMP",
            vec![
                Value::Int(e),
                Value::str(format!("emp{e}")),
                Value::Int(e % 6),
            ],
        )
        .unwrap();
    }
    b.build().unwrap()
}

struct Fx {
    db: Database,
    query: Query,
    model: CostModel,
    engine: PropEngine,
}

impl Fx {
    fn new(sql: &str) -> Self {
        let cat = catalog();
        let db = database(cat.clone());
        let query = parse_query(&cat, sql).unwrap();
        Fx {
            db,
            query,
            model: CostModel::default(),
            engine: PropEngine::new(),
        }
    }

    fn build(&self, op: Lolepop, inputs: Vec<PlanRef>) -> PlanRef {
        let ctx = PropCtx::new(self.db.catalog(), &self.query, &self.model);
        self.engine.build(op, inputs, &ctx).unwrap()
    }

    fn check_against_reference(&self, plan: &PlanRef) -> usize {
        let mut ex = Executor::new(&self.db, &self.query);
        let got = ex.run(plan).unwrap();
        let want = reference_eval(&self.db, &self.query).unwrap();
        assert!(
            rows_equal_multiset(&got.rows, &want),
            "plan result diverges from reference: got {} rows, want {}",
            got.rows.len(),
            want.len()
        );
        got.rows.len()
    }
}

const D: QId = QId(0);
const E: QId = QId(1);
const SQL: &str = "SELECT E.NAME FROM DEPT D, EMP E WHERE D.MGR = 'Haas' AND D.DNO = E.DNO";
const P_MGR: PredId = PredId(0);
const P_JOIN: PredId = PredId(1);

fn cols(items: &[(QId, u32)]) -> ColSet {
    items
        .iter()
        .map(|(q, c)| QCol::new(*q, ColId(*c)))
        .collect()
}

fn dept_scan(f: &Fx, preds: PredSet) -> PlanRef {
    f.build(
        Lolepop::Access {
            spec: AccessSpec::HeapTable(D),
            cols: cols(&[(D, 0), (D, 1)]),
            preds,
        },
        vec![],
    )
}

fn emp_scan(f: &Fx, preds: PredSet) -> PlanRef {
    f.build(
        Lolepop::Access {
            spec: AccessSpec::BTreeTable(E),
            cols: cols(&[(E, 1), (E, 2)]),
            preds,
        },
        vec![],
    )
}

#[test]
fn figure1_sort_merge_plan_executes_correctly() {
    let f = Fx::new(SQL);
    let d = dept_scan(&f, PredSet::single(P_MGR));
    let d_sorted = f.build(
        Lolepop::Sort {
            key: vec![QCol::new(D, ColId(0))],
        },
        vec![d],
    );
    // GET(ACCESS(index EMP_DNO)) — index order is DNO order.
    let mut ixcols = cols(&[(E, 2)]);
    ixcols.insert(QCol::new(E, TID_COL));
    let ix = f.build(
        Lolepop::Access {
            spec: AccessSpec::Index {
                index: IndexId(0),
                q: E,
            },
            cols: ixcols,
            preds: PredSet::EMPTY,
        },
        vec![],
    );
    let get = f.build(
        Lolepop::Get {
            q: E,
            cols: cols(&[(E, 1)]),
            preds: PredSet::EMPTY,
        },
        vec![ix],
    );
    let join = f.build(
        Lolepop::Join {
            flavor: JoinFlavor::MG,
            join_preds: PredSet::single(P_JOIN),
            residual: PredSet::EMPTY,
        },
        vec![d_sorted, get],
    );
    // 2 'Haas' depts × 5 emps each = 10 rows.
    assert_eq!(f.check_against_reference(&join), 10);
}

#[test]
fn nested_loop_with_pushed_join_pred() {
    let f = Fx::new(SQL);
    let d = dept_scan(&f, PredSet::single(P_MGR));
    // Inner applies the join predicate per probe (sideways info passing).
    let e = emp_scan(&f, PredSet::single(P_JOIN));
    let nl = f.build(
        Lolepop::Join {
            flavor: JoinFlavor::NL,
            join_preds: PredSet::single(P_JOIN),
            residual: PredSet::EMPTY,
        },
        vec![d, e],
    );
    assert_eq!(f.check_against_reference(&nl), 10);
}

#[test]
fn nested_loop_with_index_probe_inner() {
    let f = Fx::new(SQL);
    let d = dept_scan(&f, PredSet::single(P_MGR));
    // Inner: index probe on EMP.DNO bound per outer tuple, then GET.
    let mut ixcols = cols(&[(E, 2)]);
    ixcols.insert(QCol::new(E, TID_COL));
    let ix = f.build(
        Lolepop::Access {
            spec: AccessSpec::Index {
                index: IndexId(0),
                q: E,
            },
            cols: ixcols,
            preds: PredSet::single(P_JOIN),
        },
        vec![],
    );
    let get = f.build(
        Lolepop::Get {
            q: E,
            cols: cols(&[(E, 1)]),
            preds: PredSet::EMPTY,
        },
        vec![ix],
    );
    let nl = f.build(
        Lolepop::Join {
            flavor: JoinFlavor::NL,
            join_preds: PredSet::single(P_JOIN),
            residual: PredSet::EMPTY,
        },
        vec![d, get],
    );
    let mut ex = Executor::new(&f.db, &f.query);
    let got = ex.run(&nl).unwrap();
    assert_eq!(got.rows.len(), 10);
    // Probes happened (2 outer tuples → 2 probes).
    assert_eq!(ex.stats().probes, 2);
    let want = reference_eval(&f.db, &f.query).unwrap();
    assert!(rows_equal_multiset(&got.rows, &want));
}

#[test]
fn hash_join_matches_reference() {
    let f = Fx::new(SQL);
    let d = dept_scan(&f, PredSet::single(P_MGR));
    let e = emp_scan(&f, PredSet::EMPTY);
    let ha = f.build(
        Lolepop::Join {
            flavor: JoinFlavor::HA,
            join_preds: PredSet::single(P_JOIN),
            residual: PredSet::single(P_JOIN),
        },
        vec![d, e],
    );
    assert_eq!(f.check_against_reference(&ha), 10);
}

#[test]
fn materialized_inner_is_built_once() {
    let f = Fx::new(SQL);
    let d = dept_scan(&f, PredSet::single(P_MGR));
    // STORE the projected inner, re-ACCESS it with the join pred (§4.5.2).
    let e = emp_scan(&f, PredSet::EMPTY);
    let store = f.build(Lolepop::Store, vec![e]);
    let re = f.build(
        Lolepop::Access {
            spec: AccessSpec::TempHeap,
            cols: cols(&[(E, 1), (E, 2)]),
            preds: PredSet::single(P_JOIN),
        },
        vec![store],
    );
    let nl = f.build(
        Lolepop::Join {
            flavor: JoinFlavor::NL,
            join_preds: PredSet::single(P_JOIN),
            residual: PredSet::EMPTY,
        },
        vec![d, re],
    );
    let mut ex = Executor::new(&f.db, &f.query);
    let got = ex.run(&nl).unwrap();
    assert_eq!(got.rows.len(), 10);
    // The temp was materialized exactly once despite 2 probes.
    assert_eq!(ex.stats().temps_built, 1);
    let want = reference_eval(&f.db, &f.query).unwrap();
    assert!(rows_equal_multiset(&got.rows, &want));
}

#[test]
fn dynamic_index_on_temp_inner() {
    let f = Fx::new(SQL);
    let d = dept_scan(&f, PredSet::single(P_MGR));
    let e = emp_scan(&f, PredSet::EMPTY);
    let store = f.build(Lolepop::Store, vec![e]);
    let key = vec![QCol::new(E, ColId(2))];
    let bix = f.build(Lolepop::BuildIndex { key: key.clone() }, vec![store]);
    let probe = f.build(
        Lolepop::Access {
            spec: AccessSpec::TempIndex { key },
            cols: cols(&[(E, 1), (E, 2)]),
            preds: PredSet::single(P_JOIN),
        },
        vec![bix],
    );
    let nl = f.build(
        Lolepop::Join {
            flavor: JoinFlavor::NL,
            join_preds: PredSet::single(P_JOIN),
            residual: PredSet::EMPTY,
        },
        vec![d, probe],
    );
    let mut ex = Executor::new(&f.db, &f.query);
    let got = ex.run(&nl).unwrap();
    assert_eq!(got.rows.len(), 10);
    assert_eq!(ex.stats().indexes_built, 1);
    assert_eq!(ex.stats().probes, 2);
    let want = reference_eval(&f.db, &f.query).unwrap();
    assert!(rows_equal_multiset(&got.rows, &want));
}

#[test]
fn ship_counts_traffic_and_preserves_rows() {
    let f = Fx::new(SQL);
    let d = dept_scan(&f, PredSet::single(P_MGR));
    let shipped = f.build(
        Lolepop::Ship {
            to: starqo_catalog::SiteId(1),
        },
        vec![d.clone()],
    );
    let mut ex = Executor::new(&f.db, &f.query);
    let b = starqo_exec::eval::is_correlated(&shipped, &f.query);
    assert!(!b);
    let rows = ex.eval(&shipped, &Default::default()).unwrap();
    assert_eq!(rows.len(), 2);
    assert!(ex.stats().bytes_shipped > 0);
    assert!(ex.stats().msgs >= 1);
}

#[test]
fn filter_and_union_execute() {
    let f = Fx::new(SQL);
    let d_all = dept_scan(&f, PredSet::EMPTY);
    let filtered = f.build(
        Lolepop::Filter {
            preds: PredSet::single(P_MGR),
        },
        vec![d_all],
    );
    let other = dept_scan(&f, PredSet::single(P_MGR));
    let union = f.build(Lolepop::Union, vec![filtered, other]);
    let mut ex = Executor::new(&f.db, &f.query);
    let rows = ex.eval(&union, &Default::default()).unwrap();
    assert_eq!(rows.len(), 4); // 2 Haas depts twice
}

#[test]
fn btree_scan_delivers_key_order() {
    let f = Fx::new("SELECT E.ENO FROM EMP E");
    let scan = f.build(
        Lolepop::Access {
            spec: AccessSpec::BTreeTable(QId(0)),
            cols: cols(&[(QId(0), 0)]),
            preds: PredSet::EMPTY,
        },
        vec![],
    );
    let mut ex = Executor::new(&f.db, &f.query);
    let rows = ex.eval(&scan, &Default::default()).unwrap();
    let vals: Vec<i64> = rows
        .iter()
        .map(|r| match r.get(0) {
            Value::Int(i) => *i,
            _ => panic!(),
        })
        .collect();
    let mut sorted = vals.clone();
    sorted.sort();
    assert_eq!(vals, sorted);
    assert_eq!(vals.len(), 30);
}

#[test]
fn extension_op_executes_via_registry() {
    let f = Fx::new(SQL);
    let d = dept_scan(&f, PredSet::single(P_MGR));
    // A trivial extension: DEDUP (distinct rows).
    let dd = {
        let ctx = PropCtx::new(f.db.catalog(), &f.query, &f.model);
        let mut eng = PropEngine::new();
        eng.register_ext(
            "DEDUP",
            Arc::new(|_op, inputs, _ctx| {
                let mut out = inputs[0].clone();
                out.card = (out.card / 2.0).max(1.0);
                Ok(out)
            }),
        );
        eng.build(
            Lolepop::Ext {
                name: Arc::from("DEDUP"),
                args: vec![],
                arity: 1,
            },
            vec![d],
            &ctx,
        )
        .unwrap()
    };
    let mut ex = Executor::new(&f.db, &f.query);
    // Not registered in the executor: error.
    assert!(ex.eval(&dd, &Default::default()).is_err());
    ex.register_ext(
        "DEDUP",
        Arc::new(|_q, _op, inputs, _schema| {
            let mut rows = inputs[0].1.clone();
            rows.sort();
            rows.dedup();
            Ok(rows)
        }),
    );
    let rows = ex.eval(&dd, &Default::default()).unwrap();
    assert_eq!(rows.len(), 2);
}

#[test]
fn reference_eval_handles_select_star() {
    let cat = catalog();
    let db = database(cat.clone());
    let q = parse_query(&cat, "SELECT * FROM DEPT D WHERE D.MGR = 'Haas'").unwrap();
    let rows = reference_eval(&db, &q).unwrap();
    assert_eq!(rows.len(), 2);
    assert_eq!(rows[0].arity(), 2);
}

//! Newtype identifiers for catalog objects.
//!
//! Small integer newtypes keep hot structures (plan property vectors,
//! predicate bitsets) compact, per the usual database-engine idiom.

use std::fmt;

/// Identifier of a stored table in the catalog.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TableId(pub u32);

/// Identifier of a column *within its table* (0-based position).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ColId(pub u32);

/// Identifier of an access path (index) in the catalog.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct IndexId(pub u32);

/// Identifier of a site in the (simulated) distributed system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SiteId(pub u16);

/// The pseudo-column holding a tuple identifier (TID).
///
/// The paper's index `ACCESS` produces a stream that "includes as one
/// 'column' the tuple identifier (TID)"; `GET` then dereferences it. We model
/// the TID as a distinguished column id so it can appear in column sets and
/// stream schemas uniformly.
pub const TID_COL: ColId = ColId(u32::MAX);

impl ColId {
    /// True if this is the TID pseudo-column.
    #[inline]
    pub fn is_tid(self) -> bool {
        self == TID_COL
    }
}

impl fmt::Display for TableId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl fmt::Display for ColId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_tid() {
            write!(f, "TID")
        } else {
            write!(f, "c{}", self.0)
        }
    }
}

impl fmt::Display for IndexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ix{}", self.0)
    }
}

impl fmt::Display for SiteId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "site{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tid_col_is_distinguished() {
        assert!(TID_COL.is_tid());
        assert!(!ColId(0).is_tid());
        assert_eq!(TID_COL.to_string(), "TID");
    }

    #[test]
    fn ids_order_and_display() {
        assert!(TableId(1) < TableId(2));
        assert_eq!(TableId(3).to_string(), "t3");
        assert_eq!(SiteId(2).to_string(), "site2");
        assert_eq!(IndexId(7).to_string(), "ix7");
        assert_eq!(ColId(4).to_string(), "c4");
    }
}

//! A shared, versioned catalog for concurrent serving.
//!
//! The optimizer treats the catalog as an immutable snapshot (`Arc<Catalog>`),
//! which is exactly right for one optimization — but a serving layer that
//! caches plans across many optimizations needs to know *which* snapshot a
//! plan was optimized against. [`SharedCatalog`] pairs the current snapshot
//! with a monotonically increasing **epoch**: every mutation (stats refresh,
//! index create/drop) installs a new snapshot and bumps the epoch, so a plan
//! cached under epoch `e` is observably stale the moment the epoch moves.
//! Consumers never block mutators for long — reads take a shared lock just
//! long enough to clone an `Arc`.

use std::sync::{Arc, RwLock, RwLockReadGuard, RwLockWriteGuard};

use crate::catalog::Catalog;
use crate::error::Result;

/// The epoch of the initial snapshot.
pub const INITIAL_EPOCH: u64 = 0;

/// A thread-safe, versioned handle to the current catalog snapshot.
#[derive(Debug)]
pub struct SharedCatalog {
    inner: RwLock<(Arc<Catalog>, u64)>,
}

impl SharedCatalog {
    pub fn new(catalog: Arc<Catalog>) -> Self {
        SharedCatalog {
            inner: RwLock::new((catalog, INITIAL_EPOCH)),
        }
    }

    fn read(&self) -> RwLockReadGuard<'_, (Arc<Catalog>, u64)> {
        // A poisoned lock only means a panic elsewhere; the data (an Arc
        // swap + a counter) is always internally consistent.
        self.inner.read().unwrap_or_else(|p| p.into_inner())
    }

    fn write(&self) -> RwLockWriteGuard<'_, (Arc<Catalog>, u64)> {
        self.inner.write().unwrap_or_else(|p| p.into_inner())
    }

    /// The current snapshot and its epoch, atomically.
    pub fn snapshot(&self) -> (Arc<Catalog>, u64) {
        let g = self.read();
        (Arc::clone(&g.0), g.1)
    }

    /// The current snapshot.
    pub fn catalog(&self) -> Arc<Catalog> {
        Arc::clone(&self.read().0)
    }

    /// The current epoch.
    pub fn epoch(&self) -> u64 {
        self.read().1
    }

    /// Apply an arbitrary copy-on-write mutation: `f` receives the current
    /// snapshot and returns the successor. On success the new snapshot is
    /// installed and the bumped epoch returned; on error nothing changes.
    pub fn update(&self, f: impl FnOnce(&Catalog) -> Result<Catalog>) -> Result<u64> {
        let mut g = self.write();
        let next = f(&g.0)?;
        g.0 = Arc::new(next);
        g.1 += 1;
        Ok(g.1)
    }

    /// Replace one table's cardinality statistic (stats refresh).
    pub fn set_table_card(&self, table: &str, card: u64) -> Result<u64> {
        self.update(|c| c.with_table_card(table, card))
    }

    /// Replace one column's distinct-value statistic.
    pub fn set_column_distinct(
        &self,
        table: &str,
        column: &str,
        distinct: Option<u64>,
    ) -> Result<u64> {
        self.update(|c| c.with_column_distinct(table, column, distinct))
    }

    /// Define a new index (DDL).
    pub fn create_index(
        &self,
        name: &str,
        table: &str,
        cols: &[&str],
        unique: bool,
        clustered: bool,
    ) -> Result<u64> {
        self.update(|c| c.with_index(name, table, cols, unique, clustered))
    }

    /// Drop an index (DDL).
    pub fn drop_index(&self, name: &str) -> Result<u64> {
        self.update(|c| c.without_index(name))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::StorageKind;
    use crate::value::DataType;

    fn demo() -> Arc<Catalog> {
        Arc::new(
            Catalog::builder()
                .site("NY")
                .table("DEPT", "NY", StorageKind::Heap, 50)
                .column("DNO", DataType::Int, Some(50))
                .column("MGR", DataType::Str, Some(40))
                .build()
                .unwrap(),
        )
    }

    #[test]
    fn mutations_bump_the_epoch_and_swap_the_snapshot() {
        let shared = SharedCatalog::new(demo());
        assert_eq!(shared.epoch(), INITIAL_EPOCH);
        let before = shared.catalog();

        let e1 = shared.set_table_card("DEPT", 5000).unwrap();
        assert_eq!(e1, 1);
        assert_eq!(shared.catalog().table_by_name("DEPT").unwrap().card, 5000);
        // The old snapshot is untouched — optimizations in flight against it
        // stay self-consistent.
        assert_eq!(before.table_by_name("DEPT").unwrap().card, 50);

        let e2 = shared
            .create_index("DEPT_DNO", "DEPT", &["DNO"], true, false)
            .unwrap();
        assert_eq!(e2, 2);
        assert!(shared.catalog().index_by_name("DEPT_DNO").is_ok());

        let e3 = shared.drop_index("DEPT_DNO").unwrap();
        assert_eq!(e3, 3);
        assert!(shared.catalog().index_by_name("DEPT_DNO").is_err());
    }

    #[test]
    fn failed_mutations_leave_epoch_and_snapshot_alone() {
        let shared = SharedCatalog::new(demo());
        assert!(shared.set_table_card("NOPE", 1).is_err());
        assert!(shared.drop_index("NOPE").is_err());
        assert!(shared.set_column_distinct("DEPT", "NOPE", Some(3)).is_err());
        assert_eq!(shared.epoch(), INITIAL_EPOCH);
    }

    #[test]
    fn snapshot_is_atomic() {
        let shared = SharedCatalog::new(demo());
        shared.set_column_distinct("DEPT", "MGR", Some(7)).unwrap();
        let (cat, epoch) = shared.snapshot();
        assert_eq!(epoch, 1);
        let t = cat.table_by_name("DEPT").unwrap();
        assert_eq!(t.column_by_name("MGR").unwrap().1.distinct, Some(7));
    }

    #[test]
    fn index_renumbering_after_drop() {
        let shared = SharedCatalog::new(demo());
        shared
            .create_index("IX_A", "DEPT", &["DNO"], false, false)
            .unwrap();
        shared
            .create_index("IX_B", "DEPT", &["MGR"], false, false)
            .unwrap();
        shared.drop_index("IX_A").unwrap();
        let cat = shared.catalog();
        let b = cat.index_by_name("IX_B").unwrap();
        assert_eq!(b.id.0, 0, "surviving index renumbered to position");
        let tid = cat.table_by_name("DEPT").unwrap().id;
        assert_eq!(cat.indexes_on(tid).count(), 1);
    }

    #[test]
    fn duplicate_index_rejected() {
        let shared = SharedCatalog::new(demo());
        shared
            .create_index("IX", "DEPT", &["DNO"], false, false)
            .unwrap();
        assert!(shared
            .create_index("IX", "DEPT", &["DNO"], false, false)
            .is_err());
        assert_eq!(shared.epoch(), 1);
    }
}

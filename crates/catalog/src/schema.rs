//! Table and column schemas with statistics.

use crate::ids::{ColId, SiteId, TableId};
use crate::value::DataType;

/// A column definition with the statistics the cost model needs.
#[derive(Debug, Clone)]
pub struct Column {
    pub name: String,
    pub data_type: DataType,
    /// Estimated number of distinct values. `None` means "unknown"; the
    /// selectivity model then falls back to System-R style defaults.
    pub distinct: Option<u64>,
    /// Stored width in bytes (defaults to the type's nominal width).
    pub width: u32,
}

impl Column {
    pub fn new(name: impl Into<String>, data_type: DataType) -> Self {
        Column {
            name: name.into(),
            data_type,
            distinct: None,
            width: data_type.width(),
        }
    }

    pub fn with_distinct(mut self, distinct: u64) -> Self {
        self.distinct = Some(distinct.max(1));
        self
    }

    pub fn with_width(mut self, width: u32) -> Self {
        self.width = width.max(1);
        self
    }
}

/// How a table's primary data is stored — the paper's storage-manager kinds
/// (§4.5.2, [LIND 87]): a physically-sequential heap, or a B-tree keyed on
/// some column list (which then yields tuples in key order).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageKind {
    Heap,
    BTree { key: Vec<ColId> },
}

impl StorageKind {
    /// Short name used by rule conditions (`storage_kind(T) == "heap"`).
    pub fn name(&self) -> &'static str {
        match self {
            StorageKind::Heap => "heap",
            StorageKind::BTree { .. } => "btree",
        }
    }
}

/// A stored base table.
#[derive(Debug, Clone)]
pub struct Table {
    pub id: TableId,
    pub name: String,
    pub columns: Vec<Column>,
    /// Estimated (catalog) cardinality in tuples.
    pub card: u64,
    /// Site at which the table is stored.
    pub site: SiteId,
    pub storage: StorageKind,
}

impl Table {
    /// Total row width in bytes.
    pub fn row_width(&self) -> u32 {
        self.columns.iter().map(|c| c.width).sum::<u32>().max(1)
    }

    /// Width of a subset of columns, in bytes.
    pub fn cols_width(&self, cols: &[ColId]) -> u32 {
        cols.iter()
            .map(|c| self.column(*c).map(|col| col.width).unwrap_or(8))
            .sum::<u32>()
            .max(1)
    }

    /// Look a column up by position.
    pub fn column(&self, id: ColId) -> Option<&Column> {
        self.columns.get(id.0 as usize)
    }

    /// Look a column up by name (case-insensitive).
    pub fn column_by_name(&self, name: &str) -> Option<(ColId, &Column)> {
        self.columns
            .iter()
            .enumerate()
            .find(|(_, c)| c.name.eq_ignore_ascii_case(name))
            .map(|(i, c)| (ColId(i as u32), c))
    }

    /// Estimated distinct values of a column, with the System-R style default
    /// of `min(card, max(card/10, 1))` when statistics are missing.
    pub fn distinct(&self, col: ColId) -> u64 {
        let default = (self.card / 10).max(1).min(self.card.max(1));
        self.column(col)
            .and_then(|c| c.distinct)
            .unwrap_or(default)
            .max(1)
    }

    /// The native tuple order the storage manager delivers ("unknown unless
    /// the table is known to store tuples in some order", §3.1).
    pub fn native_order(&self) -> &[ColId] {
        match &self.storage {
            StorageKind::Heap => &[],
            StorageKind::BTree { key } => key,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dept() -> Table {
        Table {
            id: TableId(0),
            name: "DEPT".into(),
            columns: vec![
                Column::new("DNO", DataType::Int).with_distinct(50),
                Column::new("MGR", DataType::Str),
                Column::new("BUDGET", DataType::Double),
            ],
            card: 50,
            site: SiteId(0),
            storage: StorageKind::Heap,
        }
    }

    #[test]
    fn widths() {
        let t = dept();
        assert_eq!(t.row_width(), 8 + 16 + 8);
        assert_eq!(t.cols_width(&[ColId(0), ColId(1)]), 24);
    }

    #[test]
    fn column_lookup() {
        let t = dept();
        assert_eq!(t.column_by_name("mgr").unwrap().0, ColId(1));
        assert!(t.column_by_name("nope").is_none());
        assert_eq!(t.column(ColId(2)).unwrap().name, "BUDGET");
    }

    #[test]
    fn distinct_defaults() {
        let t = dept();
        assert_eq!(t.distinct(ColId(0)), 50);
        // MGR has no stats: default card/10 = 5.
        assert_eq!(t.distinct(ColId(1)), 5);
    }

    #[test]
    fn native_order_follows_storage() {
        let mut t = dept();
        assert!(t.native_order().is_empty());
        t.storage = StorageKind::BTree {
            key: vec![ColId(0)],
        };
        assert_eq!(t.native_order(), &[ColId(0)]);
        assert_eq!(t.storage.name(), "btree");
    }
}

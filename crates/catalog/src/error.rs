//! Catalog error type.

use std::fmt;

/// Errors raised while building or querying the catalog.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CatalogError {
    /// A name lookup failed.
    NotFound { kind: &'static str, name: String },
    /// A definition collides with an existing object.
    Duplicate { kind: &'static str, name: String },
    /// A definition is internally inconsistent (e.g. index on a missing column).
    Invalid(String),
}

pub type Result<T> = std::result::Result<T, CatalogError>;

impl fmt::Display for CatalogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CatalogError::NotFound { kind, name } => write!(f, "{kind} not found: {name}"),
            CatalogError::Duplicate { kind, name } => write!(f, "duplicate {kind}: {name}"),
            CatalogError::Invalid(msg) => write!(f, "invalid catalog definition: {msg}"),
        }
    }
}

impl std::error::Error for CatalogError {}

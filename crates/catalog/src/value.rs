//! Runtime values and data types.
//!
//! `Value` is the single scalar currency of the whole system: stored tuples,
//! predicate constants, sort keys, and B-tree keys are all built from it. It
//! therefore carries a *total* order (NULL first, then by type, doubles via a
//! canonical bit pattern) so it can key `BTreeMap`s and drive `SORT`.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// The data types supported by the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    Bool,
    Int,
    Double,
    Str,
}

impl DataType {
    /// Nominal stored width in bytes, used by the cost model to size streams.
    pub fn width(self) -> u32 {
        match self {
            DataType::Bool => 1,
            DataType::Int => 8,
            DataType::Double => 8,
            DataType::Str => 16,
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Bool => "bool",
            DataType::Int => "int",
            DataType::Double => "double",
            DataType::Str => "str",
        };
        f.write_str(s)
    }
}

/// A scalar runtime value.
#[derive(Debug, Clone)]
pub enum Value {
    Null,
    Bool(bool),
    Int(i64),
    Double(f64),
    Str(Arc<str>),
}

impl Value {
    /// Convenience constructor for string values.
    pub fn str(s: impl AsRef<str>) -> Self {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// The type of this value, or `None` for NULL.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Bool(_) => Some(DataType::Bool),
            Value::Int(_) => Some(DataType::Int),
            Value::Double(_) => Some(DataType::Double),
            Value::Str(_) => Some(DataType::Str),
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view (ints widen to doubles) for arithmetic and comparisons.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Double(d) => Some(*d),
            _ => None,
        }
    }

    fn type_rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) | Value::Double(_) => 2,
            Value::Str(_) => 3,
        }
    }

    /// Canonical form of a double: normalizes NaN and -0.0 so that values
    /// that should be equal compare and hash equally.
    fn canonical_f64(d: f64) -> f64 {
        if d.is_nan() {
            f64::NAN
        } else if d == 0.0 {
            0.0
        } else {
            d
        }
    }

    fn canonical_f64_bits(d: f64) -> u64 {
        Value::canonical_f64(d).to_bits()
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (Double(a), Double(b)) => Value::canonical_f64(*a).total_cmp(&Value::canonical_f64(*b)),
            (Int(a), Double(b)) => (*a as f64).total_cmp(&Value::canonical_f64(*b)),
            (Double(a), Int(b)) => Value::canonical_f64(*a).total_cmp(&(*b as f64)),
            (Str(a), Str(b)) => a.as_ref().cmp(b.as_ref()),
            _ => self.type_rank().cmp(&other.type_rank()),
        }
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            Value::Bool(b) => {
                1u8.hash(state);
                b.hash(state);
            }
            // Ints and doubles that compare equal must hash equally, so hash
            // every numeric through its canonical f64 bit pattern.
            Value::Int(i) => {
                2u8.hash(state);
                Value::canonical_f64_bits(*i as f64).hash(state);
            }
            Value::Double(d) => {
                2u8.hash(state);
                Value::canonical_f64_bits(*d).hash(state);
            }
            Value::Str(s) => {
                3u8.hash(state);
                s.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Double(d) => write!(f, "{d}"),
            Value::Str(s) => write!(f, "'{s}'"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Double(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::str(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn total_order_across_types() {
        let vals = [
            Value::Null,
            Value::Bool(false),
            Value::Bool(true),
            Value::Int(-3),
            Value::Int(7),
            Value::str("a"),
            Value::str("b"),
        ];
        for w in vals.windows(2) {
            assert!(w[0] < w[1], "{} !< {}", w[0], w[1]);
        }
    }

    #[test]
    fn numeric_cross_type_equality() {
        assert_eq!(Value::Int(3), Value::Double(3.0));
        assert!(Value::Int(3) < Value::Double(3.5));
        assert!(Value::Double(2.5) < Value::Int(3));
        assert_eq!(hash_of(&Value::Int(3)), hash_of(&Value::Double(3.0)));
    }

    #[test]
    fn double_canonicalization() {
        assert_eq!(Value::Double(0.0), Value::Double(-0.0));
        assert_eq!(hash_of(&Value::Double(0.0)), hash_of(&Value::Double(-0.0)));
        // NaNs are equal to each other under total order semantics.
        assert_eq!(
            Value::Double(f64::NAN).cmp(&Value::Double(f64::NAN)),
            Ordering::Equal
        );
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::str("Haas").to_string(), "'Haas'");
        assert_eq!(Value::Int(42).to_string(), "42");
    }

    #[test]
    fn as_f64_views() {
        assert_eq!(Value::Int(2).as_f64(), Some(2.0));
        assert_eq!(Value::Double(2.5).as_f64(), Some(2.5));
        assert_eq!(Value::str("x").as_f64(), None);
        assert_eq!(Value::Null.as_f64(), None);
    }

    #[test]
    fn datatype_widths() {
        assert_eq!(DataType::Bool.width(), 1);
        assert_eq!(DataType::Int.width(), 8);
        assert_eq!(DataType::Str.width(), 16);
    }
}

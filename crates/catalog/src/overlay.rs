//! Per-fingerprint catalog overlays: a base catalog snapshot plus a set
//! of table-cardinality overrides, materialized copy-on-write.
//!
//! The adaptive serving loop refreshes what it *observed* (per-fingerprint
//! actual row counts from the feedback plane) into what the optimizer
//! *reads* (table cardinalities). An overlay scopes those corrections to
//! one re-optimization: the shared catalog snapshot stays untouched — no
//! epoch bump, no cache invalidation storm — and the overrides die with
//! the re-planned candidate. Overrides accumulate in insertion order and
//! materialize through the catalog's own copy-on-write mutators, so a
//! materialized overlay is an ordinary [`Catalog`] the optimizer can own.

use std::sync::Arc;

use crate::catalog::Catalog;
use crate::error::Result;

/// A base catalog plus pending table-cardinality overrides.
#[derive(Debug, Clone)]
pub struct CatalogOverlay {
    base: Arc<Catalog>,
    /// `(table name, cardinality)` in insertion order; the last override
    /// for a table wins.
    overrides: Vec<(String, u64)>,
}

impl CatalogOverlay {
    /// An overlay over `base` with no overrides yet.
    pub fn new(base: Arc<Catalog>) -> CatalogOverlay {
        CatalogOverlay {
            base,
            overrides: Vec::new(),
        }
    }

    /// The untouched base snapshot.
    pub fn base(&self) -> &Arc<Catalog> {
        &self.base
    }

    /// Queue a table-cardinality override (clamped to ≥ 1 row; a zero
    /// cardinality would divide by zero in selectivity arithmetic and the
    /// observation "no rows this run" is not "the table is empty").
    pub fn set_table_card(&mut self, table: &str, card: u64) {
        self.overrides.push((table.to_string(), card.max(1)));
    }

    /// Pending overrides, insertion order.
    pub fn overrides(&self) -> &[(String, u64)] {
        &self.overrides
    }

    /// Whether any override is queued.
    pub fn is_empty(&self) -> bool {
        self.overrides.is_empty()
    }

    /// Materialize: one copy-on-write pass applying every override to the
    /// base. With no overrides the base `Arc` is shared, not copied.
    /// Fails if an override names a table the base does not have.
    pub fn materialize(&self) -> Result<Arc<Catalog>> {
        if self.overrides.is_empty() {
            return Ok(Arc::clone(&self.base));
        }
        let mut cat: Option<Catalog> = None;
        for (table, card) in &self.overrides {
            let next = match cat.as_ref() {
                Some(c) => c.with_table_card(table, *card)?,
                None => self.base.with_table_card(table, *card)?,
            };
            cat = Some(next);
        }
        Ok(Arc::new(cat.unwrap_or_else(|| (*self.base).clone())))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::StorageKind;
    use crate::value::DataType;

    fn base() -> Arc<Catalog> {
        Arc::new(
            Catalog::builder()
                .table("DEPT", "x", StorageKind::Heap, 50)
                .column("DNO", DataType::Int, Some(50))
                .table("EMP", "x", StorageKind::Heap, 10_000)
                .column("DNO", DataType::Int, Some(50))
                .build()
                .unwrap(),
        )
    }

    #[test]
    fn empty_overlay_shares_the_base() {
        let b = base();
        let overlay = CatalogOverlay::new(Arc::clone(&b));
        assert!(overlay.is_empty());
        let m = overlay.materialize().unwrap();
        assert!(Arc::ptr_eq(&m, &b));
    }

    #[test]
    fn overrides_apply_without_touching_the_base() {
        let b = base();
        let mut overlay = CatalogOverlay::new(Arc::clone(&b));
        overlay.set_table_card("EMP", 320_000);
        overlay.set_table_card("DEPT", 0); // clamps to 1
        overlay.set_table_card("EMP", 160_000); // last wins
        let m = overlay.materialize().unwrap();
        assert_eq!(m.table_by_name("EMP").unwrap().card, 160_000);
        assert_eq!(m.table_by_name("DEPT").unwrap().card, 1);
        // The base snapshot is untouched.
        assert_eq!(b.table_by_name("EMP").unwrap().card, 10_000);
        assert_eq!(overlay.base().table_by_name("DEPT").unwrap().card, 50);
    }

    #[test]
    fn unknown_table_fails_materialization() {
        let mut overlay = CatalogOverlay::new(base());
        overlay.set_table_card("NOPE", 7);
        assert!(overlay.materialize().is_err());
    }
}

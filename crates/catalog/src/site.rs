//! Sites of the (simulated) distributed system.

use crate::ids::SiteId;

/// A named site. The paper's R*-style join-site alternatives (§4.2) range
/// over "the set of sites at which tables of the query are stored, plus the
/// query site".
#[derive(Debug, Clone)]
pub struct Site {
    pub id: SiteId,
    pub name: String,
}

impl Site {
    pub fn new(id: SiteId, name: impl Into<String>) -> Self {
        Site {
            id,
            name: name.into(),
        }
    }
}

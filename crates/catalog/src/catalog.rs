//! The system catalog and its builder.

use std::collections::HashMap;

use crate::error::{CatalogError, Result};
use crate::ids::{ColId, IndexId, SiteId, TableId};
use crate::index::Index;
use crate::schema::{Column, StorageKind, Table};
use crate::site::Site;
use crate::value::DataType;

/// The system catalog: sites, tables, and access paths, with name lookup.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    sites: Vec<Site>,
    tables: Vec<Table>,
    indexes: Vec<Index>,
    table_names: HashMap<String, TableId>,
    index_names: HashMap<String, IndexId>,
    /// Indexes grouped by table, for `indexes_on`.
    by_table: HashMap<TableId, Vec<IndexId>>,
}

impl Catalog {
    pub fn builder() -> CatalogBuilder {
        CatalogBuilder::default()
    }

    pub fn sites(&self) -> &[Site] {
        &self.sites
    }

    pub fn site(&self, id: SiteId) -> Option<&Site> {
        self.sites.iter().find(|s| s.id == id)
    }

    pub fn site_name(&self, id: SiteId) -> String {
        self.site(id)
            .map(|s| s.name.clone())
            .unwrap_or_else(|| id.to_string())
    }

    pub fn tables(&self) -> &[Table] {
        &self.tables
    }

    pub fn table(&self, id: TableId) -> &Table {
        &self.tables[id.0 as usize]
    }

    pub fn table_by_name(&self, name: &str) -> Result<&Table> {
        self.table_names
            .get(&name.to_ascii_uppercase())
            .map(|id| self.table(*id))
            .ok_or_else(|| CatalogError::NotFound {
                kind: "table",
                name: name.into(),
            })
    }

    pub fn indexes(&self) -> &[Index] {
        &self.indexes
    }

    #[allow(clippy::should_implement_trait)] // catalog lookup, not ops::Index
    pub fn index(&self, id: IndexId) -> &Index {
        &self.indexes[id.0 as usize]
    }

    pub fn index_by_name(&self, name: &str) -> Result<&Index> {
        self.index_names
            .get(&name.to_ascii_uppercase())
            .map(|id| self.index(*id))
            .ok_or_else(|| CatalogError::NotFound {
                kind: "index",
                name: name.into(),
            })
    }

    /// All access paths defined on `table`.
    pub fn indexes_on(&self, table: TableId) -> impl Iterator<Item = &Index> {
        self.by_table
            .get(&table)
            .into_iter()
            .flatten()
            .map(|id| self.index(*id))
    }

    /// Sites at which any table of the given set is stored.
    pub fn storage_sites(&self, tables: impl IntoIterator<Item = TableId>) -> Vec<SiteId> {
        let mut out: Vec<SiteId> = tables.into_iter().map(|t| self.table(t).site).collect();
        out.sort();
        out.dedup();
        out
    }

    // ---- copy-on-write mutations ------------------------------------
    //
    // A deployed catalog is an immutable snapshot shared by `Arc`; DDL and
    // stats refresh produce a *new* catalog (see [`crate::SharedCatalog`],
    // which pairs these with an epoch counter so plan caches can detect
    // staleness). Each method clones, edits, and returns the edited copy.

    /// A copy of this catalog with `table`'s cardinality replaced.
    pub fn with_table_card(&self, table: &str, card: u64) -> Result<Catalog> {
        let tid = self.table_by_name(table)?.id;
        let mut cat = self.clone();
        cat.tables[tid.0 as usize].card = card;
        Ok(cat)
    }

    /// A copy of this catalog with one column's distinct-value statistic
    /// replaced (`None` resets it to "unknown").
    pub fn with_column_distinct(
        &self,
        table: &str,
        column: &str,
        distinct: Option<u64>,
    ) -> Result<Catalog> {
        let t = self.table_by_name(table)?;
        let (cid, _) = t
            .column_by_name(column)
            .ok_or_else(|| CatalogError::NotFound {
                kind: "column",
                name: format!("{table}.{column}"),
            })?;
        let tid = t.id;
        let mut cat = self.clone();
        cat.tables[tid.0 as usize].columns[cid.0 as usize].distinct = distinct.map(|d| d.max(1));
        Ok(cat)
    }

    /// A copy of this catalog with a new index defined.
    pub fn with_index(
        &self,
        name: &str,
        table: &str,
        cols: &[&str],
        unique: bool,
        clustered: bool,
    ) -> Result<Catalog> {
        let name = name.to_ascii_uppercase();
        if self.index_names.contains_key(&name) {
            return Err(CatalogError::Duplicate {
                kind: "index",
                name,
            });
        }
        let t = self.table_by_name(table)?;
        let mut col_ids = Vec::with_capacity(cols.len());
        for c in cols {
            let (cid, _) = t.column_by_name(c).ok_or_else(|| {
                CatalogError::Invalid(format!("index {name}: no column {c} on {table}"))
            })?;
            col_ids.push(cid);
        }
        if col_ids.is_empty() {
            return Err(CatalogError::Invalid(format!(
                "index {name} has no columns"
            )));
        }
        let tid = t.id;
        let mut cat = self.clone();
        let id = IndexId(cat.indexes.len() as u32);
        cat.index_names.insert(name.clone(), id);
        cat.by_table.entry(tid).or_default().push(id);
        cat.indexes.push(Index {
            id,
            name,
            table: tid,
            cols: col_ids,
            unique,
            clustered,
        });
        Ok(cat)
    }

    /// A copy of this catalog with the named index removed. Surviving
    /// indexes are renumbered (ids are positions, valid only within one
    /// catalog snapshot).
    pub fn without_index(&self, name: &str) -> Result<Catalog> {
        let victim = self.index_by_name(name)?.id;
        let mut cat = self.clone();
        cat.indexes.remove(victim.0 as usize);
        cat.index_names.clear();
        cat.by_table.clear();
        for (pos, ix) in cat.indexes.iter_mut().enumerate() {
            ix.id = IndexId(pos as u32);
            cat.index_names.insert(ix.name.clone(), ix.id);
            cat.by_table.entry(ix.table).or_default().push(ix.id);
        }
        Ok(cat)
    }
}

/// Fluent builder for catalogs.
///
/// ```
/// use starqo_catalog::{Catalog, DataType, StorageKind};
/// let cat = Catalog::builder()
///     .site("NY")
///     .table("DEPT", "NY", StorageKind::Heap, 50)
///     .column("DNO", DataType::Int, Some(50))
///     .column("MGR", DataType::Str, Some(40))
///     .index("DEPT_DNO", "DEPT", &["DNO"], true, false)
///     .build()
///     .unwrap();
/// assert_eq!(cat.table_by_name("dept").unwrap().card, 50);
/// ```
#[derive(Debug, Default)]
pub struct CatalogBuilder {
    sites: Vec<Site>,
    tables: Vec<Table>,
    pending_indexes: Vec<(String, String, Vec<String>, bool, bool)>,
}

impl CatalogBuilder {
    /// Register a site; the first site added is the conventional "query site".
    pub fn site(mut self, name: impl Into<String>) -> Self {
        let id = SiteId(self.sites.len() as u16);
        self.sites.push(Site::new(id, name));
        self
    }

    /// Begin a new table stored at `site` (by name) with the given storage
    /// kind and cardinality. Subsequent `column` calls attach to it.
    pub fn table(
        mut self,
        name: impl Into<String>,
        site: &str,
        storage: StorageKind,
        card: u64,
    ) -> Self {
        let site_id = self
            .sites
            .iter()
            .find(|s| s.name.eq_ignore_ascii_case(site))
            .map(|s| s.id)
            .unwrap_or(SiteId(0));
        let id = TableId(self.tables.len() as u32);
        self.tables.push(Table {
            id,
            name: name.into().to_ascii_uppercase(),
            columns: Vec::new(),
            card,
            site: site_id,
            storage,
        });
        self
    }

    /// Add a column to the most recently declared table.
    pub fn column(mut self, name: impl Into<String>, ty: DataType, distinct: Option<u64>) -> Self {
        if let Some(t) = self.tables.last_mut() {
            let mut c = Column::new(name.into().to_ascii_uppercase(), ty);
            c.distinct = distinct.map(|d| d.max(1));
            t.columns.push(c);
        }
        self
    }

    /// Declare an index by table and column names (resolved at `build`).
    pub fn index(
        mut self,
        name: impl Into<String>,
        table: &str,
        cols: &[&str],
        unique: bool,
        clustered: bool,
    ) -> Self {
        self.pending_indexes.push((
            name.into().to_ascii_uppercase(),
            table.to_ascii_uppercase(),
            cols.iter().map(|c| c.to_ascii_uppercase()).collect(),
            unique,
            clustered,
        ));
        self
    }

    pub fn build(self) -> Result<Catalog> {
        let mut cat = Catalog {
            sites: self.sites,
            tables: self.tables,
            ..Default::default()
        };
        if cat.sites.is_empty() {
            cat.sites.push(Site::new(SiteId(0), "local"));
        }
        for t in &cat.tables {
            if t.columns.is_empty() {
                return Err(CatalogError::Invalid(format!(
                    "table {} has no columns",
                    t.name
                )));
            }
            if cat.table_names.insert(t.name.clone(), t.id).is_some() {
                return Err(CatalogError::Duplicate {
                    kind: "table",
                    name: t.name.clone(),
                });
            }
        }
        for (name, table, cols, unique, clustered) in self.pending_indexes {
            let tid = *cat
                .table_names
                .get(&table)
                .ok_or_else(|| CatalogError::NotFound {
                    kind: "table",
                    name: table.clone(),
                })?;
            let t = cat.table(tid).clone();
            let mut col_ids = Vec::with_capacity(cols.len());
            for c in &cols {
                let (cid, _) = t.column_by_name(c).ok_or_else(|| {
                    CatalogError::Invalid(format!("index {name}: no column {c} on {table}"))
                })?;
                col_ids.push(cid);
            }
            if col_ids.is_empty() {
                return Err(CatalogError::Invalid(format!(
                    "index {name} has no columns"
                )));
            }
            let id = IndexId(cat.indexes.len() as u32);
            if cat.index_names.insert(name.clone(), id).is_some() {
                return Err(CatalogError::Duplicate {
                    kind: "index",
                    name,
                });
            }
            cat.by_table.entry(tid).or_default().push(id);
            cat.indexes.push(Index {
                id,
                name,
                table: tid,
                cols: col_ids,
                unique,
                clustered,
            });
        }
        Ok(cat)
    }
}

/// Resolve a dotted `table.column` name pair against the catalog.
pub fn resolve_column(cat: &Catalog, table: &str, column: &str) -> Result<(TableId, ColId)> {
    let t = cat.table_by_name(table)?;
    let (cid, _) = t
        .column_by_name(column)
        .ok_or_else(|| CatalogError::NotFound {
            kind: "column",
            name: format!("{table}.{column}"),
        })?;
    Ok((t.id, cid))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo() -> Catalog {
        Catalog::builder()
            .site("NY")
            .site("LA")
            .table("DEPT", "NY", StorageKind::Heap, 50)
            .column("DNO", DataType::Int, Some(50))
            .column("MGR", DataType::Str, Some(40))
            .table("EMP", "LA", StorageKind::Heap, 10_000)
            .column("ENO", DataType::Int, Some(10_000))
            .column("NAME", DataType::Str, None)
            .column("DNO", DataType::Int, Some(50))
            .index("EMP_DNO", "EMP", &["DNO"], false, false)
            .index("EMP_ENO", "EMP", &["ENO"], true, true)
            .build()
            .unwrap()
    }

    #[test]
    fn builds_and_resolves() {
        let cat = demo();
        assert_eq!(cat.tables().len(), 2);
        assert_eq!(cat.sites().len(), 2);
        let emp = cat.table_by_name("EMP").unwrap();
        assert_eq!(emp.site, SiteId(1));
        assert_eq!(cat.indexes_on(emp.id).count(), 2);
        let dept = cat.table_by_name("dept").unwrap();
        assert_eq!(cat.indexes_on(dept.id).count(), 0);
    }

    #[test]
    fn resolve_column_names() {
        let cat = demo();
        let (t, c) = resolve_column(&cat, "emp", "dno").unwrap();
        assert_eq!(t, TableId(1));
        assert_eq!(c, ColId(2));
        assert!(resolve_column(&cat, "emp", "nope").is_err());
        assert!(resolve_column(&cat, "nope", "dno").is_err());
    }

    #[test]
    fn storage_sites_dedup() {
        let cat = demo();
        let sites = cat.storage_sites([TableId(0), TableId(1), TableId(0)]);
        assert_eq!(sites, vec![SiteId(0), SiteId(1)]);
    }

    #[test]
    fn duplicate_table_rejected() {
        let err = Catalog::builder()
            .table("T", "x", StorageKind::Heap, 1)
            .column("A", DataType::Int, None)
            .table("T", "x", StorageKind::Heap, 1)
            .column("A", DataType::Int, None)
            .build()
            .unwrap_err();
        assert!(matches!(err, CatalogError::Duplicate { .. }));
    }

    #[test]
    fn index_on_missing_column_rejected() {
        let err = Catalog::builder()
            .table("T", "x", StorageKind::Heap, 1)
            .column("A", DataType::Int, None)
            .index("IX", "T", &["B"], false, false)
            .build()
            .unwrap_err();
        assert!(matches!(err, CatalogError::Invalid(_)));
    }

    #[test]
    fn empty_catalog_gets_default_site() {
        let cat = Catalog::builder().build().unwrap();
        assert_eq!(cat.sites().len(), 1);
        assert_eq!(cat.site_name(SiteId(0)), "local");
    }
}

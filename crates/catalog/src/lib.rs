//! # starqo-catalog
//!
//! Catalog substrate for the `starqo` optimizer: data types and values,
//! table/column schemas, statistics, access paths (indexes), sites, and the
//! system catalog itself.
//!
//! The paper (Lohman, SIGMOD 1988, §3.1) initializes plan properties "from
//! the system catalogs": constituent columns (COLS), the SITE at which a
//! table is stored, and the access PATHS defined on it, plus the statistics
//! (cardinalities, distinct values) that drive the estimated properties
//! (CARD, COST). This crate is that catalog.

pub mod catalog;
pub mod error;
pub mod ids;
pub mod index;
pub mod overlay;
pub mod schema;
pub mod shared;
pub mod site;
pub mod value;

pub use catalog::{Catalog, CatalogBuilder};
pub use error::{CatalogError, Result};
pub use ids::{ColId, IndexId, SiteId, TableId, TID_COL};
pub use index::Index;
pub use overlay::CatalogOverlay;
pub use schema::{Column, StorageKind, Table};
pub use shared::SharedCatalog;
pub use site::Site;
pub use value::{DataType, Value};

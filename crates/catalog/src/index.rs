//! Access-path (index) definitions.

use crate::ids::{ColId, IndexId, TableId};

/// A secondary access path on a base table: an ordered list of key columns.
///
/// The paper's PATHS property is a "set of available access paths on (set of)
/// tables, each element an ordered list of columns" (Figure 2); catalog
/// indexes seed that property for base tables.
#[derive(Debug, Clone)]
pub struct Index {
    pub id: IndexId,
    pub name: String,
    pub table: TableId,
    /// Key columns, in order. The order of an index scan is exactly this list.
    pub cols: Vec<ColId>,
    /// Whether the key is unique.
    pub unique: bool,
    /// Whether data pages are clustered on this index (affects GET cost).
    pub clustered: bool,
}

impl Index {
    /// True if `prefix` is a prefix of this index's key columns — the paper's
    /// "order ⊑ a" test ("the ordered list of columns of order are a prefix
    /// of those of access path a").
    pub fn has_prefix(&self, prefix: &[ColId]) -> bool {
        prefix.len() <= self.cols.len() && self.cols.iter().zip(prefix).all(|(a, b)| a == b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ix(cols: Vec<u32>) -> Index {
        Index {
            id: IndexId(0),
            name: "X".into(),
            table: TableId(0),
            cols: cols.into_iter().map(ColId).collect(),
            unique: false,
            clustered: false,
        }
    }

    #[test]
    fn prefix_test() {
        let i = ix(vec![3, 1, 2]);
        assert!(i.has_prefix(&[]));
        assert!(i.has_prefix(&[ColId(3)]));
        assert!(i.has_prefix(&[ColId(3), ColId(1)]));
        assert!(!i.has_prefix(&[ColId(1)]));
        assert!(!i.has_prefix(&[ColId(3), ColId(2)]));
        assert!(!i.has_prefix(&[ColId(3), ColId(1), ColId(2), ColId(0)]));
    }
}

//! Randomized tests over the whole stack (seeded, deterministic).
//!
//! The headline invariant is the paper's implicit soundness contract: the
//! rules generate only *legal* plans, so every alternative the optimizer
//! emits — under any configuration — must compute exactly the reference
//! answer. Seeded random schemas, data, query shapes, and configurations
//! drive that oracle, plus structural invariants on the optimizer output.

use starqo_core::{OptConfig, Optimizer};
use starqo_exec::{reference_eval, rows_equal_multiset, Executor};
use starqo_workload::{query_shape, synth_catalog, synth_database, QueryShape, Rng64, SynthSpec};

fn rand_config(rng: &mut Rng64) -> OptConfig {
    let mut c = OptConfig {
        composite_inners: rng.flip(),
        cartesian: rng.flip(),
        glue_keep_all: true,
        ..Default::default()
    };
    if rng.flip() {
        c = c.enable("hashjoin");
    }
    if rng.flip() {
        c = c.enable("force_projection");
    }
    if rng.flip() {
        c = c.enable("dynamic_index");
    }
    c
}

const SHAPES: [QueryShape; 4] = [
    QueryShape::Chain,
    QueryShape::Star,
    QueryShape::Cycle,
    QueryShape::Clique,
];

/// Every alternative plan for a randomized query computes the reference
/// answer (E13 as a property).
#[test]
fn all_alternatives_match_reference() {
    for seed in 0..24u64 {
        let mut rng = Rng64::new(seed.wrapping_mul(0x5851F42D4C957F2D));
        let shape = SHAPES[rng.index(SHAPES.len())];
        let local_pred = rng.flip();
        let config = rand_config(&mut rng);
        let sites = 1 + rng.index(2);
        let spec = SynthSpec {
            tables: 3,
            card_range: (10, 80),
            index_prob: 0.5,
            btree_prob: 0.3,
            sites,
            ..Default::default()
        };
        let cat = synth_catalog(seed, &spec);
        let db = synth_database(seed, cat.clone());
        let query = query_shape(&cat, shape, 3, local_pred);
        let want = reference_eval(&db, &query).unwrap();
        let opt = Optimizer::new(cat).unwrap();
        let out = opt.optimize(&query, &config).unwrap();
        assert!(!out.root_alternatives.is_empty());
        for plan in out
            .root_alternatives
            .iter()
            .chain(std::iter::once(&out.best))
        {
            let mut ex = Executor::new(&db, &query);
            let got = ex.run(plan).unwrap();
            assert!(
                rows_equal_multiset(&got.rows, &want),
                "seed {seed}: plan diverged: {:?}",
                plan.op_names()
            );
        }
    }
}

/// The chosen plan's relational properties always cover the whole query,
/// its site is the query site, and widening the repertoire never makes
/// the best plan worse.
#[test]
fn best_plan_invariants() {
    for seed in 0..24u64 {
        let mut rng = Rng64::new(seed ^ 0xA5A5_5A5A);
        let shape = SHAPES[rng.index(SHAPES.len())];
        let spec = SynthSpec {
            tables: 4,
            card_range: (20, 400),
            index_prob: 0.5,
            ..Default::default()
        };
        let cat = synth_catalog(seed, &spec);
        let query = query_shape(&cat, shape, 4, true);
        let opt = Optimizer::new(cat).unwrap();

        let narrow = opt.optimize(&query, &OptConfig::default()).unwrap();
        assert_eq!(narrow.best.props.tables, query.all_qset());
        assert_eq!(narrow.best.props.preds, query.all_preds());
        assert_eq!(narrow.best.props.site, query.query_site);
        for c in &query.select {
            assert!(
                narrow.best.props.cols.contains(c),
                "missing select column {c}"
            );
        }

        let wide = opt.optimize(&query, &OptConfig::full()).unwrap();
        assert!(
            wide.best.props.cost.total() <= narrow.best.props.cost.total() + 1e-6,
            "wider repertoire worsened the plan: {} > {}",
            wide.best.props.cost.total(),
            narrow.best.props.cost.total()
        );
    }
}

/// Optimization is deterministic: same inputs, same chosen plan.
#[test]
fn optimization_is_deterministic() {
    for seed in 0..12u64 {
        let spec = SynthSpec {
            tables: 3,
            card_range: (20, 300),
            ..Default::default()
        };
        let cat = synth_catalog(seed, &spec);
        let query = query_shape(&cat, QueryShape::Chain, 3, false);
        let opt = Optimizer::new(cat).unwrap();
        let a = opt.optimize(&query, &OptConfig::full()).unwrap();
        let b = opt.optimize(&query, &OptConfig::full()).unwrap();
        assert_eq!(a.best.fingerprint(), b.best.fingerprint());
        assert_eq!(a.stats, b.stats);
    }
}

/// The cost estimate and the simulated execution agree *directionally*:
/// on the same data, a plan the optimizer says is much cheaper should
/// not do dramatically more page I/O than the plan it beat.
#[test]
fn cost_model_is_directionally_sane() {
    for seed in 0..16u64 {
        let spec = SynthSpec {
            tables: 2,
            card_range: (200, 2_000),
            index_prob: 1.0,
            btree_prob: 0.0,
            ..Default::default()
        };
        let cat = synth_catalog(seed, &spec);
        let db = synth_database(seed, cat.clone());
        let query = query_shape(&cat, QueryShape::Chain, 2, true);
        let opt = Optimizer::new(cat).unwrap();
        let config = OptConfig {
            glue_keep_all: true,
            ..Default::default()
        };
        let out = opt.optimize(&query, &config).unwrap();
        // Measure the best and the worst surviving alternative.
        let best = &out.best;
        let worst = out
            .root_alternatives
            .iter()
            .max_by(|a, b| a.props.cost.total().total_cmp(&b.props.cost.total()))
            .unwrap();
        if worst.props.cost.total() > best.props.cost.total() * 20.0 {
            let mut ex1 = Executor::new(&db, &query);
            ex1.run(best).unwrap();
            let io_best = ex1.stats().pages_read;
            let mut ex2 = Executor::new(&db, &query);
            ex2.run(worst).unwrap();
            let io_worst = ex2.stats().pages_read;
            assert!(
                io_best <= io_worst * 4,
                "seed {seed}: estimated-cheap plan did far more I/O: {io_best} vs {io_worst}"
            );
        }
    }
}

//! Oracle-equivalence harness for the vectorized executor.
//!
//! `starqo-vexec` advertises one non-negotiable invariant: for every plan
//! it supports, its output is **identical** to the serial `starqo-exec`
//! interpreter — same rows, same order, same schema — at any worker count.
//! These tests enforce that over a randomized fleet (every optimizer
//! alternative, every shape, degraded plans included) plus targeted edge
//! cases: empty batches, empty/partial selection vectors, morsel
//! boundaries landing mid-duplicate-key-run in a hash join, and injected
//! faults under multi-threaded morsel scheduling.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use starqo_core::{Budget, OptConfig, Optimizer};
use starqo_exec::{ExecError, Executor, QueryResult};
use starqo_plan::PlanRef;
use starqo_query::Query;
use starqo_storage::Database;
use starqo_vexec::{supports, VexecExecutor, VexecStats, MORSEL_ROWS};
use starqo_workload::{
    query_shape, query_shape_param, synth_catalog, synth_database, QueryShape, Rng64, SynthSpec,
};

const SHAPES: [QueryShape; 4] = [
    QueryShape::Chain,
    QueryShape::Star,
    QueryShape::Cycle,
    QueryShape::Clique,
];

const WORKER_COUNTS: [usize; 3] = [1, 2, 8];

fn rand_config(rng: &mut Rng64) -> OptConfig {
    let mut c = OptConfig {
        composite_inners: rng.flip(),
        cartesian: rng.flip(),
        glue_keep_all: true,
        ..Default::default()
    };
    if rng.flip() {
        c = c.enable("hashjoin");
    }
    if rng.flip() {
        c = c.enable("force_projection");
    }
    if rng.flip() {
        c = c.enable("dynamic_index");
    }
    c
}

/// Run `plan` serially and through vexec at every worker count; assert the
/// results are bit-identical (order included) and that the vexec batch
/// counters do not depend on the worker count. Returns the serial result.
fn assert_equivalent(db: &Database, query: &Query, plan: &PlanRef, ctx: &str) -> QueryResult {
    let want = Executor::new(db, query)
        .run(plan)
        .unwrap_or_else(|e| panic!("{ctx}: serial executor failed: {e}"));
    let mut stats_at: Option<VexecStats> = None;
    for &w in &WORKER_COUNTS {
        let mut vx = VexecExecutor::new(db, query);
        vx.set_workers(w);
        let got = vx
            .run(plan)
            .unwrap_or_else(|e| panic!("{ctx}: vexec({w} workers) failed: {e}"));
        assert_eq!(
            got,
            want,
            "{ctx}: vexec({w} workers) diverged from serial on {:?}",
            plan.op_names()
        );
        let mut s = *vx.stats();
        // Worker-count bookkeeping may legitimately differ; everything
        // else (batches, morsels, rows, I/O accounting) must not.
        s.max_workers = 0;
        match &stats_at {
            None => stats_at = Some(s),
            Some(prev) => assert_eq!(
                &s, prev,
                "{ctx}: vexec stats depend on worker count ({w} workers)"
            ),
        }
    }
    want
}

/// Every supported optimizer alternative — across shapes, sites, storage
/// kinds, and feature toggles — matches the serial oracle exactly at
/// 1, 2, and 8 workers.
#[test]
fn vexec_matches_serial_on_random_fleet() {
    let mut supported = 0usize;
    let mut total = 0usize;
    for seed in 0..24u64 {
        let mut rng = Rng64::new(seed.wrapping_mul(0x5851F42D4C957F2D));
        let shape = SHAPES[rng.index(SHAPES.len())];
        let local_pred = rng.flip();
        let config = rand_config(&mut rng);
        let sites = 1 + rng.index(2);
        let spec = SynthSpec {
            tables: 3,
            card_range: (10, 80),
            index_prob: 0.5,
            btree_prob: 0.3,
            sites,
            ..Default::default()
        };
        let cat = synth_catalog(seed, &spec);
        let db = synth_database(seed, cat.clone());
        let query = query_shape(&cat, shape, 3, local_pred);
        let opt = Optimizer::new(cat).unwrap();
        let out = opt.optimize(&query, &config).unwrap();
        for plan in out
            .root_alternatives
            .iter()
            .chain(std::iter::once(&out.best))
        {
            total += 1;
            if supports(plan, &query).is_err() {
                continue;
            }
            supported += 1;
            assert_equivalent(&db, &query, plan, &format!("seed {seed}"));
        }
    }
    // Correlated NL inners (sideways information passing) fall back to the
    // serial engine and dominate this fleet; everything else should run
    // vectorized. Measured support is ~35% of all alternatives; if this
    // floor regresses, `supports` got too conservative.
    assert!(
        supported * 4 >= total && supported >= 100,
        "vexec supports only {supported}/{total} fleet plans"
    );
}

/// Budget-degraded plans (memo cap forces greedy glue) are still executed
/// bit-identically.
#[test]
fn vexec_matches_serial_on_degraded_plans() {
    let mut checked = 0usize;
    for seed in 0..8u64 {
        let spec = SynthSpec {
            tables: 4,
            card_range: (20, 200),
            index_prob: 0.5,
            ..Default::default()
        };
        let cat = synth_catalog(seed, &spec);
        let db = synth_database(seed, cat.clone());
        let query = query_shape(&cat, SHAPES[seed as usize % SHAPES.len()], 4, true);
        let opt = Optimizer::new(cat).unwrap();
        let config = OptConfig {
            budget: Budget::default().with_memo_cap(2),
            ..OptConfig::full()
        };
        let out = opt.optimize(&query, &config).unwrap();
        assert!(out.degraded, "seed {seed}: memo cap 2 should degrade");
        if supports(&out.best, &query).is_ok() {
            checked += 1;
            assert_equivalent(&db, &query, &out.best, &format!("degraded seed {seed}"));
        }
    }
    assert!(checked > 0, "no degraded plan was vexec-supported");
}

/// Selection-vector edges: a local predicate that matches nothing (empty
/// batches all the way through), one that matches a strict subset, and the
/// no-predicate full-selection case all agree with the oracle.
#[test]
fn vexec_handles_empty_and_partial_selections() {
    let spec = SynthSpec {
        tables: 2,
        card_range: (300, 600),
        index_prob: 1.0,
        btree_prob: 0.0,
        ..Default::default()
    };
    let cat = synth_catalog(7, &spec);
    let db = synth_database(7, cat.clone());
    let opt = Optimizer::new(cat.clone()).unwrap();
    // P0 is drawn from 0..ndv, so -1 never matches, 0 matches a subset,
    // and None drops the local predicate entirely.
    for (param, expect_empty) in [(Some(-1), true), (Some(0), false), (None, false)] {
        let query = query_shape_param(&cat, QueryShape::Chain, 2, param);
        let out = opt
            .optimize(&query, &OptConfig::full().enable("hashjoin"))
            .unwrap();
        for plan in out
            .root_alternatives
            .iter()
            .chain(std::iter::once(&out.best))
        {
            if supports(plan, &query).is_err() {
                continue;
            }
            let want = assert_equivalent(&db, &query, plan, &format!("param {param:?}"));
            if expect_empty {
                assert!(want.rows.is_empty(), "param -1 should select nothing");
            }
        }
    }
}

/// Tables bigger than one morsel, joined on a low-cardinality key: morsel
/// boundaries land in the middle of duplicate-key runs on both sides of a
/// hash join, and the exchange must still reassemble the serial row order.
#[test]
fn vexec_survives_morsel_boundaries_mid_duplicate_run() {
    let spec = SynthSpec {
        tables: 2,
        // > MORSEL_ROWS per table so every scan splits into several morsels.
        card_range: (9_000, 9_500),
        index_prob: 0.0,
        btree_prob: 0.0,
        payload_cols: 1,
        ..Default::default()
    };
    let cat = synth_catalog(3, &spec);
    let db = synth_database(3, cat.clone());
    let query = query_shape(&cat, QueryShape::Chain, 2, false);
    let opt = Optimizer::new(cat).unwrap();
    let out = opt
        .optimize(&query, &OptConfig::full().enable("hashjoin"))
        .unwrap();
    let mut saw_hash_join = false;
    let mut saw_multi_morsel = false;
    for plan in out
        .root_alternatives
        .iter()
        .chain(std::iter::once(&out.best))
    {
        if supports(plan, &query).is_err() {
            continue;
        }
        saw_hash_join |= plan.op_names().iter().any(|n| n.contains("JOIN(HA)"));
        assert_equivalent(&db, &query, plan, "dup-run");
        let mut vx = VexecExecutor::new(&db, &query);
        vx.set_workers(8);
        vx.run(plan).unwrap();
        saw_multi_morsel |= vx.stats().morsels > 1 && vx.stats().rows > MORSEL_ROWS as u64;
    }
    assert!(saw_hash_join, "fleet produced no hash-join alternative");
    assert!(saw_multi_morsel, "tables never split into multiple morsels");
}

/// A panic inside a morsel worker is contained: the pool drains, the run
/// returns `ExecError::Panicked`, and nothing deadlocks — even at 8
/// workers with every morsel panicking.
#[test]
fn vexec_contains_worker_panics() {
    let spec = SynthSpec {
        tables: 2,
        card_range: (9_000, 9_200),
        index_prob: 0.0,
        btree_prob: 0.0,
        ..Default::default()
    };
    let cat = synth_catalog(11, &spec);
    let db = synth_database(11, cat.clone());
    let query = query_shape(&cat, QueryShape::Chain, 2, false);
    let opt = Optimizer::new(cat).unwrap();
    let out = opt.optimize(&query, &OptConfig::full()).unwrap();
    let plan = out.best.clone();
    assert!(supports(&plan, &query).is_ok(), "best plan unsupported");

    // Panic in morsel workers.
    let hits = Arc::new(AtomicUsize::new(0));
    let h = hits.clone();
    let mut vx = VexecExecutor::new(&db, &query);
    vx.set_workers(8);
    vx.set_fault_hook(Arc::new(move |site: &str| {
        if site.starts_with("morsel(") {
            h.fetch_add(1, Ordering::Relaxed);
            panic!("chaos: worker panic at {site}");
        }
        None
    }));
    match vx.run(&plan) {
        Err(ExecError::Panicked(msg)) => assert!(msg.contains("chaos"), "wrong panic: {msg}"),
        other => panic!("expected Panicked, got {other:?}"),
    }
    assert!(hits.load(Ordering::Relaxed) > 0, "hook never fired");

    // Typed injected error at the exchange point.
    let mut vx = VexecExecutor::new(&db, &query);
    vx.set_workers(8);
    vx.set_fault_hook(Arc::new(|site: &str| {
        site.starts_with("exchange(")
            .then(|| format!("chaos: exchange fault at {site}"))
    }));
    match vx.run(&plan) {
        Err(ExecError::Injected(msg)) => assert!(msg.contains("exchange"), "wrong site: {msg}"),
        other => panic!("expected Injected, got {other:?}"),
    }

    // A clean executor on the same plan still matches the oracle — the
    // fault runs above poisoned nothing shared.
    assert_equivalent(&db, &query, &plan, "post-chaos");
}

//! Cross-crate telemetry-plane tests: the striped counters, histograms,
//! and top-K tracker must agree with a deterministic serial total no matter
//! how many threads hammer them, and a snapshot must survive the trip
//! through both exporters (exactly through JSON, faithfully through the
//! Prometheus text format).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use starqo_trace::{
    FeedbackPlane, Histogram, LatencyPath, Metric, Telemetry, TelemetryConfig, TelemetrySnapshot,
};

/// The workload one thread contributes: a deterministic function of its id,
/// so the expected totals are computable without running anything.
fn thread_workload(tid: u64) -> Vec<(u64, u64)> {
    // (fingerprint, nanos) pairs; fingerprints cycle over a small hot set so
    // the top-K tracker sees real skew, latencies spread over buckets.
    (0..500)
        .map(|i| {
            let fp = 0xF00D + (i + tid) % 7;
            let nanos = 1 + ((i * 37 + tid * 101) % 10_000);
            (fp, nanos)
        })
        .collect()
}

/// The feedback observations one thread folds: `(fp, est, actual, nanos)`.
/// Every quantity that ends up in a sketch is an order-independent fold of
/// this multiset (integer sums, maxes, a constant per-fp estimate), so the
/// concurrent result must *bit-match* a serial replay. The suspect flag is
/// kept order-independent too: four fingerprints only ever observe Q ≤ 3
/// (no prefix can cross the geomean-4 threshold), while the fifth plants
/// single runs of Q = 20 — past the any-run threshold of 16, which is a
/// monotone max and trips in every interleaving.
fn feedback_workload(tid: u64) -> Vec<(u64, u64, u64, u64)> {
    (0..500)
        .map(|i| {
            let fp = 0xBEEF + (i + tid) % 5;
            let est = 100 + (fp - 0xBEEF) * 10;
            let factor = if fp == 0xBEEF + 4 && i < 50 {
                20
            } else {
                1 + (i + tid) % 3
            };
            let nanos = 1 + ((i * 53 + tid * 11) % 8_000);
            (fp, est, est * factor, nanos)
        })
        .collect()
}

#[test]
fn concurrent_hammering_matches_the_serial_total() {
    let threads = 8u64;
    let telemetry = Arc::new(Telemetry::new(TelemetryConfig::default()));

    std::thread::scope(|scope| {
        for tid in 0..threads {
            let t = Arc::clone(&telemetry);
            scope.spawn(move || {
                for (fp, nanos) in thread_workload(tid) {
                    t.add(Metric::Requests, 1);
                    t.add(Metric::ExecRows, nanos % 13);
                    t.observe(LatencyPath::EndToEnd, nanos);
                    t.record_request(fp, nanos, 3);
                }
                for (fp, est, actual, nanos) in feedback_workload(tid) {
                    let _ = t.record_feedback(fp, est, actual, nanos, 3);
                }
            });
        }
    });

    // The serial oracle: replay every thread's deterministic stream into
    // fresh single-threaded state.
    let mut expect_requests = 0u64;
    let mut expect_rows = 0u64;
    let mut expect_hist = Histogram::new();
    let mut expect_per_fp: std::collections::BTreeMap<u64, (u64, u64)> = Default::default();
    for tid in 0..threads {
        for (fp, nanos) in thread_workload(tid) {
            expect_requests += 1;
            expect_rows += nanos % 13;
            expect_hist.record(nanos);
            let e = expect_per_fp.entry(fp).or_insert((0, 0));
            e.0 += 1;
            e.1 += nanos;
        }
    }

    let snap = telemetry.snapshot();
    assert_eq!(snap.counter("serve_requests"), Some(expect_requests));
    assert_eq!(snap.counter("serve_exec_rows"), Some(expect_rows));
    let hist = snap.hist("end_to_end").expect("end_to_end histogram");
    assert_eq!(hist.count(), expect_requests);
    assert_eq!(hist.min(), expect_hist.min());
    assert_eq!(hist.max(), expect_hist.max());
    for q in [0.5, 0.9, 0.99, 0.999] {
        assert_eq!(hist.quantile(q), expect_hist.quantile(q), "quantile {q}");
    }

    // 7 distinct fingerprints fit the tracker, so counts are exact and the
    // overcount bound is zero for every entry.
    assert_eq!(snap.topk.len(), expect_per_fp.len());
    for entry in &snap.topk {
        let &(count, nanos) = expect_per_fp.get(&entry.fp).expect("known fp");
        assert_eq!(entry.count, count, "fp {:#x}", entry.fp);
        assert_eq!(entry.nanos, nanos, "fp {:#x}", entry.fp);
        assert_eq!(entry.err, 0);
        assert_eq!(entry.last_epoch, 3);
    }

    // The Q-error sketches must bit-match a serial replay of the same
    // observation multiset: every folded field is order-independent by
    // construction (see `feedback_workload`), so this is equality of whole
    // structs — histogram buckets, suspect flags, and all.
    let config = TelemetryConfig::default();
    let oracle = FeedbackPlane::new(
        config.feedback_shards,
        config.feedback_capacity,
        config.suspect,
    );
    for tid in 0..threads {
        for (fp, est, actual, nanos) in feedback_workload(tid) {
            let _ = oracle.record(fp, est, actual, nanos, 3);
        }
    }
    assert_eq!(snap.qerror, oracle.snapshot());
    assert_eq!(snap.counter("serve_feedback_runs"), Some(threads * 500));
    // Exactly the planted spiky fingerprint is suspect.
    let suspects = snap.suspects();
    assert_eq!(suspects.len(), 1);
    assert_eq!(suspects[0].fp, 0xBEEF + 4);
    assert_eq!(snap.counter("serve_suspects_flagged"), Some(1));
}

/// Property test: whatever interleaving the writers produce, a pair of
/// successive snapshots is *ordered* — every counter, histogram bucket,
/// top-K count, and sketch run count in the later snapshot is at least the
/// earlier one's — and `delta_since` is exactly the difference, never a
/// wraparound. Monotonicity holds because every stripe, bucket, and
/// shard-locked entry only ever grows, and a later snapshot reads each one
/// after the earlier snapshot did.
#[test]
fn delta_since_never_underflows_under_concurrent_updates() {
    let telemetry = Arc::new(Telemetry::new(TelemetryConfig::default()));
    let stop = Arc::new(AtomicBool::new(false));
    // A failed assertion below unwinds through the scope closure *before*
    // the join; without this guard the writer threads would spin forever
    // on `stop` and the join would hang, burying the panic.
    struct StopOnDrop(Arc<AtomicBool>);
    impl Drop for StopOnDrop {
        fn drop(&mut self) {
            self.0.store(true, Ordering::Relaxed);
        }
    }
    std::thread::scope(|scope| {
        let _stop_guard = StopOnDrop(Arc::clone(&stop));
        for tid in 0..4u64 {
            let t = Arc::clone(&telemetry);
            let stop = Arc::clone(&stop);
            scope.spawn(move || {
                let mut i = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let fp = 0xFEED + (i + tid) % 9;
                    let nanos = 1 + (i * 29 + tid * 7) % 50_000;
                    t.add(Metric::Requests, 1);
                    t.observe(LatencyPath::EndToEnd, nanos);
                    t.record_request(fp, nanos, tid);
                    let _ = t.record_feedback(fp, 50, 40 + i % 30, nanos, tid);
                    i += 1;
                }
            });
        }

        let mut prev = telemetry.snapshot();
        for _ in 0..200 {
            let cur = telemetry.snapshot();
            let delta = cur.delta_since(&prev);
            for (name, v) in &delta.counters {
                let c = cur.counter(name).unwrap_or(0);
                let p = prev.counter(name).unwrap_or(0);
                assert!(p <= c, "counter {name} went backwards: {p} -> {c}");
                assert_eq!(*v, c - p, "counter {name} delta");
            }
            let empty = Histogram::new();
            for (path, h) in &delta.latency {
                let c = cur.hist(path).expect("histogram path");
                let p = prev.hist(path).unwrap_or(&empty);
                for (b, ((&d, &cb), &pb)) in h
                    .bucket_counts()
                    .iter()
                    .zip(c.bucket_counts())
                    .zip(p.bucket_counts())
                    .enumerate()
                {
                    assert!(pb <= cb, "hist {path} bucket {b} went backwards");
                    assert_eq!(d, cb - pb, "hist {path} bucket {b} delta");
                }
                assert!(h.count() <= c.count(), "hist {path} count overflow");
            }
            for e in &delta.topk {
                let c = cur.topk.iter().find(|t| t.fp == e.fp).expect("cur entry");
                let p = prev.topk.iter().find(|t| t.fp == e.fp);
                let (p_count, p_nanos) = p.map(|p| (p.count, p.nanos)).unwrap_or((0, 0));
                assert!(p_count <= c.count, "top-K {:#x} count went backwards", e.fp);
                assert_eq!(e.count, c.count - p_count, "top-K {:#x} delta", e.fp);
                assert!(e.nanos <= c.nanos && c.nanos - p_nanos == e.nanos);
            }
            for e in &delta.qerror {
                let c = cur.qerror_for(e.fp).expect("cur sketch");
                let p_runs = prev.qerror_for(e.fp).map(|p| p.runs).unwrap_or(0);
                let p_sum = prev.qerror_for(e.fp).map(|p| p.qlog_sum_micro).unwrap_or(0);
                assert!(p_runs <= c.runs, "sketch {:#x} runs went backwards", e.fp);
                assert_eq!(e.runs, c.runs - p_runs, "sketch {:#x} runs delta", e.fp);
                // The Q window (unlike the lifetime run count) legitimately
                // shrinks when an epoch bump lands between the snapshots
                // and refreshes the sketch, so mirror the delta's
                // saturating semantics instead of subtracting raw.
                assert_eq!(
                    e.qlog_sum_micro,
                    c.qlog_sum_micro.saturating_sub(p_sum),
                    "sketch {:#x} qlog sum delta",
                    e.fp
                );
            }
            prev = cur;
        }
        stop.store(true, Ordering::Relaxed);
    });
}

#[test]
fn counters_only_plane_is_safe_under_concurrency_and_stays_lean() {
    let telemetry = Arc::new(Telemetry::counters_only());
    std::thread::scope(|scope| {
        for tid in 0..4u64 {
            let t = Arc::clone(&telemetry);
            scope.spawn(move || {
                for (fp, nanos) in thread_workload(tid) {
                    t.add(Metric::Requests, 1);
                    t.observe(LatencyPath::Execute, nanos);
                    t.record_request(fp, nanos, 0);
                }
            });
        }
    });
    let snap = telemetry.snapshot();
    assert_eq!(snap.counter("serve_requests"), Some(4 * 500));
    assert!(snap.latency.iter().all(|(_, h)| h.count() == 0));
    assert!(snap.topk.is_empty());
}

#[test]
fn snapshot_survives_json_and_prometheus_exposition() {
    let telemetry = Telemetry::new(TelemetryConfig::default());
    for (fp, nanos) in thread_workload(1) {
        telemetry.add(Metric::Requests, 1);
        telemetry.add(Metric::CacheHit, 1);
        telemetry.observe(LatencyPath::CacheHit, nanos);
        telemetry.record_request(fp, nanos, 1);
    }
    for (fp, est, actual, nanos) in feedback_workload(1) {
        let _ = telemetry.record_feedback(fp, est, actual, nanos, 1);
    }
    let snap = telemetry.snapshot();

    // JSON is the lossless format: an exact round-trip, bucket for bucket.
    let parsed = TelemetrySnapshot::from_json(&snap.to_json()).expect("parse");
    assert_eq!(parsed, snap);

    // Prometheus text exposition is write-only, but every number it carries
    // must match the snapshot it came from.
    let prom = snap.to_prometheus();
    assert!(prom.contains("# TYPE starqo_serve_requests_total counter"));
    assert!(prom.contains("starqo_serve_requests_total 500"));
    let hit = snap.hist("cache_hit").expect("cache_hit histogram");
    assert!(prom.contains(&format!(
        "starqo_latency_nanos_count{{path=\"cache_hit\"}} {}",
        hit.count()
    )));
    let p99 = hit.quantile(0.99).expect("p99");
    assert!(
        prom.contains(&format!(
            "starqo_latency_nanos{{path=\"cache_hit\",quantile=\"0.99\"}} {p99}"
        )),
        "{prom}"
    );
    for (rank, entry) in snap.topk.iter().enumerate() {
        assert!(prom.contains(&format!(
            "starqo_hot_query_requests{{fp=\"{:#018x}\",rank=\"{}\"}} {}",
            entry.fp,
            rank + 1,
            entry.count
        )));
    }

    // Standard histogram exposition: the `_sum`/`_count` pair and the
    // closing `+Inf` bucket must agree with the *JSON-round-tripped*
    // snapshot, so the two exporters can never drift apart silently.
    let hit = parsed.hist("cache_hit").expect("cache_hit histogram");
    assert!(prom.contains("# TYPE starqo_latency_hist_nanos histogram"));
    assert!(prom.contains(&format!(
        "starqo_latency_hist_nanos_bucket{{path=\"cache_hit\",le=\"+Inf\"}} {}",
        hit.count()
    )));
    assert!(prom.contains(&format!(
        "starqo_latency_hist_nanos_sum{{path=\"cache_hit\"}} {}",
        hit.sum()
    )));
    assert!(prom.contains(&format!(
        "starqo_latency_hist_nanos_count{{path=\"cache_hit\"}} {}",
        hit.count()
    )));
    // Cumulative `le` buckets: the last explicit bound carries the full
    // count, and bounds appear in increasing order.
    let mut last_cumulative = 0u64;
    for line in prom
        .lines()
        .filter(|l| l.starts_with("starqo_latency_hist_nanos_bucket{path=\"cache_hit\",le=\""))
    {
        let v: u64 = line
            .rsplit_once(' ')
            .expect("value")
            .1
            .parse()
            .expect("count");
        assert!(v >= last_cumulative, "buckets must be cumulative: {line}");
        last_cumulative = v;
    }
    assert_eq!(last_cumulative, hit.count());

    // Plan-quality gauges agree with the parsed sketches (including the
    // planted suspect from `feedback_workload`).
    assert!(!parsed.qerror.is_empty());
    for sketch in &parsed.qerror {
        let labels = format!("fp=\"{:#018x}\"", sketch.fp);
        assert!(prom.contains(&format!(
            "starqo_plan_qerror_runs{{{labels}}} {}",
            sketch.runs
        )));
        assert!(prom.contains(&format!(
            "starqo_plan_suspect{{{labels}}} {}",
            u64::from(sketch.suspect)
        )));
    }
    assert!(prom.contains(&format!(
        "starqo_plan_suspect{{fp=\"{:#018x}\"}} 1",
        0xBEEFu64 + 4
    )));
}

//! Cross-crate telemetry-plane tests: the striped counters, histograms,
//! and top-K tracker must agree with a deterministic serial total no matter
//! how many threads hammer them, and a snapshot must survive the trip
//! through both exporters (exactly through JSON, faithfully through the
//! Prometheus text format).

use std::sync::Arc;

use starqo_trace::{Histogram, LatencyPath, Metric, Telemetry, TelemetryConfig, TelemetrySnapshot};

/// The workload one thread contributes: a deterministic function of its id,
/// so the expected totals are computable without running anything.
fn thread_workload(tid: u64) -> Vec<(u64, u64)> {
    // (fingerprint, nanos) pairs; fingerprints cycle over a small hot set so
    // the top-K tracker sees real skew, latencies spread over buckets.
    (0..500)
        .map(|i| {
            let fp = 0xF00D + (i + tid) % 7;
            let nanos = 1 + ((i * 37 + tid * 101) % 10_000);
            (fp, nanos)
        })
        .collect()
}

#[test]
fn concurrent_hammering_matches_the_serial_total() {
    let threads = 8u64;
    let telemetry = Arc::new(Telemetry::new(TelemetryConfig::default()));

    std::thread::scope(|scope| {
        for tid in 0..threads {
            let t = Arc::clone(&telemetry);
            scope.spawn(move || {
                for (fp, nanos) in thread_workload(tid) {
                    t.add(Metric::Requests, 1);
                    t.add(Metric::ExecRows, nanos % 13);
                    t.observe(LatencyPath::EndToEnd, nanos);
                    t.record_request(fp, nanos, 3);
                }
            });
        }
    });

    // The serial oracle: replay every thread's deterministic stream into
    // fresh single-threaded state.
    let mut expect_requests = 0u64;
    let mut expect_rows = 0u64;
    let mut expect_hist = Histogram::new();
    let mut expect_per_fp: std::collections::BTreeMap<u64, (u64, u64)> = Default::default();
    for tid in 0..threads {
        for (fp, nanos) in thread_workload(tid) {
            expect_requests += 1;
            expect_rows += nanos % 13;
            expect_hist.record(nanos);
            let e = expect_per_fp.entry(fp).or_insert((0, 0));
            e.0 += 1;
            e.1 += nanos;
        }
    }

    let snap = telemetry.snapshot();
    assert_eq!(snap.counter("serve_requests"), Some(expect_requests));
    assert_eq!(snap.counter("serve_exec_rows"), Some(expect_rows));
    let hist = snap.hist("end_to_end").expect("end_to_end histogram");
    assert_eq!(hist.count(), expect_requests);
    assert_eq!(hist.min(), expect_hist.min());
    assert_eq!(hist.max(), expect_hist.max());
    for q in [0.5, 0.9, 0.99, 0.999] {
        assert_eq!(hist.quantile(q), expect_hist.quantile(q), "quantile {q}");
    }

    // 7 distinct fingerprints fit the tracker, so counts are exact and the
    // overcount bound is zero for every entry.
    assert_eq!(snap.topk.len(), expect_per_fp.len());
    for entry in &snap.topk {
        let &(count, nanos) = expect_per_fp.get(&entry.fp).expect("known fp");
        assert_eq!(entry.count, count, "fp {:#x}", entry.fp);
        assert_eq!(entry.nanos, nanos, "fp {:#x}", entry.fp);
        assert_eq!(entry.err, 0);
        assert_eq!(entry.last_epoch, 3);
    }
}

#[test]
fn counters_only_plane_is_safe_under_concurrency_and_stays_lean() {
    let telemetry = Arc::new(Telemetry::counters_only());
    std::thread::scope(|scope| {
        for tid in 0..4u64 {
            let t = Arc::clone(&telemetry);
            scope.spawn(move || {
                for (fp, nanos) in thread_workload(tid) {
                    t.add(Metric::Requests, 1);
                    t.observe(LatencyPath::Execute, nanos);
                    t.record_request(fp, nanos, 0);
                }
            });
        }
    });
    let snap = telemetry.snapshot();
    assert_eq!(snap.counter("serve_requests"), Some(4 * 500));
    assert!(snap.latency.iter().all(|(_, h)| h.count() == 0));
    assert!(snap.topk.is_empty());
}

#[test]
fn snapshot_survives_json_and_prometheus_exposition() {
    let telemetry = Telemetry::new(TelemetryConfig::default());
    for (fp, nanos) in thread_workload(1) {
        telemetry.add(Metric::Requests, 1);
        telemetry.add(Metric::CacheHit, 1);
        telemetry.observe(LatencyPath::CacheHit, nanos);
        telemetry.record_request(fp, nanos, 1);
    }
    let snap = telemetry.snapshot();

    // JSON is the lossless format: an exact round-trip, bucket for bucket.
    let parsed = TelemetrySnapshot::from_json(&snap.to_json()).expect("parse");
    assert_eq!(parsed, snap);

    // Prometheus text exposition is write-only, but every number it carries
    // must match the snapshot it came from.
    let prom = snap.to_prometheus();
    assert!(prom.contains("# TYPE starqo_serve_requests_total counter"));
    assert!(prom.contains("starqo_serve_requests_total 500"));
    let hit = snap.hist("cache_hit").expect("cache_hit histogram");
    assert!(prom.contains(&format!(
        "starqo_latency_nanos_count{{path=\"cache_hit\"}} {}",
        hit.count()
    )));
    let p99 = hit.quantile(0.99).expect("p99");
    assert!(
        prom.contains(&format!(
            "starqo_latency_nanos{{path=\"cache_hit\",quantile=\"0.99\"}} {p99}"
        )),
        "{prom}"
    );
    for (rank, entry) in snap.topk.iter().enumerate() {
        assert!(prom.contains(&format!(
            "starqo_hot_query_requests{{fp=\"{:#018x}\",rank=\"{}\"}} {}",
            entry.fp,
            rank + 1,
            entry.count
        )));
    }
}

//! Cross-crate span-layer tests: the request-scoped span trees recorded
//! under concurrent load must bit-match a serial replay (the structural
//! digest is a pure function of the request's path through the service),
//! interval diffing must survive a snapshot schema upgrade mid-stream, and
//! span-tree JSONL streams must reconstruct past truncation and noise.

use std::sync::Arc;

use starqo_serve::{Service, ServiceConfig};
use starqo_trace::{read_span_trees, SnapshotRing, SpanMode, TelemetryConfig, TelemetrySnapshot};
use starqo_workload::{query_shape_param, synth_catalog, QueryShape, SynthSpec};

fn spec() -> SynthSpec {
    SynthSpec {
        tables: 4,
        card_range: (20, 40),
        sites: 1,
        index_prob: 0.5,
        btree_prob: 0.5,
        payload_cols: 2,
    }
}

fn full_span_service(cat: &Arc<starqo_catalog::Catalog>) -> Service {
    Service::new(
        Arc::clone(cat),
        ServiceConfig {
            telemetry: TelemetryConfig {
                spans: SpanMode::Full,
                // Big enough that nothing the test records is evicted.
                span_store: 2_048,
                ..TelemetryConfig::default()
            },
            ..ServiceConfig::default()
        },
    )
    .expect("service builds")
}

/// 8 threads hammer one warmed fingerprint; every retained tree's
/// structural digest must bit-match the digest a serial replay produces.
/// The digest excludes timings (names nested by parent links only), so
/// however the scheduler interleaves the requests, any structural
/// divergence — a missing span, a reparented child, an extra phase — is a
/// real recording bug, not jitter.
#[test]
fn concurrent_span_trees_bit_match_the_serial_oracle() {
    let threads = 8usize;
    let per_thread = 40usize;
    let cat = synth_catalog(7, &spec());
    let q = query_shape_param(&cat, QueryShape::Chain, 3, Some(1));

    let svc = full_span_service(&cat);
    svc.optimize(&q).expect("cold serve");
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let (svc, q) = (&svc, &q);
            scope.spawn(move || {
                for _ in 0..per_thread {
                    svc.optimize(q).expect("warm serve");
                }
            });
        }
    });

    // Serial oracle: a fresh, identically configured service serves the
    // same cold-then-hit sequence alone.
    let oracle = full_span_service(&cat);
    oracle.optimize(&q).expect("oracle cold");
    oracle.optimize(&q).expect("oracle hit");
    let oracle_trees = oracle.telemetry().span_trees();
    assert_eq!(oracle_trees.len(), 2);
    let cold_digest = oracle_trees[0].structure();
    let hit_digest = oracle_trees[1].structure();
    assert_ne!(cold_digest, hit_digest, "cold requests nest the optimizer");

    let trees = svc.telemetry().span_trees();
    assert_eq!(trees.len(), 1 + threads * per_thread, "nothing evicted");
    // trees() is request-id ascending: request 1 is the warmup cold miss.
    assert_eq!(trees[0].outcome, "miss");
    assert_eq!(
        trees[0].structure(),
        cold_digest,
        "cold tree matches oracle"
    );
    for t in &trees[1..] {
        assert_eq!(t.outcome, "hit", "request {}", t.request_id);
        assert_eq!(
            t.structure(),
            hit_digest,
            "request {} diverged from the serial oracle",
            t.request_id
        );
        assert_eq!(t.dropped, 0);
    }
}

/// A watcher that seeded its ring before an upgrade keeps producing sane
/// deltas afterwards: a v1 document (no phases, no span store) diffed
/// against a live v3 snapshot deltas the new counters from zero and
/// carries the span gauges through as absolutes.
#[test]
fn snapshot_ring_diffs_across_a_version_upgrade() {
    let v1_text = r#"{"version":1,"uptime_nanos":1000,"counters":{"serve_requests":10,"serve_spans_kept":0},"latency":{},"topk":[]}"#;
    let v1 = TelemetrySnapshot::from_json(v1_text).expect("v1 parses");
    assert!(v1.phases.is_empty());

    let mut ring = SnapshotRing::new(4);
    assert!(ring.push(v1).is_none(), "first push seeds the diff base");

    let mut v3 = TelemetrySnapshot::from_json(v1_text).expect("seed");
    v3.uptime_nanos = 3_000;
    v3.counters = vec![
        ("serve_requests".into(), 25),
        ("serve_spans_kept".into(), 4),
    ];
    v3.phases = vec![
        ("prepare".into(), 9_000, 25),
        ("execute".into(), 70_000, 25),
    ];
    v3.span_resident = 4;
    v3.span_capacity = 64;
    v3.span_evicted = 0;
    // The upgraded snapshot must itself round-trip at the current version.
    assert!(v3.to_json().contains("\"version\":4"));

    let delta = ring.push(v3).expect("second push yields a delta");
    assert_eq!(delta.uptime_nanos, 2_000);
    assert_eq!(delta.counter("serve_requests"), Some(15));
    assert_eq!(delta.counter("serve_spans_kept"), Some(4));
    // Phases absent from the v1 base delta from zero…
    assert_eq!(delta.phases, v3_phases());
    // …and the span-store gauges pass through as the later absolutes.
    assert_eq!(
        (delta.span_resident, delta.span_capacity, delta.span_evicted),
        (4, 64, 0)
    );
    assert_eq!(ring.counter_series("serve_spans_kept"), vec![4]);
}

fn v3_phases() -> Vec<(String, u64, u64)> {
    vec![
        ("prepare".into(), 9_000, 25),
        ("execute".into(), 70_000, 25),
    ]
}

/// A span JSONL stream that lost its tail (a crashed exporter) and picked
/// up interleaved garbage still reconstructs every intact tree, counting
/// the rest instead of failing the read.
#[test]
fn truncated_and_interleaved_span_jsonl_reconstructs() {
    let trees = starqo_obs::smoke_trees();
    let lines: Vec<String> = trees.iter().map(|t| t.to_json()).collect();

    // Interleave noise between the intact lines, then append a line that
    // was cut off mid-object (crash mid-write).
    let truncated = &lines[0][..lines[0].len() / 2];
    let stream = format!(
        "{}\nnot json at all\n\n{}\n{{\"request_id\":99}}\n{truncated}\n",
        lines[0], lines[1]
    );
    let (back, skipped) = read_span_trees(&stream);
    assert_eq!(back, trees, "intact lines reconstruct byte-identically");
    // Dropped: the garbage line, the truncated tail, and the object
    // missing its required fields. Blank lines are not counted.
    assert_eq!(skipped, 3);

    // The reconstructed trees still drive the full reporting path.
    let report = starqo_obs::SpanReport::new(back);
    assert!(report.render_table(10).contains("0x00000000000a11ce"));
    let slowest = report.trees()[0].request_id;
    assert!(report.render_waterfall(slowest).is_some());
}

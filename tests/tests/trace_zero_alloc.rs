//! The zero-overhead guarantee: with tracing disabled (the default), no
//! trace event is ever constructed — the event-building closures are never
//! run, so tracing costs nothing on the hot path.
//!
//! This lives in its own test binary on purpose: `events_constructed()` is a
//! process-global counter, and any *enabled* tracer in a sibling test would
//! pollute it.

use starqo_core::{OptConfig, Optimizer};
use starqo_exec::Executor;
use starqo_trace::{events_constructed, NullSink, Tracer};
use starqo_workload::{query_shape, synth_catalog, synth_database, QueryShape, SynthSpec};

#[test]
fn untraced_optimize_and_execute_construct_zero_events() {
    let spec = SynthSpec {
        tables: 3,
        card_range: (50, 300),
        ..Default::default()
    };
    let cat = synth_catalog(17, &spec);
    let db = synth_database(17, cat.clone());
    let opt = Optimizer::new(cat.clone()).expect("rules");
    let query = query_shape(&cat, QueryShape::Chain, 3, false);

    let before = events_constructed();
    // Plain optimize (Tracer::off) and a NullSink-backed run: both must
    // short-circuit before any event is built.
    let out = opt.optimize(&query, &OptConfig::full()).expect("optimize");
    let out2 = opt
        .optimize_traced(&query, &OptConfig::full(), Tracer::new(NullSink))
        .expect("optimize");
    assert_eq!(out.best.fingerprint(), out2.best.fingerprint());

    let mut ex = Executor::new(&db, &query);
    ex.set_tracer(Tracer::new(NullSink));
    ex.run(&out.best).expect("execute");

    assert_eq!(
        events_constructed(),
        before,
        "disabled tracing must never construct events"
    );
    assert!(!Tracer::new(NullSink).enabled());
}

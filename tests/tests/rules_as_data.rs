//! "Rules are data": the built-in repertoire is plain text; it can be
//! replaced, restricted, extended, and broken — all without touching engine
//! code — and the engine reports rule errors helpfully.

use starqo_core::{CoreError, OptConfig, Optimizer, ACCESS_RULES, EXTENSION_RULES, JOIN_RULES};
use starqo_exec::{reference_eval, rows_equal_multiset, Executor};
use starqo_plan::{JoinFlavor, Lolepop};
use starqo_query::parse_query;
use starqo_workload::{dept_emp_catalog, dept_emp_database, dept_emp_query};

#[test]
fn builtin_rule_files_parse_and_compile() {
    // Parse standalone...
    for (name, text) in [
        ("access", ACCESS_RULES),
        ("join", JOIN_RULES),
        ("extensions", EXTENSION_RULES),
    ] {
        starqo_dsl::parse_rules(text).unwrap_or_else(|e| panic!("{name}: {e}"));
    }
    // ...and compile together.
    let cat = dept_emp_catalog(false, 100);
    let opt = Optimizer::new(cat).unwrap();
    // The three files define exactly these STARs; JMeth accumulates the
    // §4.5 groups.
    for star in [
        "AccessRoot",
        "TableAccess",
        "IndexAccess",
        "JoinRoot",
        "PermutedJoin",
        "RemoteJoin",
        "SitedJoin",
        "JMeth",
    ] {
        assert!(opt.rules().lookup(star).is_some(), "missing STAR {star}");
    }
    let jmeth = opt.rules().star(opt.rules().lookup("JMeth").unwrap());
    assert_eq!(
        jmeth.groups.len(),
        4,
        "base JMeth + three §4.5 extension groups"
    );
}

#[test]
fn restricted_repertoire_nl_only() {
    // A DBC who wants a nested-loop-only optimizer writes exactly this.
    let rules = r#"
star JoinRoot(T1, T2, P) = [
    NlOnly(T1, T2, P)   if composite_inner_ok(T2);
    NlOnly(T2, T1, P)   if composite_inner_ok(T1);
]
star NlOnly(T1, T2, P) =
    with JP = join_preds(P),
         IP = inner_preds(P, T2)
    JOIN(NL, Glue(T1, {}), Glue(T2, JP union IP), JP, P - (JP union IP));
"#;
    let cat = dept_emp_catalog(false, 1_000);
    let mut opt = Optimizer::empty(cat.clone());
    opt.load_rules(ACCESS_RULES).unwrap();
    opt.load_rules(rules).unwrap();
    let query = dept_emp_query(&cat);
    let config = OptConfig {
        glue_keep_all: true,
        ..Default::default()
    };
    let out = opt.optimize(&query, &config).unwrap();
    // Only NL joins anywhere.
    for p in &out.root_alternatives {
        assert!(!p.any(&|n| matches!(
            n.op,
            Lolepop::Join {
                flavor: JoinFlavor::MG | JoinFlavor::HA,
                ..
            }
        )));
    }
    // And the answer is still right.
    let db = dept_emp_database(cat);
    let want = reference_eval(&db, &query).unwrap();
    let mut ex = Executor::new(&db, &query);
    let got = ex.run(&out.best).unwrap();
    assert!(rows_equal_multiset(&got.rows, &want));
}

#[test]
fn redefining_jmeth_appends_alternatives() {
    let cat = dept_emp_catalog(false, 1_000);
    let mut opt = Optimizer::new(cat).unwrap();
    let before = opt
        .rules()
        .star(opt.rules().lookup("JMeth").unwrap())
        .groups
        .len();
    opt.load_rules(
        "star JMeth(T1, T2, P) = [ JOIN(NL, Glue(T1, {}), Glue(T2, {}), {}, P) if enabled('never'); ]",
    )
    .unwrap();
    let after = opt
        .rules()
        .star(opt.rules().lookup("JMeth").unwrap())
        .groups
        .len();
    assert_eq!(after, before + 1);
}

#[test]
fn rule_errors_are_reported_with_context() {
    let cat = dept_emp_catalog(false, 100);
    let mut opt = Optimizer::empty(cat);

    // Syntax error: has a position.
    let err = opt.load_rules("star Broken(T = ").unwrap_err();
    assert!(matches!(err, CoreError::Syntax(_)), "{err}");

    // Unresolved reference.
    let err = opt.load_rules("star A(T) = NotAThing(T);").unwrap_err();
    match err {
        CoreError::Compile { star, msg } => {
            assert_eq!(star, "A");
            assert!(msg.contains("NotAThing"), "{msg}");
        }
        other => panic!("wrong error: {other}"),
    }

    // Star arity mismatch.
    opt.load_rules("star B(T, P) = Glue(T, P);").unwrap();
    let err = opt.load_rules("star C(T) = B(T);").unwrap_err();
    assert!(matches!(err, CoreError::Compile { .. }));

    // Parameter-count conflict on redefinition.
    let err = opt.load_rules("star B(T) = Glue(T, {});").unwrap_err();
    assert!(matches!(err, CoreError::Compile { .. }));
}

#[test]
fn cyclic_rules_hit_the_recursion_guard() {
    let cat = dept_emp_catalog(false, 100);
    let mut opt = Optimizer::empty(cat.clone());
    opt.load_rules(ACCESS_RULES).unwrap();
    // JoinRoot that references itself unconditionally.
    opt.load_rules("star JoinRoot(T1, T2, P) = JoinRoot(T2, T1, P);")
        .unwrap();
    let query = dept_emp_query(&cat);
    let err = opt.optimize(&query, &OptConfig::default()).unwrap_err();
    match err {
        CoreError::Eval { msg, .. } => assert!(msg.contains("recursion"), "{msg}"),
        other => panic!("expected recursion error, got {other}"),
    }
}

#[test]
fn missing_root_star_is_a_clean_error() {
    let cat = dept_emp_catalog(false, 100);
    let mut opt = Optimizer::empty(cat.clone());
    opt.load_rules(ACCESS_RULES).unwrap(); // no JoinRoot at all
    let query = dept_emp_query(&cat);
    let err = opt.optimize(&query, &OptConfig::default()).unwrap_err();
    assert!(matches!(err, CoreError::Eval { .. }), "{err}");
}

#[test]
fn custom_native_condition_function() {
    // §5: conditions bottom out in registered native functions.
    let cat = dept_emp_catalog(false, 1_000);
    let mut opt = Optimizer::new(cat.clone()).unwrap();
    opt.register_native("always_false", |_ctx, _args| {
        Ok(starqo_core::RuleValue::Bool(false))
    });
    // A JMeth alternative guarded by the new native never fires.
    opt.load_rules(
        "star JMeth(T1, T2, P) = [ JOIN(NL, Glue(T1, {}), Glue(T2, {}), {}, P) if always_false(); ]",
    )
    .unwrap();
    let query = dept_emp_query(&cat);
    let out = opt.optimize(&query, &OptConfig::default()).unwrap();
    assert!(out.best.props.cost.total() > 0.0);
}

#[test]
fn single_table_query_uses_access_rules_only() {
    let cat = dept_emp_catalog(false, 1_000);
    let query = parse_query(&cat, "SELECT D.DNO FROM DEPT D WHERE D.MGR = 'Haas'").unwrap();
    let opt = Optimizer::new(cat.clone()).unwrap();
    let out = opt.optimize(&query, &OptConfig::default()).unwrap();
    assert!(!out.best.any(&|n| matches!(n.op, Lolepop::Join { .. })));
    let db = dept_emp_database(cat);
    let mut ex = Executor::new(&db, &query);
    assert_eq!(ex.run(&out.best).unwrap().rows.len(), 1);
}

//! Randomized round-trip property tests for the hand-rolled JSON writer
//! and parser in `starqo-trace`, driven by the workspace's seeded PRNG so
//! failures reproduce exactly.

use starqo_trace::json::{escape, JsonObj};
use starqo_trace::{parse_json, read_events, JsonValue, TraceEvent};
use starqo_workload::Rng64;

/// A random string biased toward the characters that make JSON escaping
/// hard: control characters, quotes, backslashes, and multi-byte UTF-8.
fn nasty_string(rng: &mut Rng64, max_len: usize) -> String {
    let len = rng.below(max_len as u64 + 1) as usize;
    let mut s = String::new();
    for _ in 0..len {
        let c = match rng.below(8) {
            // Control characters (the \u00XX escape path), including \0.
            0 => char::from_u32(rng.below(0x20) as u32).unwrap(),
            // The two characters JSON must always escape.
            1 => '"',
            2 => '\\',
            // Popular whitespace escapes.
            3 => ['\n', '\r', '\t'][rng.index(3)],
            // Plain ASCII.
            4 | 5 => char::from_u32(0x20 + rng.below(0x5f) as u32).unwrap(),
            // Two- and three-byte UTF-8 (Latin-1 supplement, CJK).
            6 => char::from_u32(0xa1 + rng.below(0x100) as u32).unwrap_or('é'),
            // Astral plane: 4-byte UTF-8, surrogate pair in \uXXXX form.
            _ => char::from_u32(0x1_f300 + rng.below(0x100) as u32).unwrap_or('🌀'),
        };
        s.push(c);
    }
    s
}

#[test]
fn escaped_strings_parse_back_verbatim() {
    let mut rng = Rng64::new(0xC0FFEE);
    for round in 0..500 {
        let original = nasty_string(&mut rng, 40);
        let doc = format!("\"{}\"", escape(&original));
        let parsed = parse_json(&doc).unwrap_or_else(|e| panic!("round {round}: {e} for {doc:?}"));
        assert_eq!(
            parsed.as_str(),
            Some(original.as_str()),
            "round {round}: {doc:?}"
        );
    }
}

#[test]
fn whole_objects_roundtrip_with_nasty_keys_and_values() {
    let mut rng = Rng64::new(42);
    for round in 0..200 {
        let key = nasty_string(&mut rng, 12);
        let val = nasty_string(&mut rng, 24);
        let n = rng.next_u64();
        let doc = JsonObj::new().str(&key, &val).u64("n", n).finish();
        let parsed = parse_json(&doc).unwrap_or_else(|e| panic!("round {round}: {e} for {doc:?}"));
        assert_eq!(
            parsed.get(&key).and_then(JsonValue::as_str),
            Some(val.as_str())
        );
        assert_eq!(parsed.get("n").and_then(JsonValue::as_u64), Some(n));
    }
}

#[test]
fn events_with_random_payloads_survive_the_jsonl_loop() {
    let mut rng = Rng64::new(7);
    let mut events = Vec::new();
    for _ in 0..200 {
        events.push(match rng.below(8) {
            0 => TraceEvent::CondFailed {
                star: nasty_string(&mut rng, 10),
                alt: rng.below(9) as usize,
                ref_id: rng.next_u64(),
                cond: nasty_string(&mut rng, 30),
            },
            1 => TraceEvent::PlanRejected {
                op: nasty_string(&mut rng, 10),
                ref_id: rng.next_u64(),
                reason: nasty_string(&mut rng, 30),
            },
            2 => TraceEvent::SpanStart {
                name: nasty_string(&mut rng, 20),
            },
            3 => TraceEvent::TableInsert {
                op: nasty_string(&mut rng, 10),
                // Full-range u64 fingerprints: precision must survive.
                fp: rng.next_u64(),
                cost: rng.next_f64() * 1e6,
                evicted: rng.below(4) as usize,
            },
            // The serving layer's cache events: full-range u64 query
            // fingerprints and epochs, plus a free-form eviction reason.
            4 => TraceEvent::CacheHit {
                fp: rng.next_u64(),
                epoch: rng.next_u64(),
                saved_nanos: rng.next_u64(),
            },
            5 => TraceEvent::CacheMiss {
                fp: rng.next_u64(),
                epoch: rng.next_u64(),
            },
            6 => TraceEvent::CacheEvict {
                fp: rng.next_u64(),
                reason: nasty_string(&mut rng, 20),
            },
            _ => TraceEvent::CacheInvalidate {
                fp: rng.next_u64(),
                epoch: rng.next_u64(),
            },
        });
    }
    let text: String = events.iter().map(|e| e.to_json() + "\n").collect();
    let (back, skipped) = read_events(&text);
    assert_eq!(skipped, 0);
    assert_eq!(back, events);
}

//! Cross-crate integration: SQL text through parsing, rule-driven
//! optimization, and execution, for a range of query shapes, configurations,
//! and physical designs.

use std::sync::Arc;

use starqo_catalog::{Catalog, DataType, StorageKind, Value};
use starqo_core::{OptConfig, Optimizer};
use starqo_exec::{reference_eval, rows_equal_multiset, Executor};
use starqo_query::parse_query;
use starqo_storage::{Database, DatabaseBuilder};

/// A compact retail-ish schema exercising heap & B-tree storage, single- and
/// multi-column indexes, and three sites.
fn catalog() -> Arc<Catalog> {
    Arc::new(
        Catalog::builder()
            .site("hq")
            .site("east")
            .site("west")
            .table(
                "CUST",
                "hq",
                StorageKind::BTree {
                    key: vec![starqo_catalog::ColId(0)],
                },
                300,
            )
            .column("CID", DataType::Int, Some(300))
            .column("TIER", DataType::Int, Some(3))
            .column("NAME", DataType::Str, None)
            .table("ORD", "east", StorageKind::Heap, 1_200)
            .column("OID", DataType::Int, Some(1_200))
            .column("CID", DataType::Int, Some(300))
            .column("ITEM", DataType::Int, Some(40))
            .table("ITEMS", "west", StorageKind::Heap, 40)
            .column("IID", DataType::Int, Some(40))
            .column("PRICE", DataType::Int, Some(20))
            .index("ORD_CID", "ORD", &["CID"], false, false)
            .index("ORD_CID_ITEM", "ORD", &["CID", "ITEM"], false, false)
            .build()
            .unwrap(),
    )
}

fn database(cat: Arc<Catalog>) -> Database {
    let mut b = DatabaseBuilder::new(cat);
    for c in 0..300i64 {
        b.insert(
            "CUST",
            vec![
                Value::Int(c),
                Value::Int(c % 3),
                Value::str(format!("c{c}")),
            ],
        )
        .unwrap();
    }
    for o in 0..1_200i64 {
        b.insert(
            "ORD",
            vec![Value::Int(o), Value::Int(o % 300), Value::Int(o % 40)],
        )
        .unwrap();
    }
    for i in 0..40i64 {
        b.insert("ITEMS", vec![Value::Int(i), Value::Int(i % 20)])
            .unwrap();
    }
    b.build().unwrap()
}

fn check(sql: &str, config: &OptConfig) -> usize {
    let cat = catalog();
    let db = database(cat.clone());
    let query = parse_query(&cat, sql).unwrap();
    let opt = Optimizer::new(cat).unwrap();
    let out = opt.optimize(&query, config).unwrap();
    let mut ex = Executor::new(&db, &query);
    let got = ex.run(&out.best).unwrap();
    let want = reference_eval(&db, &query).unwrap();
    assert!(
        rows_equal_multiset(&got.rows, &want),
        "{sql}: best plan diverged ({} vs {} rows): {:?}",
        got.rows.len(),
        want.len(),
        out.best.op_names()
    );
    got.rows.len()
}

#[test]
fn single_table_with_btree_range() {
    let n = check(
        "SELECT C.NAME FROM CUST C WHERE C.CID < 10",
        &OptConfig::default(),
    );
    assert_eq!(n, 10);
}

#[test]
fn two_way_distributed_join() {
    let n = check(
        "SELECT C.NAME, O.OID FROM CUST C, ORD O WHERE C.CID = O.CID AND C.TIER = 0",
        &OptConfig::default(),
    );
    assert_eq!(n, 400);
}

#[test]
fn three_way_join_all_configs() {
    let sql = "SELECT C.NAME, I.PRICE FROM CUST C, ORD O, ITEMS I \
               WHERE C.CID = O.CID AND O.ITEM = I.IID AND C.TIER = 1 AND I.PRICE = 3";
    let n1 = check(sql, &OptConfig::default());
    let n2 = check(sql, &OptConfig::full());
    let n3 = check(
        sql,
        &OptConfig {
            glue_keep_all: true,
            ..OptConfig::full()
        },
    );
    assert_eq!(n1, n2);
    assert_eq!(n2, n3);
    assert!(n1 > 0);
}

#[test]
fn order_by_is_satisfied_by_final_glue() {
    let cat = catalog();
    let db = database(cat.clone());
    let query = parse_query(
        &cat,
        "SELECT C.CID, C.NAME FROM CUST C WHERE C.TIER = 2 ORDER BY C.CID",
    )
    .unwrap();
    let opt = Optimizer::new(cat).unwrap();
    let out = opt.optimize(&query, &OptConfig::default()).unwrap();
    assert!(out.best.props.order_satisfies(&query.order_by));
    let mut ex = Executor::new(&db, &query);
    let got = ex.run(&out.best).unwrap();
    // Rows actually come out ordered.
    let keys: Vec<_> = got.rows.iter().map(|r| r.get(0).clone()).collect();
    let mut sorted = keys.clone();
    sorted.sort();
    assert_eq!(keys, sorted);
}

#[test]
fn multi_column_index_is_exploited() {
    // Both CID and ITEM are bound: the two-column index prefix applies both.
    let cat = catalog();
    let query = parse_query(
        &cat,
        "SELECT O.OID FROM ORD O WHERE O.CID = 5 AND O.ITEM = 5",
    )
    .unwrap();
    let opt = Optimizer::new(cat.clone()).unwrap();
    let config = OptConfig {
        glue_keep_all: true,
        ..Default::default()
    };
    let out = opt.optimize(&query, &config).unwrap();
    // Some alternative uses ORD_CID_ITEM (index id 1).
    let uses_two_col = out.root_alternatives.iter().any(|p| {
        p.any(&|n| {
            matches!(
                &n.op,
                starqo_plan::Lolepop::Access {
                    spec: starqo_plan::AccessSpec::Index { index, .. },
                    ..
                } if index.0 == 1
            )
        })
    });
    assert!(uses_two_col, "two-column index never used");
    let db = database(cat);
    let want = reference_eval(&db, &query).unwrap();
    for p in &out.root_alternatives {
        let mut ex = Executor::new(&db, &query);
        let got = ex.run(p).unwrap();
        assert!(rows_equal_multiset(&got.rows, &want));
    }
}

#[test]
fn expression_and_inequality_predicates() {
    let n = check(
        "SELECT O.OID FROM ORD O, ITEMS I WHERE O.ITEM + 0 = I.IID AND I.PRICE > 17",
        &OptConfig::full(),
    );
    assert!(n > 0);
}

#[test]
fn or_predicates_survive_optimization() {
    let n = check(
        "SELECT C.NAME FROM CUST C WHERE (C.TIER = 0 OR C.TIER = 2)",
        &OptConfig::default(),
    );
    assert_eq!(n, 200);
}

#[test]
fn select_star_round_trip() {
    let n = check(
        "SELECT * FROM ITEMS I WHERE I.PRICE = 0",
        &OptConfig::default(),
    );
    assert_eq!(n, 2);
}

#[test]
fn empty_result_queries() {
    let n = check(
        "SELECT C.NAME FROM CUST C WHERE C.CID = 99999",
        &OptConfig::default(),
    );
    assert_eq!(n, 0);
    let n = check(
        "SELECT C.NAME, O.OID FROM CUST C, ORD O WHERE C.CID = O.CID AND C.CID = 99999",
        &OptConfig::full(),
    );
    assert_eq!(n, 0);
}

#[test]
fn self_join_via_aliases() {
    // Two quantifiers over the same table; indexes must bind per-quantifier.
    let n = check(
        "SELECT A.OID, B.OID FROM ORD A, ORD B WHERE A.CID = B.CID AND A.OID = 7 AND B.ITEM = 7",
        &OptConfig::default(),
    );
    // Order 7 has CID 7; orders with CID ≡ 7 (mod 300): 10 of them; of
    // those, ITEM == 7 means OID % 40 == 7 — OID ∈ {7, 607, 1207, 1807,
    // 2407} have both CID=7 and ITEM=7? Let the reference decide; just
    // require the check passed and some rows exist.
    assert!(n > 0);
}

#[test]
fn distributed_result_lands_at_query_site() {
    let cat = catalog();
    let query = parse_query(
        &cat,
        "SELECT C.NAME, I.PRICE FROM CUST C, ORD O, ITEMS I \
         WHERE C.CID = O.CID AND O.ITEM = I.IID",
    )
    .unwrap();
    let opt = Optimizer::new(cat).unwrap();
    let out = opt.optimize(&query, &OptConfig::default()).unwrap();
    assert_eq!(out.best.props.site, query.query_site);
    assert!(out
        .best
        .any(&|n| matches!(n.op, starqo_plan::Lolepop::Ship { .. })));
}

#[test]
fn ablations_change_work_not_answers() {
    use starqo_workload::{query_shape, synth_catalog, QueryShape, SynthSpec};
    let spec = SynthSpec {
        tables: 5,
        card_range: (500, 5_000),
        ..Default::default()
    };
    let cat = synth_catalog(13, &spec);
    let query = query_shape(&cat, QueryShape::Chain, 5, false);
    let opt = Optimizer::new(cat).unwrap();
    let base_cfg = OptConfig::default()
        .enable("hashjoin")
        .enable("force_projection");
    let base = opt.optimize(&query, &base_cfg).unwrap();
    let mut no_memo = base_cfg.clone();
    no_memo.ablate_memo = true;
    let abl_memo = opt.optimize(&query, &no_memo).unwrap();
    // Memoization saved real expansion work...
    assert!(base.stats.memo_hits > 0);
    assert!(abl_memo.stats.conds_evaluated > base.stats.conds_evaluated);
    assert!(abl_memo.stats.plans_built > base.stats.plans_built);
    // ...without changing the outcome.
    assert_eq!(abl_memo.best.fingerprint(), base.best.fingerprint());

    let mut no_prune = base_cfg.clone();
    no_prune.ablate_pruning = true;
    let abl_prune = opt.optimize(&query, &no_prune).unwrap();
    assert!(abl_prune.table_plans > base.table_plans);
    assert!((abl_prune.best.props.cost.total() - base.best.props.cost.total()).abs() < 1e-6);
}

//! Observability integration tests: plan provenance, structured trace
//! events, metrics summaries, and the EXPLAIN ANALYZE renderer, exercised
//! through full optimize + execute runs.

use std::sync::Arc;

use starqo_core::{OptConfig, Optimizer};
use starqo_exec::Executor;
use starqo_plan::Explain;
use starqo_trace::{MemorySink, Phase, TraceEvent, Tracer};
use starqo_workload::{query_shape, synth_catalog, synth_database, QueryShape, SynthSpec};

fn spec() -> SynthSpec {
    SynthSpec {
        tables: 3,
        card_range: (50, 400),
        index_prob: 0.5,
        ..Default::default()
    }
}

#[test]
fn provenance_names_every_node_of_the_best_plan() {
    for seed in [3u64, 11, 42] {
        let cat = synth_catalog(seed, &spec());
        let opt = Optimizer::new(cat.clone()).expect("rules");
        let query = query_shape(&cat, QueryShape::Chain, 3, seed % 2 == 0);
        let out = opt.optimize(&query, &OptConfig::full()).expect("optimize");
        // A 3-way join: at least 2 joins + 3 leaves.
        assert!(out.best.op_count() >= 5);
        for line in out.origin_trace(&out.best) {
            assert!(
                !line.ends_with("(driver)"),
                "seed {seed}: node lacks a rule origin: {line}"
            );
            assert!(
                line.contains("[alt ") || line.ends_with("Glue"),
                "seed {seed}: origin is not a STAR alternative or Glue: {line}"
            );
        }
        // Every fingerprint in the best plan has a provenance entry.
        out.best.visit(&mut |n| {
            assert!(out.provenance.contains_key(&n.fingerprint()));
        });
    }
}

#[test]
fn traced_run_emits_a_rule_firing_for_every_best_plan_node() {
    let cat = synth_catalog(7, &spec());
    let opt = Optimizer::new(cat.clone()).expect("rules");
    let query = query_shape(&cat, QueryShape::Chain, 3, false);
    let sink = Arc::new(MemorySink::new());
    let tracer = Tracer::shared(sink.clone());
    let out = opt
        .optimize_traced(&query, &OptConfig::full(), tracer)
        .expect("optimize");
    let events = sink.events();

    // Per best-plan node: its provenance "Star[alt k]" must correspond to an
    // alt_fired event (or to a glue_ref for Glue veneers).
    out.best.visit(&mut |n| {
        let origin = out.provenance.get(&n.fingerprint()).expect("provenance");
        let seen = events.iter().any(|e| match e {
            TraceEvent::AltFired { star, alt, .. } => *origin == format!("{star}[alt {alt}]"),
            TraceEvent::GlueRef { .. } => origin == "Glue",
            _ => false,
        });
        assert!(seen, "no rule-firing event for origin {origin}");
    });

    // The taxonomy's optimizer-side kinds all appear on a real run.
    for kind in [
        "star_ref",
        "alt_fired",
        "plan_built",
        "table_insert",
        "glue_ref",
    ] {
        assert!(
            events.iter().any(|e| e.kind() == kind),
            "no {kind} event emitted"
        );
    }
    // Every plan_built event carries a cost breakdown that sums to its cost.
    for e in &events {
        if let TraceEvent::PlanBuilt {
            cost_once,
            cost_rescan,
            breakdown,
            ..
        } = e
        {
            let total = breakdown.io + breakdown.cpu + breakdown.comm + breakdown.other;
            assert!((total - (cost_once + cost_rescan)).abs() <= 1e-6 * total.max(1.0));
        }
    }
}

#[test]
fn metrics_summary_matches_stats_and_times_phases() {
    let cat = synth_catalog(5, &spec());
    let opt = Optimizer::new(cat.clone()).expect("rules");
    let query = query_shape(&cat, QueryShape::Star, 3, false);
    let out = opt
        .optimize(&query, &OptConfig::default())
        .expect("optimize");
    let m = &out.metrics;
    assert_eq!(m.counter("plans_built"), Some(out.stats.plans_built));
    assert_eq!(m.counter("star_refs"), Some(out.stats.star_refs));
    assert_eq!(m.counter("table_offered"), Some(out.table_stats.offered));
    assert!(
        m.phase(Phase::Enumerate).unwrap_or(0) > 0,
        "enumerate phase not timed"
    );
    assert!(
        m.phase(Phase::Compile).unwrap_or(0) > 0,
        "compile phase not timed"
    );
    // Glue runs inside enumeration, so its time is bounded by it.
    assert!(m.phase(Phase::Glue).unwrap_or(0) <= m.phase(Phase::Enumerate).unwrap_or(0));
    let rendered = m.render();
    assert!(rendered.contains("enumerate") && rendered.contains("plans_built"));
}

#[test]
fn explain_analyze_reports_estimates_against_actuals() {
    let cat = synth_catalog(9, &spec());
    let db = synth_database(9, cat.clone());
    let opt = Optimizer::new(cat.clone()).expect("rules");
    let query = query_shape(&cat, QueryShape::Chain, 2, false);
    let out = opt
        .optimize(&query, &OptConfig::default())
        .expect("optimize");
    let mut ex = Executor::new(&db, &query);
    ex.enable_node_stats();
    let result = ex.run(&out.best).expect("execute");

    let rendered = Explain::new(&cat, &query).analyze(&out.best, ex.node_actuals());
    let mut lines = rendered.lines();
    let header = lines.next().expect("header row");
    for col in [
        "operator", "est.card", "act.rows", "rel.err", "est.cost", "time", "loops",
    ] {
        assert!(header.contains(col), "missing column {col}: {header}");
    }
    // The root row reports the actual result cardinality and a % error.
    let root = lines.next().expect("root row");
    assert!(root.contains(&format!("  {}  ", result.rows.len())) || root.contains('%'));
    // Every node of the executed plan has actuals — no "-" placeholders.
    assert!(
        !rendered.contains("  -  "),
        "executed plan has un-measured nodes:\n{rendered}"
    );
    // One rendered row per plan node, plus the header.
    assert_eq!(rendered.lines().count(), out.best.op_count() + 1);
}

#[test]
fn executor_emits_exec_node_events() {
    let cat = synth_catalog(13, &spec());
    let db = synth_database(13, cat.clone());
    let opt = Optimizer::new(cat.clone()).expect("rules");
    let query = query_shape(&cat, QueryShape::Chain, 2, false);
    let out = opt
        .optimize(&query, &OptConfig::default())
        .expect("optimize");

    let sink = Arc::new(MemorySink::new());
    let mut ex = Executor::new(&db, &query);
    ex.set_tracer(Tracer::shared(sink.clone()));
    ex.run(&out.best).expect("execute");

    let execs: Vec<_> = sink
        .events()
        .into_iter()
        .filter(|e| e.kind() == "exec_node")
        .collect();
    // One exec_node event per distinct plan node.
    let mut distinct = std::collections::HashSet::new();
    out.best.visit(&mut |n| {
        distinct.insert(n.fingerprint());
    });
    assert_eq!(execs.len(), distinct.len());
    // The root's event carries the run's row count.
    let root_rows = ex.stats().rows_out;
    assert!(execs
        .iter()
        .any(|e| matches!(e, TraceEvent::ExecNode { rows_out, .. } if *rows_out == root_rows)));
}

//! Edge cases the generators don't produce: NULL values in data, empty
//! tables, all-rows-match predicates, duplicate join keys.

use std::sync::Arc;

use starqo_catalog::{Catalog, DataType, StorageKind, Value};
use starqo_core::{OptConfig, Optimizer};
use starqo_exec::{reference_eval, rows_equal_multiset, Executor};
use starqo_query::parse_query;
use starqo_storage::{Database, DatabaseBuilder};

fn catalog() -> Arc<Catalog> {
    Arc::new(
        Catalog::builder()
            .site("x")
            .table("L", "x", StorageKind::Heap, 20)
            .column("K", DataType::Int, Some(10))
            .column("V", DataType::Str, None)
            .table("R", "x", StorageKind::Heap, 20)
            .column("K", DataType::Int, Some(10))
            .column("W", DataType::Int, Some(5))
            .index("R_K", "R", &["K"], false, false)
            .build()
            .unwrap(),
    )
}

/// Check every alternative under every configuration against the reference.
fn check_all(db: &Database, cat: &Arc<Catalog>, sql: &str) -> usize {
    let query = parse_query(cat, sql).unwrap();
    let want = reference_eval(db, &query).unwrap();
    let opt = Optimizer::new(cat.clone()).unwrap();
    for config in [OptConfig::default(), OptConfig::full()] {
        let mut config = config;
        config.glue_keep_all = true;
        let out = opt.optimize(&query, &config).unwrap();
        for plan in out.root_alternatives.iter().chain([&out.best]) {
            let mut ex = Executor::new(db, &query);
            let got = ex.run(plan).unwrap();
            assert!(
                rows_equal_multiset(&got.rows, &want),
                "{sql}: diverged on {:?} ({} vs {})",
                plan.op_names(),
                got.rows.len(),
                want.len()
            );
        }
    }
    want.len()
}

#[test]
fn null_join_keys_never_match() {
    let cat = catalog();
    let mut b = DatabaseBuilder::new(cat.clone());
    for k in 0..10i64 {
        let key = if k % 3 == 0 {
            Value::Null
        } else {
            Value::Int(k)
        };
        b.insert("L", vec![key.clone(), Value::str(format!("l{k}"))])
            .unwrap();
        b.insert("R", vec![key, Value::Int(k % 5)]).unwrap();
    }
    let db = b.build().unwrap();
    // NULL = NULL is false: NULL-keyed rows join with nothing, in every
    // join method (NL filter, MG merge, HA hash, index probes).
    let n = check_all(&db, &cat, "SELECT L.V, R.W FROM L, R WHERE L.K = R.K");
    // 6 non-null keys survive on each side, keys unique → 6 matches? Keys
    // 1,2,4,5,7,8 on both sides → 6.
    assert_eq!(n, 6);
}

#[test]
fn null_local_predicates_filter_out() {
    let cat = catalog();
    let mut b = DatabaseBuilder::new(cat.clone());
    b.insert("L", vec![Value::Null, Value::str("null-key")])
        .unwrap();
    b.insert("L", vec![Value::Int(1), Value::str("one")])
        .unwrap();
    b.insert("R", vec![Value::Int(1), Value::Int(0)]).unwrap();
    let db = b.build().unwrap();
    // Comparisons against NULL are false for every operator.
    assert_eq!(check_all(&db, &cat, "SELECT L.V FROM L WHERE L.K = 1"), 1);
    assert_eq!(check_all(&db, &cat, "SELECT L.V FROM L WHERE L.K < 5"), 1);
    assert_eq!(check_all(&db, &cat, "SELECT L.V FROM L WHERE L.K <> 99"), 1);
}

#[test]
fn empty_tables_yield_empty_results_everywhere() {
    let cat = catalog();
    let db = DatabaseBuilder::new(cat.clone()).build().unwrap(); // no rows at all
    assert_eq!(check_all(&db, &cat, "SELECT L.V FROM L"), 0);
    assert_eq!(
        check_all(&db, &cat, "SELECT L.V, R.W FROM L, R WHERE L.K = R.K"),
        0
    );
}

#[test]
fn one_sided_empty_join() {
    let cat = catalog();
    let mut b = DatabaseBuilder::new(cat.clone());
    for k in 0..5i64 {
        b.insert("L", vec![Value::Int(k), Value::str(format!("l{k}"))])
            .unwrap();
    }
    let db = b.build().unwrap();
    assert_eq!(
        check_all(&db, &cat, "SELECT L.V, R.W FROM L, R WHERE L.K = R.K"),
        0
    );
}

#[test]
fn duplicate_join_keys_produce_cross_groups() {
    let cat = catalog();
    let mut b = DatabaseBuilder::new(cat.clone());
    // Three L rows and two R rows all with key 7: 3 × 2 = 6 matches — the
    // merge join's group-cartesian logic must produce all of them.
    for i in 0..3i64 {
        b.insert("L", vec![Value::Int(7), Value::str(format!("l{i}"))])
            .unwrap();
    }
    for i in 0..2i64 {
        b.insert("R", vec![Value::Int(7), Value::Int(i)]).unwrap();
    }
    b.insert("L", vec![Value::Int(1), Value::str("lone")])
        .unwrap();
    b.insert("R", vec![Value::Int(2), Value::Int(9)]).unwrap();
    let db = b.build().unwrap();
    assert_eq!(
        check_all(&db, &cat, "SELECT L.V, R.W FROM L, R WHERE L.K = R.K"),
        6
    );
}

#[test]
fn catalog_stats_may_disagree_with_data() {
    // The catalog says 20 rows; the database holds 200. Estimates are wrong
    // but plans must still be correct.
    let cat = catalog();
    let mut b = DatabaseBuilder::new(cat.clone());
    for k in 0..200i64 {
        b.insert("L", vec![Value::Int(k % 10), Value::str(format!("l{k}"))])
            .unwrap();
        b.insert("R", vec![Value::Int(k % 10), Value::Int(k % 5)])
            .unwrap();
    }
    let db = b.build().unwrap();
    let n = check_all(&db, &cat, "SELECT L.V, R.W FROM L, R WHERE L.K = R.K");
    assert_eq!(n, 200 * 20); // each L row matches 20 R rows
}

//! End-to-end trace analytics: real optimizer runs through the
//! `starqo-obs` profiler, flamegraph, and diff — including the full
//! serialize → JSONL → parse → analyze loop the CLI uses.

use std::sync::Arc;

use starqo_core::{OptConfig, Optimizer};
use starqo_obs::{FlameTree, Profile, TraceDiff};
use starqo_trace::{read_events, MemorySink, TraceEvent, Tracer};
use starqo_workload::{query_shape, synth_catalog, QueryShape, SynthSpec};

fn spec() -> SynthSpec {
    SynthSpec {
        tables: 3,
        card_range: (50, 400),
        index_prob: 0.5,
        ..Default::default()
    }
}

/// Trace one optimization and return its events.
fn traced_run(seed: u64, config: &OptConfig) -> Vec<TraceEvent> {
    let cat = synth_catalog(seed, &spec());
    let opt = Optimizer::new(cat.clone()).expect("rules");
    let query = query_shape(&cat, QueryShape::Chain, 3, false);
    let sink = Arc::new(MemorySink::new());
    opt.optimize_traced(&query, config, Tracer::shared(sink.clone()))
        .expect("optimize");
    sink.events()
}

#[test]
fn events_roundtrip_through_jsonl_on_a_real_run() {
    let events = traced_run(7, &OptConfig::full());
    assert!(events.len() > 100, "expected a substantial trace");
    let text: String = events.iter().map(|e| e.to_json() + "\n").collect();
    let (back, skipped) = read_events(&text);
    assert_eq!(skipped, 0, "every emitted event must parse back");
    assert_eq!(back, events);
}

#[test]
fn profile_attributes_a_real_run() {
    let events = traced_run(7, &OptConfig::full());
    let profile = Profile::from_events(&events);

    // The engine's entry star must be profiled, with nonzero activity.
    assert!(!profile.stars.is_empty());
    let total_fires: u64 = profile.stars.iter().map(|s| s.fires()).sum();
    let total_built: u64 = profile.stars.iter().map(|s| s.plans_built).sum();
    assert!(total_fires > 0, "no alternative firings attributed");
    assert!(total_built > 0, "no plan construction attributed");
    assert!(
        profile.stars.iter().any(|s| s.inclusive_nanos > 0),
        "no inclusive time recorded"
    );
    assert!(
        profile.stars.iter().any(|s| s.table_inserted > 0),
        "no table inserts attributed to a rule"
    );

    // The winning lineage is present and starts at the root.
    assert!(!profile.lineage.is_empty(), "no best_node events");
    assert_eq!(profile.lineage[0].depth, 0);
    assert!(profile
        .lineage
        .iter()
        .all(|r| r.origin.contains("[alt ") || r.origin == "Glue" || r.origin == "(driver)"));

    // The human report carries all the advertised sections.
    let text = profile.render();
    for needle in ["rule profile", "refs", "incl", "winning plan lineage"] {
        assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
    }
}

#[test]
fn flame_tree_accounts_for_the_run() {
    let events = traced_run(7, &OptConfig::full());
    let tree = FlameTree::from_events(&events);
    assert!(tree.root().inclusive > 0);
    let folded = tree.folded();
    assert!(!folded.is_empty());
    for line in folded.lines() {
        let (stack, value) = line.rsplit_once(' ').expect("folded format");
        assert!(!stack.is_empty());
        assert!(value.parse::<u64>().is_ok(), "bad folded value: {line}");
    }
}

#[test]
fn diff_pinpoints_a_disabled_rule() {
    // Baseline: everything on. Candidate: hash join disabled.
    let full = OptConfig::full();
    let mut no_ha = OptConfig::full();
    no_ha.enabled.remove("hashjoin");

    let a = traced_run(7, &full);
    let b = traced_run(7, &no_ha);
    let d = TraceDiff::compare(&a, &b);
    assert!(!d.is_empty(), "disabling a strategy family must show up");

    // The hash-join condition now fails (more often) in run b.
    let ha_cond = d
        .cond_deltas
        .iter()
        .find(|delta| delta.key.contains("enabled('hashjoin')"))
        .expect("hashjoin condition failure delta");
    assert!(
        ha_cond.b > ha_cond.a,
        "condition should fail more with the flag off: {ha_cond:?}"
    );

    // Identical configs diff clean.
    let d2 = TraceDiff::compare(&a, &traced_run(7, &full));
    assert!(d2.is_empty(), "same config, same seed => same behavior");
}

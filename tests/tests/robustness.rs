//! Robustness: the resource governor's anytime semantics, per-alternative
//! fault quarantine, typed error paths, and executor containment.
//!
//! The contract under test (the fault-injection harness drives the same one
//! at scale from `starqo-bench`'s chaos runner): every optimization and
//! execution finishes with a valid — possibly degraded — plan or a typed
//! error, never a process abort.

use std::sync::Arc;
use std::time::Duration;

use starqo_core::natives::NativeCtx;
use starqo_core::value::RuleValue;
use starqo_core::{
    faults, Budget, CoreError, FaultMode, FaultPlan, OptConfig, Optimizer, ACCESS_RULES, JOIN_RULES,
};
use starqo_exec::{rows_equal_multiset, ExecError, Executor};
use starqo_plan::Lolepop;
use starqo_query::{PredSet, QId};
use starqo_trace::{MemorySink, TraceEvent, Tracer};
use starqo_workload::{
    dept_emp_catalog, dept_emp_database, dept_emp_query, query_shape, synth_catalog,
    synth_database, QueryShape, SynthSpec,
};

/// A three-table synthetic chain: small, but with real join enumeration
/// (the two-table paper query exhausts too little to exercise greed).
fn multi_join_setup() -> (
    Arc<starqo_catalog::Catalog>,
    starqo_storage::Database,
    starqo_query::Query,
) {
    let spec = SynthSpec {
        tables: 3,
        card_range: (200, 800),
        index_prob: 0.5,
        btree_prob: 0.4,
        sites: 1,
        ..Default::default()
    };
    let cat = synth_catalog(0, &spec);
    let db = synth_database(0, cat.clone());
    let query = query_shape(&cat, QueryShape::Chain, 3, true);
    (cat, db, query)
}

// ---------------------------------------------------------------- governor

/// Anytime semantics: a tight memo cap degrades the run, the degradation is
/// visible on `Optimized` and in the trace stream, and the greedy plan still
/// computes the same answer as the exhaustive one.
#[test]
fn memo_cap_degrades_but_answer_matches() {
    let (cat, db, query) = multi_join_setup();
    let opt = Optimizer::new(cat).unwrap();

    let full = opt.optimize(&query, &OptConfig::full()).unwrap();
    assert!(!full.degraded);
    assert!(full.degraded_reason.is_none());
    let want = Executor::new(&db, &query).run(&full.best).unwrap();

    let sink = Arc::new(MemorySink::new());
    let tracer = Tracer::shared(sink.clone());
    let config = OptConfig {
        budget: Budget::default().with_memo_cap(2),
        ..OptConfig::full()
    };
    let out = opt.optimize_traced(&query, &config, tracer).unwrap();
    assert!(out.degraded, "memo cap 2 must exhaust on a 3-way join");
    let reason = out.degraded_reason.as_deref().unwrap_or_default();
    assert!(reason.contains("memo_entries"), "{reason}");
    assert!(
        sink.events()
            .iter()
            .any(|e| matches!(e, TraceEvent::BudgetExhausted { resource, .. }
                if resource == "memo_entries")),
        "budget_exhausted event missing from trace"
    );

    let got = Executor::new(&db, &query).run(&out.best).unwrap();
    assert_eq!(got.schema, want.schema);
    assert!(
        rows_equal_multiset(&got.rows, &want.rows),
        "degraded plan must compute the same result ({} vs {} rows)",
        got.rows.len(),
        want.rows.len()
    );
}

/// An already-expired deadline degrades immediately but still yields a
/// complete, executable plan (never an error).
#[test]
fn zero_deadline_still_returns_a_plan() {
    let (cat, db, query) = multi_join_setup();
    let opt = Optimizer::new(cat).unwrap();
    let config = OptConfig {
        budget: Budget::default().with_deadline(Duration::ZERO),
        ..OptConfig::full()
    };
    let out = opt.optimize(&query, &config).unwrap();
    assert!(out.degraded);
    assert!(out
        .degraded_reason
        .as_deref()
        .unwrap_or_default()
        .contains("deadline"));
    let full = opt.optimize(&query, &OptConfig::full()).unwrap();
    let want = Executor::new(&db, &query).run(&full.best).unwrap();
    let got = Executor::new(&db, &query).run(&out.best).unwrap();
    assert!(rows_equal_multiset(&got.rows, &want.rows));
}

/// A plans-built cap also degrades without erroring.
#[test]
fn plans_cap_degrades_but_completes() {
    let (cat, db, query) = multi_join_setup();
    let opt = Optimizer::new(cat).unwrap();
    let config = OptConfig {
        budget: Budget::default().with_plans_cap(5),
        ..OptConfig::full()
    };
    let out = opt.optimize(&query, &config).unwrap();
    assert!(out.degraded);
    Executor::new(&db, &query).run(&out.best).unwrap();
}

// -------------------------------------------------------------- quarantine

fn panicking_native(_: &NativeCtx<'_>, _: &[RuleValue]) -> starqo_core::Result<RuleValue> {
    panic!("native deliberately exploded")
}

fn erroring_native(_: &NativeCtx<'_>, _: &[RuleValue]) -> starqo_core::Result<RuleValue> {
    Err(CoreError::Eval {
        star: "(native)".into(),
        msg: "native deliberately failed".into(),
    })
}

/// Extra AccessRoot alternatives whose guard calls the broken native. The
/// built-in alternatives still produce plans, so the run must succeed with
/// the broken alternative quarantined.
const BROKEN_GUARD_RULES: &str = r#"
star AccessRoot(T, C, P) = [
    TableAccess(T, C, P) if broken_native(P);
]
"#;

fn quarantine_run(
    native: starqo_core::natives::NativeFn,
) -> (starqo_core::Optimized, Vec<TraceEvent>) {
    let cat = dept_emp_catalog(false, 1_000);
    let mut opt = Optimizer::empty(cat.clone());
    opt.register_native("broken_native", native);
    opt.load_rules(ACCESS_RULES).unwrap();
    opt.load_rules(JOIN_RULES).unwrap();
    opt.load_rules(BROKEN_GUARD_RULES).unwrap();
    let query = dept_emp_query(&cat);
    let sink = Arc::new(MemorySink::new());
    let tracer = Tracer::shared(sink.clone());
    let out = opt
        .optimize_traced(&query, &OptConfig::default(), tracer)
        .unwrap();
    // The optimizer survived a broken rule; the plan must still run.
    let db = dept_emp_database(cat);
    Executor::new(&db, &query).run(&out.best).unwrap();
    (out, sink.events())
}

#[test]
fn panicking_rule_is_quarantined_and_run_completes() {
    let (out, events) = quarantine_run(panicking_native);
    assert!(!out.quarantined.is_empty());
    let q = &out.quarantined[0];
    assert_eq!(q.star, "AccessRoot");
    assert!(q.cond.contains("broken_native"), "{q:?}");
    assert!(q.reason.contains("panic"), "{q:?}");
    assert!(q.reason.contains("deliberately exploded"), "{q:?}");
    assert!(
        events.iter().any(
            |e| matches!(e, TraceEvent::RuleQuarantined { star, cond, .. }
                if star == "AccessRoot" && cond.contains("broken_native"))
        ),
        "rule_quarantined event missing"
    );
    // Quarantine is sticky: the broken alternative fails once per run, not
    // once per reference.
    let quarantine_events = events
        .iter()
        .filter(|e| matches!(e, TraceEvent::RuleQuarantined { .. }))
        .count();
    assert_eq!(quarantine_events, out.quarantined.len());
}

#[test]
fn erroring_rule_is_quarantined_and_run_completes() {
    let (out, events) = quarantine_run(erroring_native);
    assert!(!out.quarantined.is_empty());
    assert!(out.quarantined[0].reason.contains("deliberately failed"));
    assert!(events
        .iter()
        .any(|e| matches!(e, TraceEvent::RuleQuarantined { .. })));
}

/// When *every* alternative of a STAR is broken, quarantine cannot save the
/// run: the first typed error surfaces instead of an empty result.
#[test]
fn fully_broken_star_surfaces_typed_error() {
    let cat = dept_emp_catalog(false, 100);
    let mut opt = Optimizer::empty(cat.clone());
    opt.register_native("broken_native", panicking_native);
    opt.load_rules(ACCESS_RULES).unwrap();
    opt.load_rules(
        r#"
star JoinRoot(T1, T2, P) = [
    TableAccess(T1, {}, P) if broken_native(P);
]
"#,
    )
    .unwrap();
    let query = dept_emp_query(&cat);
    let err = opt.optimize(&query, &OptConfig::default()).unwrap_err();
    assert!(
        matches!(err, CoreError::Panicked { .. }),
        "want Panicked, got {err:?}"
    );
}

// ------------------------------------------------------------- error paths

#[test]
fn cyclic_star_is_a_typed_error() {
    let cat = dept_emp_catalog(false, 100);
    let mut opt = Optimizer::empty(cat.clone());
    opt.load_rules(ACCESS_RULES).unwrap();
    opt.load_rules(
        r#"
star JoinRoot(T1, T2, P) = Hither(T1, T2, P);
star Hither(T1, T2, P) = Thither(T1, T2, P);
star Thither(T1, T2, P) = Hither(T1, T2, P);
"#,
    )
    .unwrap();
    let query = dept_emp_query(&cat);
    let err = opt.optimize(&query, &OptConfig::default()).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("recursion limit"), "{msg}");
}

#[test]
fn unknown_rule_reference_is_a_compile_error() {
    let cat = dept_emp_catalog(false, 100);
    let mut opt = Optimizer::empty(cat);
    let err = opt
        .load_rules("star JoinRoot(T1, T2, P) = NoSuchStar(T1, T2, P);")
        .unwrap_err();
    assert!(
        matches!(err, CoreError::Compile { .. }),
        "want Compile, got {err:?}"
    );
}

/// All conditions of applicability failing is not a crash — it is the typed
/// "no plan" outcome.
#[test]
fn empty_alternative_set_is_a_typed_no_plan() {
    let cat = dept_emp_catalog(false, 100);
    let mut opt = Optimizer::empty(cat.clone());
    opt.load_rules(ACCESS_RULES).unwrap();
    opt.load_rules(
        r#"
star JoinRoot(T1, T2, P) = [
    TableAccess(T1, {}, P) if is_empty(join_preds(P));
]
"#,
    )
    .unwrap();
    let query = dept_emp_query(&cat); // has a join predicate: guard fails
    let err = opt.optimize(&query, &OptConfig::default()).unwrap_err();
    assert!(
        matches!(err, CoreError::NoPlan(_)),
        "want NoPlan, got {err:?}"
    );
}

/// A malformed plan (GET with no ACCESS child) is a typed executor error,
/// not an index panic.
#[test]
fn executor_rejects_malformed_plan_with_typed_error() {
    let cat = dept_emp_catalog(false, 100);
    let query = dept_emp_query(&cat);
    let db = dept_emp_database(cat.clone());
    let opt = Optimizer::new(cat).unwrap();
    let out = opt.optimize(&query, &OptConfig::default()).unwrap();
    // Steal real props so only the shape (zero inputs) is wrong.
    let bad = starqo_plan::PlanNode::with_props(
        Lolepop::Get {
            q: QId(0),
            cols: Default::default(),
            preds: PredSet::EMPTY,
        },
        vec![],
        out.best.props.clone(),
    );
    let err = Executor::new(&db, &query).run(&bad).unwrap_err();
    match err {
        ExecError::BadPlan(msg) => assert!(msg.contains("GET"), "{msg}"),
        other => panic!("want BadPlan, got {other:?}"),
    }
}

// ------------------------------------------------------- fault injection

/// Engine-level fault injection: an erroring native quarantines the rules
/// that call it; the run completes (or fails typed), never aborts.
#[test]
fn injected_native_error_is_contained() {
    let cat = dept_emp_catalog(false, 100);
    let query = dept_emp_query(&cat);
    let db = dept_emp_database(cat.clone());
    let opt = Optimizer::new(cat).unwrap();
    let config = OptConfig {
        faults: Some(Arc::new(FaultPlan::single(
            "native",
            "join_preds",
            FaultMode::Error,
            1,
        ))),
        ..OptConfig::full()
    };
    match opt.optimize(&query, &config) {
        Ok(out) => {
            assert!(!out.quarantined.is_empty(), "fault must leave a trace");
            Executor::new(&db, &query).run(&out.best).unwrap();
        }
        Err(e) => {
            // Typed is acceptable; what matters is that we got here.
            let _ = e.to_string();
        }
    }
}

/// The executor fault hook surfaces injections and contains panics as typed
/// errors.
#[test]
fn executor_fault_hook_yields_typed_errors() {
    let cat = dept_emp_catalog(false, 100);
    let query = dept_emp_query(&cat);
    let db = dept_emp_database(cat.clone());
    let opt = Optimizer::new(cat).unwrap();
    let out = opt.optimize(&query, &OptConfig::default()).unwrap();

    let mut ex = Executor::new(&db, &query);
    ex.set_fault_hook(Arc::new(|op: &str| {
        op.starts_with("JOIN")
            .then(|| "injected for JOIN".to_string())
    }));
    let err = ex.run(&out.best).unwrap_err();
    assert!(matches!(err, ExecError::Injected(_)), "{err:?}");

    let mut ex = Executor::new(&db, &query);
    ex.set_fault_hook(Arc::new(|op: &str| {
        if op.starts_with("ACCESS") {
            panic!("hook exploded");
        }
        None
    }));
    let err = ex.run(&out.best).unwrap_err();
    match err {
        ExecError::Panicked(msg) => assert!(msg.contains("hook exploded"), "{msg}"),
        other => panic!("want Panicked, got {other:?}"),
    }

    // The spec grammar wires the same machinery from the environment
    // (STARQO_FAULTS); exercise the parse → trigger → fire path directly.
    let plan = FaultPlan::parse("exec:JOIN:error@1").unwrap();
    let mode = plan.trigger("exec", "JOIN(NL)").expect("prefix match");
    assert_eq!(
        faults::fire(mode, "exec"),
        Some("injected fault: error at exec".to_string())
    );
}

// ------------------------------------------------------------------ lints

#[test]
fn lint_warnings_surface_through_the_optimizer() {
    let cat = dept_emp_catalog(false, 100);
    let mut opt = Optimizer::empty(cat);
    opt.load_rules(ACCESS_RULES).unwrap();
    assert!(opt.warnings().is_empty(), "built-ins must lint clean");
    opt.load_rules(
        r#"
star Suspicious(T, P) = {
    TableAccess(T, {}, {});
    TableAccess(T, {}, P) if is_empty(P);
}
"#,
    )
    .unwrap();
    let kinds: Vec<_> = opt.warnings().iter().map(|w| w.kind).collect();
    assert!(
        kinds.contains(&starqo_dsl::LintKind::UnreachableAlternative),
        "{kinds:?}"
    );
}

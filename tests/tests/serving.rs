//! Cross-crate serving-layer tests: cache contention (exactly one cold
//! optimization per distinct fingerprint, however many threads race) and
//! catalog-epoch invalidation (stats refreshes and index DDL visibly
//! change what a re-optimization produces).

use std::sync::Arc;

use starqo_serve::{Service, ServiceConfig};
use starqo_trace::{MemorySink, TraceEvent, Tracer};
use starqo_workload::{query_shape_param, synth_catalog, QueryShape, Rng64, SynthSpec};

fn small_catalog(seed: u64) -> Arc<starqo_catalog::Catalog> {
    synth_catalog(
        seed,
        &SynthSpec {
            tables: 4,
            card_range: (50, 200),
            sites: 1,
            index_prob: 0.0,
            btree_prob: 0.0,
            payload_cols: 2,
        },
    )
}

/// 8 threads x 32 requests over 3 templates (fresh constants every time):
/// the single-flight cache must run exactly one cold optimization per
/// distinct fingerprint, counted both by the service counter and by the
/// `cache_miss` events in the trace.
#[test]
fn contention_one_cold_optimization_per_fingerprint() {
    let cat = small_catalog(11);
    let sink = Arc::new(MemorySink::new());
    let svc = Arc::new(
        Service::new(Arc::clone(&cat), ServiceConfig::default())
            .expect("service")
            .with_tracer(Tracer::shared(sink.clone())),
    );
    let templates = [
        (QueryShape::Chain, 2),
        (QueryShape::Chain, 3),
        (QueryShape::Star, 3),
    ];

    std::thread::scope(|scope| {
        for tid in 0..8u64 {
            let svc = Arc::clone(&svc);
            let cat = Arc::clone(&cat);
            scope.spawn(move || {
                let mut rng = Rng64::new(0xBEEF ^ tid);
                for i in 0..32usize {
                    let (shape, n) = templates[i % templates.len()];
                    let query = query_shape_param(&cat, shape, n, Some(rng.below(64) as i64));
                    let out = svc.optimize(&query).expect("optimize");
                    assert_eq!(out.epoch, 0);
                }
            });
        }
    });

    let snap = svc.counters();
    assert_eq!(snap.requests, 8 * 32);
    assert_eq!(
        snap.misses,
        templates.len() as u64,
        "exactly one cold optimization per distinct fingerprint: {snap:?}"
    );
    assert_eq!(snap.hits + snap.coalesced + snap.misses, snap.requests);
    assert_eq!(snap.evictions, 0);
    assert!(snap.hit_ratio() > 0.9);
    assert_eq!(svc.cache_len(), templates.len());

    let events = sink.events();
    let miss_events = events
        .iter()
        .filter(|e| matches!(e, TraceEvent::CacheMiss { .. }))
        .count() as u64;
    let hit_events = events
        .iter()
        .filter(|e| matches!(e, TraceEvent::CacheHit { .. }))
        .count() as u64;
    assert_eq!(miss_events, snap.misses);
    assert_eq!(hit_events, snap.hits + snap.coalesced);
}

/// A stats refresh bumps the catalog epoch: the cached plan is invalidated
/// on contact and the re-optimization sees the new table cardinality.
#[test]
fn stats_epoch_bump_reoptimizes_with_new_cardinality() {
    let cat = small_catalog(23);
    let svc = Service::new(Arc::clone(&cat), ServiceConfig::default()).expect("service");
    let query = query_shape_param(&cat, QueryShape::Chain, 2, Some(3));

    let o1 = svc.optimize(&query).expect("cold");
    assert!(!o1.cache_hit && o1.epoch == 0);
    assert!(svc.optimize(&query).expect("warm").cache_hit);

    // 100x the cardinality of every joined table.
    for t in ["T0", "T1"] {
        let card = cat.table_by_name(t).expect("table").card;
        svc.shared_catalog()
            .set_table_card(t, card * 100)
            .expect("stats update");
    }
    let o2 = svc.optimize(&query).expect("re-optimize");
    assert_eq!(o2.epoch, 2, "two stats updates bump the epoch twice");
    assert!(!o2.cache_hit, "stale plan must not be served");
    assert!(
        o2.optimized.best.props.card > o1.optimized.best.props.card,
        "re-optimization must see the new statistics ({} vs {})",
        o2.optimized.best.props.card,
        o1.optimized.best.props.card
    );
    let snap = svc.counters();
    assert_eq!(snap.invalidations, 1);
    assert_eq!(snap.misses, 2);

    // The plan re-caches under the new epoch.
    assert!(svc.optimize(&query).expect("warm again").cache_hit);
}

/// Index DDL bumps the epoch too: after CREATE INDEX the re-optimization
/// runs against a recompiled rule set that can see the new access path.
#[test]
fn index_ddl_invalidates_and_reoptimizes() {
    let cat = small_catalog(37);
    assert!(cat.indexes().is_empty(), "spec disables indexes");
    let svc = Service::new(Arc::clone(&cat), ServiceConfig::default()).expect("service");
    let query = query_shape_param(&cat, QueryShape::Chain, 2, None);

    let o1 = svc.optimize(&query).expect("cold");
    assert!(svc.optimize(&query).expect("warm").cache_hit);

    let epoch = svc
        .shared_catalog()
        .create_index("T1_ID", "T1", &["ID"], true, false)
        .expect("create index");
    assert_eq!(epoch, 1);
    let (snapshot, _) = svc.shared_catalog().snapshot();
    assert_eq!(snapshot.indexes().len(), 1);

    let o2 = svc.optimize(&query).expect("re-optimize");
    assert!(!o2.cache_hit, "DDL must invalidate the cached plan");
    assert_eq!(o2.epoch, 1);
    assert!(
        o2.optimized.best.props.cost.total() <= o1.optimized.best.props.cost.total(),
        "a new unique index can only help this join ({} vs {})",
        o2.optimized.best.props.cost.total(),
        o1.optimized.best.props.cost.total()
    );
    assert_eq!(svc.counters().invalidations, 1);

    // Dropping the index invalidates again.
    svc.shared_catalog().drop_index("T1_ID").expect("drop");
    let o3 = svc.optimize(&query).expect("re-optimize after drop");
    assert!(!o3.cache_hit);
    assert_eq!(o3.epoch, 2);
}

//! Shared helpers for the integration-test crate (see tests/tests/).

//! # starqo
//!
//! Grammar-like functional rules for representing query optimization
//! alternatives — a from-scratch reproduction of Guy M. Lohman's SIGMOD 1988
//! paper (the Starburst *STAR* rule system), as a complete, runnable Rust
//! query-optimizer stack.
//!
//! This umbrella crate re-exports the workspace:
//!
//! * [`catalog`] — schemas, statistics, sites, access paths;
//! * [`storage`] — the in-memory heap/B-tree storage substrate;
//! * [`query`] — quantifiers, predicates, the §4 classifications, mini-SQL;
//! * [`plan`] — LOLEPOPs, plans, property vectors, cost model;
//! * [`exec`] — the run-time query evaluator;
//! * [`core`] — the STAR engine: rule compiler/interpreter, Glue, join
//!   enumeration, the built-in rule files;
//! * [`dsl`] — the textual rule language;
//! * [`xform`] — the transformational (EXODUS-style) baseline optimizer;
//! * [`workload`] — synthetic data and query generators;
//! * [`trace`] — structured optimizer/executor tracing and metrics
//!   (see `docs/OBSERVABILITY.md`).
//!
//! ## Quickstart
//!
//! ```
//! use starqo::prelude::*;
//!
//! // 1. A catalog (the paper's DEPT/EMP schema) and some data.
//! let cat = starqo::workload::dept_emp_catalog(false, 1_000);
//! let db = starqo::workload::dept_emp_database(cat.clone());
//!
//! // 2. A query, through the mini-SQL parser.
//! let query = parse_query(
//!     &cat,
//!     "SELECT E.NAME FROM DEPT D, EMP E WHERE D.MGR = 'Haas' AND D.DNO = E.DNO",
//! )
//! .unwrap();
//!
//! // 3. Optimize: the rules are data, compiled from `rules/*.star` text.
//! let optimizer = Optimizer::new(cat.clone()).unwrap();
//! let optimized = optimizer.optimize(&query, &OptConfig::default()).unwrap();
//!
//! // 4. Execute the chosen plan.
//! let mut executor = Executor::new(&db, &query);
//! let result = executor.run(&optimized.best).unwrap();
//! assert_eq!(result.rows.len(), 20); // 1 Haas dept × 20 emps
//! ```

pub use starqo_catalog as catalog;
pub use starqo_core as core;
pub use starqo_dsl as dsl;
pub use starqo_exec as exec;
pub use starqo_plan as plan;
pub use starqo_query as query;
pub use starqo_storage as storage;
pub use starqo_trace as trace;
pub use starqo_workload as workload;
pub use starqo_xform as xform;

/// The most common imports, in one place.
pub mod prelude {
    pub use starqo_catalog::{Catalog, DataType, StorageKind, Value};
    pub use starqo_core::{OptConfig, Optimized, Optimizer};
    pub use starqo_exec::{reference_eval, rows_equal_multiset, Executor};
    pub use starqo_plan::{CostModel, Explain, JoinFlavor, Lolepop, PlanRef};
    pub use starqo_query::{parse_query, Query, QueryBuilder};
    pub use starqo_storage::{Database, DatabaseBuilder};
    pub use starqo_trace::{
        JsonLinesSink, MemorySink, MetricsRegistry, NullSink, Phase, TraceEvent, Tracer,
    };
}

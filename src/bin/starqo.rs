//! `starqo` — an interactive shell around the optimizer stack.
//!
//! ```sh
//! cargo run --bin starqo            # REPL on the demo DEPT/EMP database
//! echo "explain SELECT ..." | cargo run --bin starqo
//! ```
//!
//! Commands:
//! ```text
//! SELECT ...            run a query (optimize + execute)
//! explain SELECT ...    show the chosen plan, cost, and rule origins
//! alternatives SELECT . show every surviving alternative plan
//! enable <feature>      hashjoin | force_projection | dynamic_index | tid_sort
//! disable <feature>
//! set bushy on|off      composite inners
//! set cartesian on|off
//! rules <file>          load extra STAR rules from a file
//! tables                list catalog tables
//! stats                 counters from the last optimization
//! help / quit
//! ```

use std::io::{BufRead, Write as _};

use starqo::prelude::*;
use starqo::workload::{dept_emp_catalog, dept_emp_database};

struct Shell {
    cat: std::sync::Arc<Catalog>,
    db: Database,
    optimizer: Optimizer,
    config: OptConfig,
    last: Option<starqo::core::Optimized>,
}

impl Shell {
    fn new() -> Self {
        let cat = dept_emp_catalog(false, 10_000);
        let db = dept_emp_database(cat.clone());
        let optimizer = Optimizer::new(cat.clone()).expect("builtin rules compile");
        Shell {
            cat,
            db,
            optimizer,
            config: OptConfig::default(),
            last: None,
        }
    }

    fn run_line(&mut self, line: &str) -> bool {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            return true;
        }
        let lower = line.to_ascii_lowercase();
        match () {
            _ if lower == "quit" || lower == "exit" => return false,
            _ if lower == "help" => self.help(),
            _ if lower == "tables" => self.tables(),
            _ if lower == "stats" => self.stats(),
            _ if lower.starts_with("enable ") => self.toggle(&line[7..], true),
            _ if lower.starts_with("disable ") => self.toggle(&line[8..], false),
            _ if lower.starts_with("set ") => self.set(&line[4..]),
            _ if lower.starts_with("rules ") => self.load_rules(line[6..].trim()),
            _ if lower.starts_with("explain ") => self.explain(&line[8..], false),
            _ if lower.starts_with("alternatives ") => self.explain(&line[13..], true),
            _ if lower.starts_with("select ") || lower == "select" => self.query(line),
            _ => println!("unrecognized command; try `help`"),
        }
        true
    }

    fn help(&self) {
        println!(
            "commands:\n  SELECT ...              run a query\n  explain SELECT ...      show the chosen plan + rule origins\n  alternatives SELECT ... show all surviving plans\n  enable/disable <f>      hashjoin force_projection dynamic_index tid_sort\n  set bushy|cartesian on|off\n  rules <file>            load extra STAR rules\n  tables | stats | help | quit"
        );
    }

    fn tables(&self) {
        for t in self.cat.tables() {
            let cols: Vec<&str> = t.columns.iter().map(|c| c.name.as_str()).collect();
            println!(
                "  {} ({}) — {} rows, {} storage, site {}",
                t.name,
                cols.join(", "),
                t.card,
                t.storage.name(),
                self.cat.site_name(t.site)
            );
        }
        for ix in self.cat.indexes() {
            println!("  index {} on {}", ix.name, self.cat.table(ix.table).name);
        }
    }

    fn stats(&self) {
        match &self.last {
            None => println!("no optimization yet"),
            Some(o) => {
                let s = &o.stats;
                println!(
                    "  STAR refs {} (memo hits {}), conditions {}, plans built {} (rejected {})",
                    s.star_refs, s.memo_hits, s.conds_evaluated, s.plans_built, s.plans_rejected
                );
                println!(
                    "  glue refs {} (cache hits {}, veneers {}), plan table: {} plans / {} keys",
                    s.glue_refs, s.glue_cache_hits, s.glue_veneers, o.table_plans, o.table_keys
                );
            }
        }
    }

    fn toggle(&mut self, feature: &str, on: bool) {
        let feature = feature.trim();
        if on {
            self.config.enabled.insert(feature.to_string());
        } else {
            self.config.enabled.remove(feature);
        }
        println!("  {} {}", feature, if on { "enabled" } else { "disabled" });
    }

    fn set(&mut self, rest: &str) {
        let mut parts = rest.split_whitespace();
        let (Some(what), Some(val)) = (parts.next(), parts.next()) else {
            println!("usage: set bushy|cartesian on|off");
            return;
        };
        let on = val.eq_ignore_ascii_case("on");
        match what.to_ascii_lowercase().as_str() {
            "bushy" => self.config.composite_inners = on,
            "cartesian" => self.config.cartesian = on,
            other => {
                println!("unknown setting {other}");
                return;
            }
        }
        println!("  {what} = {on}");
    }

    fn load_rules(&mut self, path: &str) {
        match std::fs::read_to_string(path) {
            Err(e) => println!("cannot read {path}: {e}"),
            Ok(text) => match self.optimizer.load_rules(&text) {
                Ok(()) => println!("  rules loaded from {path}"),
                Err(e) => println!("  rule error: {e}"),
            },
        }
    }

    fn optimize(&mut self, sql: &str, keep_all: bool) -> Option<(Query, starqo::core::Optimized)> {
        let query = match parse_query(&self.cat, sql) {
            Ok(q) => q,
            Err(e) => {
                println!("  {e}");
                return None;
            }
        };
        let mut config = self.config.clone();
        config.glue_keep_all = keep_all;
        match self.optimizer.optimize(&query, &config) {
            Ok(out) => {
                self.last = Some(out.clone());
                Some((query, out))
            }
            Err(e) => {
                println!("  optimizer error: {e}");
                None
            }
        }
    }

    fn explain(&mut self, sql: &str, alternatives: bool) {
        let Some((query, out)) = self.optimize(sql, alternatives) else {
            return;
        };
        let ex = Explain::new(&self.cat, &query);
        if alternatives {
            println!("  {} surviving alternatives:", out.root_alternatives.len());
            let mut sorted = out.root_alternatives.clone();
            sorted.sort_by(|a, b| a.props.cost.total().total_cmp(&b.props.cost.total()));
            for (i, p) in sorted.iter().enumerate() {
                println!(
                    "--- alternative {} (cost {:.1}) ---",
                    i + 1,
                    p.props.cost.total()
                );
                print!("{}", ex.tree(p));
            }
            return;
        }
        println!("chosen plan (cost {:.1}):", out.best.props.cost.total());
        print!("{}", ex.tree(&out.best));
        println!("origin:");
        for line in out.origin_trace(&out.best) {
            println!("  {line}");
        }
    }

    fn query(&mut self, sql: &str) {
        let Some((query, out)) = self.optimize(sql, false) else {
            return;
        };
        let mut exec = Executor::new(&self.db, &query);
        match exec.run(&out.best) {
            Err(e) => println!("  execution error: {e}"),
            Ok(result) => {
                let header: Vec<String> = result
                    .schema
                    .iter()
                    .map(|c| query.qcol_name(&self.cat, *c))
                    .collect();
                println!("  {}", header.join(" | "));
                for row in result.rows.iter().take(20) {
                    println!("  {row}");
                }
                if result.rows.len() > 20 {
                    println!("  ... ({} rows total)", result.rows.len());
                }
                let s = exec.stats();
                println!(
                    "  {} rows; {} pages read, {} fetches, {} probes, {} msgs",
                    result.rows.len(),
                    s.pages_read,
                    s.tuples_fetched,
                    s.probes,
                    s.msgs
                );
            }
        }
    }
}

fn main() {
    println!(
        "starqo — STAR rule optimizer shell (demo DEPT/EMP database loaded; `help` for commands)"
    );
    let mut shell = Shell::new();
    let stdin = std::io::stdin();
    let interactive = atty_guess();
    loop {
        if interactive {
            print!("starqo> ");
            let _ = std::io::stdout().flush();
        }
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {
                if !interactive {
                    println!("starqo> {}", line.trim());
                }
                if !shell.run_line(&line) {
                    break;
                }
            }
            Err(_) => break,
        }
    }
}

/// Crude interactivity guess without extra dependencies: honor an env
/// override, else assume interactive (prompts are harmless when piped).
fn atty_guess() -> bool {
    std::env::var("STARQO_BATCH").is_err()
}

//! Distributed optimization, R\*-style (§4.2–4.3): tables at different
//! sites, join-site alternatives, SHIP glue, and the store-the-shipped-inner
//! rule — then execute the winner with simulated network accounting.
//!
//! ```sh
//! cargo run --example distributed_query
//! ```

use starqo::prelude::*;

fn main() {
    // Three sites; SALES at the warehouse, PRODUCTS at HQ, REGIONS at the
    // branch. The query runs at HQ.
    let cat = std::sync::Arc::new(
        Catalog::builder()
            .site("hq")
            .site("warehouse")
            .site("branch")
            .table("SALES", "warehouse", StorageKind::Heap, 50_000)
            .column("PID", DataType::Int, Some(2_000))
            .column("RID", DataType::Int, Some(50))
            .column("AMOUNT", DataType::Double, None)
            .table("PRODUCTS", "hq", StorageKind::Heap, 2_000)
            .column("PID", DataType::Int, Some(2_000))
            .column("NAME", DataType::Str, None)
            .table("REGIONS", "branch", StorageKind::Heap, 50)
            .column("RID", DataType::Int, Some(50))
            .column("REGION", DataType::Str, Some(50))
            .build()
            .expect("catalog"),
    );
    let query = parse_query(
        &cat,
        "SELECT P.NAME, R.REGION, S.AMOUNT FROM SALES S, PRODUCTS P, REGIONS R \
         WHERE S.PID = P.PID AND S.RID = R.RID AND R.REGION = 'west'",
    )
    .expect("query");

    let optimizer = Optimizer::new(cat.clone()).expect("rules compile");
    let optimized = optimizer
        .optimize(&query, &OptConfig::default())
        .expect("optimize");

    let explain = Explain::new(&cat, &query);
    println!(
        "== chosen distributed plan (cost {:.1}) ==",
        optimized.best.props.cost.total()
    );
    println!("{}", explain.tree(&optimized.best));
    println!(
        "delivered at: {} (the query site)",
        cat.site_name(optimized.best.props.site)
    );
    let mut ships = 0;
    optimized.best.visit(&mut |n| {
        if let Lolepop::Ship { to } = &n.op {
            ships += 1;
            println!("  SHIP → {}", cat.site_name(*to));
        }
    });
    println!("total SHIP operators: {ships}");

    // Load a scaled-down dataset (the optimizer planned from the catalog
    // statistics; execution — and the brute-force cross-check, which is a
    // full Cartesian product — runs on this smaller instance).
    let mut loader = DatabaseBuilder::new(cat.clone());
    for p in 0..200i64 {
        loader
            .insert(
                "PRODUCTS",
                vec![Value::Int(p), Value::str(format!("prod{p}"))],
            )
            .unwrap();
    }
    let regions = ["west", "east", "north", "south"];
    for r in 0..20i64 {
        loader
            .insert(
                "REGIONS",
                vec![Value::Int(r), Value::str(regions[(r % 4) as usize])],
            )
            .unwrap();
    }
    for s in 0..2_000i64 {
        loader
            .insert(
                "SALES",
                vec![
                    Value::Int(s % 200),
                    Value::Int(s % 20),
                    Value::Double(s as f64 * 0.5),
                ],
            )
            .unwrap();
    }
    let db = loader.build().expect("database");
    let mut executor = Executor::new(&db, &query);
    let result = executor.run(&optimized.best).expect("execute");
    let stats = executor.stats();
    println!(
        "\nexecuted: {} rows; simulated traffic: {} messages, {} bytes",
        result.rows.len(),
        stats.msgs,
        stats.bytes_shipped
    );
    let reference = reference_eval(&db, &query).expect("reference");
    assert!(rows_equal_multiset(&result.rows, &reference));
    println!("verified against the reference evaluator ✓");
}

//! Quickstart: catalog → data → SQL → optimize → explain → execute.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use starqo::prelude::*;

fn main() {
    // 1. Define a catalog: tables, statistics, an index, one site.
    let cat = std::sync::Arc::new(
        Catalog::builder()
            .site("hq")
            .table("ORDERS", "hq", StorageKind::Heap, 20_000)
            .column("OID", DataType::Int, Some(20_000))
            .column("CID", DataType::Int, Some(1_000))
            .column("TOTAL", DataType::Double, None)
            .table("CUSTOMERS", "hq", StorageKind::Heap, 1_000)
            .column("CID", DataType::Int, Some(1_000))
            .column("NAME", DataType::Str, None)
            .column("TIER", DataType::Int, Some(4))
            .index("ORDERS_CID", "ORDERS", &["CID"], false, false)
            .build()
            .expect("catalog"),
    );

    // 2. Load some rows.
    let mut loader = DatabaseBuilder::new(cat.clone());
    for c in 0..1_000i64 {
        loader
            .insert(
                "CUSTOMERS",
                vec![
                    Value::Int(c),
                    Value::str(format!("cust{c}")),
                    Value::Int(c % 4),
                ],
            )
            .expect("row");
    }
    for o in 0..20_000i64 {
        loader
            .insert(
                "ORDERS",
                vec![
                    Value::Int(o),
                    Value::Int(o % 1_000),
                    Value::Double(o as f64),
                ],
            )
            .expect("row");
    }
    let db = loader.build().expect("database");

    // 3. Parse a query.
    let query = parse_query(
        &cat,
        "SELECT C.NAME, O.TOTAL FROM CUSTOMERS C, ORDERS O \
         WHERE C.CID = O.CID AND C.TIER = 1",
    )
    .expect("query");

    // 4. Optimize. The strategy repertoire is rule text, compiled at
    //    construction; the config toggles optional strategy families.
    let optimizer = Optimizer::new(cat.clone()).expect("rules compile");
    let config = OptConfig::default().enable("hashjoin");
    let optimized = optimizer.optimize(&query, &config).expect("optimize");

    let explain = Explain::new(&cat, &query);
    println!(
        "== chosen plan (cost {:.1}) ==",
        optimized.best.props.cost.total()
    );
    println!("{}", explain.tree(&optimized.best));
    println!(
        "== functional notation ==\n{}\n",
        explain.functional(&optimized.best)
    );
    println!(
        "optimizer work: {} STAR references, {} plans built, {} alternatives survive",
        optimized.stats.star_refs,
        optimized.stats.plans_built,
        optimized.root_alternatives.len()
    );
    println!("\n== plan origin (which rule produced each operator) ==");
    for line in optimized.origin_trace(&optimized.best) {
        println!("  {line}");
    }

    // 5. Execute, and double-check against the brute-force reference.
    let mut executor = Executor::new(&db, &query);
    let result = executor.run(&optimized.best).expect("execute");
    println!("\nresult: {} rows (showing 5)", result.rows.len());
    for row in result.rows.iter().take(5) {
        println!("  {row}");
    }
    let reference = reference_eval(&db, &query).expect("reference");
    assert!(rows_equal_multiset(&result.rows, &reference));
    println!("\nverified identical to the brute-force reference evaluator ✓");
}

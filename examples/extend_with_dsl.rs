//! Extensibility (§5): teach the optimizer a brand-new join strategy at run
//! time — a Bloom join, one of the filtration methods the paper lists as
//! expressible (§4) — by registering a property function, an execution
//! routine, and five lines of rule text. No engine code changes.
//!
//! ```sh
//! cargo run --example extend_with_dsl
//! ```

use std::sync::Arc;

use starqo::prelude::*;
use starqo_plan::{Cost, ExtArg};
use starqo_query::{CmpOp, PredExpr, Scalar};

/// §4.5-style rule text: appending a definition to JMeth adds the
/// alternative to every join the optimizer considers.
const BLOOMJOIN_RULE: &str = "
star JMeth(T1, T2, P) =
    with IP = inner_preds(P, T2),
         HP = hashable_preds(join_preds(P), T1, T2)
    [
        BLOOMJOIN(Glue(T1, {}), Glue(T2, IP), HP, P - IP)
            if enabled('bloomjoin') and not is_empty(HP);
    ]
";

fn main() {
    let cat = std::sync::Arc::new(
        Catalog::builder()
            .site("x")
            .table("R", "x", StorageKind::Heap, 5_000)
            .column("K", DataType::Int, Some(5_000))
            .column("G", DataType::Int, Some(500))
            .table("S", "x", StorageKind::Heap, 5_000)
            .column("K", DataType::Int, Some(5_000))
            .build()
            .expect("catalog"),
    );
    // The selective predicate on R is what gives the Bloom filter teeth.
    let query = parse_query(
        &cat,
        "SELECT R.K, S.K FROM R, S WHERE R.K = S.K AND R.G = 0",
    )
    .expect("query");

    // Stock optimizer first.
    let stock = Optimizer::new(cat.clone()).expect("rules compile");
    let config = OptConfig::default().enable("hashjoin").enable("bloomjoin");
    let before = stock.optimize(&query, &config).expect("optimize");
    println!(
        "before extension: {} (cost {:.0})",
        before.best.op_names().join(" <- "),
        before.best.props.cost.total()
    );

    // ---- the extension: §5's three steps ------------------------------

    // (1) A property function for the new LOLEPOP.
    let mut extended = Optimizer::new(cat.clone()).expect("rules compile");
    extended.register_ext_op(
        "BLOOMJOIN",
        Arc::new(|op, inputs, ctx| {
            let Lolepop::Ext { args, .. } = op else {
                unreachable!()
            };
            let (ExtArg::Preds(jp), ExtArg::Preds(residual)) = (&args[0], &args[1]) else {
                return Err(starqo_plan::PlanError::Invalid("bad BLOOMJOIN args".into()));
            };
            let (o, i) = (inputs[0], inputs[1]);
            if o.site != i.site {
                return Err(starqo_plan::PlanError::SiteMismatch { op: "BLOOMJOIN" });
            }
            let sel = ctx.sel();
            let both = o.tables.union(i.tables);
            let new_preds = jp.union(*residual).minus(o.preds).minus(i.preds);
            // The filter (built from the outer) passes roughly
            // |outer| / ndv(inner join key) of the inner.
            let pass = (o.card / sel.ndv_max(*jp, i.tables).max(1.0)).clamp(0.01, 1.0);
            let mut out = o.clone();
            out.tables = both;
            out.cols.extend(i.cols.iter().copied());
            out.preds = o.preds.union(i.preds).union(*jp).union(*residual);
            out.order = Vec::new();
            out.paths = Vec::new();
            out.card = o.card * i.card * sel.preds(new_preds, both);
            out.cost = Cost::new(
                o.cost.once + i.cost.once + o.card * ctx.model.hash_cpu,
                o.cost.rescan
                    + i.cost.rescan
                    + i.card * pass * ctx.model.hash_cpu
                    + ctx.model.stream_cpu(out.card, new_preds.len()),
            );
            Ok(out)
        }),
    );

    // (2) The rule text, compiled like any other STAR file.
    extended
        .load_rules(BLOOMJOIN_RULE)
        .expect("extension rule compiles");

    let after = extended.optimize(&query, &config).expect("optimize");
    println!(
        "after extension:  {} (cost {:.0})",
        after.best.op_names().join(" <- "),
        after.best.props.cost.total()
    );
    assert!(after
        .best
        .any(&|n| matches!(&n.op, Lolepop::Ext { name, .. } if name.as_ref() == "BLOOMJOIN")));

    // (3) The run-time routine, registered with the evaluator. (Here the
    // "Bloom filter" is exact — the outer's key set — so results are exact.)
    let mut loader = DatabaseBuilder::new(cat.clone());
    for k in 0..5_000i64 {
        loader
            .insert("R", vec![Value::Int(k), Value::Int(k % 500)])
            .unwrap();
        loader.insert("S", vec![Value::Int(k)]).unwrap();
    }
    let db = loader.build().expect("database");
    let mut executor = Executor::new(&db, &query);
    executor.register_ext(
        "BLOOMJOIN",
        Arc::new(|query, op, inputs, out_schema| {
            let Lolepop::Ext { args, .. } = op else {
                unreachable!()
            };
            let (ExtArg::Preds(jp), ExtArg::Preds(residual)) = (&args[0], &args[1]) else {
                return Err(starqo_exec::ExecError::BadPlan("bad args".into()));
            };
            let (o_schema, o_rows) = &inputs[0];
            let (i_schema, i_rows) = &inputs[1];
            let o_tables = starqo_query::QSet::from_iter(o_schema.iter().map(|c| c.q));
            let mut pairs: Vec<(Scalar, Scalar)> = Vec::new();
            for p in jp.iter() {
                if let PredExpr::Cmp(CmpOp::Eq, l, r) = &query.pred(p).expr {
                    if l.quantifiers().is_subset_of(o_tables) {
                        pairs.push((l.clone(), r.clone()));
                    } else {
                        pairs.push((r.clone(), l.clone()));
                    }
                }
            }
            let bindings = Default::default();
            let key = |schema: &[starqo_query::QCol],
                       row: &starqo_storage::Tuple,
                       exprs: &[&Scalar]|
             -> starqo_exec::Result<Vec<Value>> {
                let view = starqo_exec::scalar::RowView {
                    schema,
                    row,
                    bindings: &bindings,
                };
                exprs
                    .iter()
                    .map(|e| starqo_exec::scalar::eval_scalar(e, &view))
                    .collect()
            };
            let o_exprs: Vec<&Scalar> = pairs.iter().map(|(o, _)| o).collect();
            let i_exprs: Vec<&Scalar> = pairs.iter().map(|(_, i)| i).collect();
            let mut table: std::collections::HashMap<Vec<Value>, Vec<usize>> = Default::default();
            for (idx, o) in o_rows.iter().enumerate() {
                table
                    .entry(key(o_schema, o, &o_exprs)?)
                    .or_default()
                    .push(idx);
            }
            let mut out = Vec::new();
            let all = jp.union(*residual);
            for i in i_rows {
                let k = key(i_schema, i, &i_exprs)?;
                // The filter step: inner tuples missing from the outer's key
                // set are discarded before the join.
                let Some(matches) = table.get(&k) else {
                    continue;
                };
                for oi in matches {
                    let o = &o_rows[*oi];
                    let combined: starqo_storage::Tuple = out_schema
                        .iter()
                        .map(|c| {
                            o_schema
                                .iter()
                                .position(|s| s == c)
                                .map(|p| o.get(p).clone())
                                .or_else(|| {
                                    i_schema
                                        .iter()
                                        .position(|s| s == c)
                                        .map(|p| i.get(p).clone())
                                })
                                .unwrap_or(Value::Null)
                        })
                        .collect();
                    let view = starqo_exec::scalar::RowView {
                        schema: out_schema,
                        row: &combined,
                        bindings: &bindings,
                    };
                    if starqo_exec::scalar::eval_preds(query, all, &view)? {
                        out.push(combined);
                    }
                }
            }
            Ok(out)
        }),
    );
    let result = executor.run(&after.best).expect("execute");
    let reference = reference_eval(&db, &query).expect("reference");
    assert!(rows_equal_multiset(&result.rows, &reference));
    println!(
        "\nexecuted: {} rows, identical to the reference evaluator ✓",
        result.rows.len()
    );
    println!("total engine code modified: none.");
}

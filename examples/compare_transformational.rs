//! The paper's central argument, live: optimize the same query with the
//! STAR engine and with an EXODUS-style transformational search, and compare
//! the work each does.
//!
//! ```sh
//! cargo run --release --example compare_transformational
//! ```

use starqo::prelude::*;
use starqo::workload::{query_shape, synth_catalog, QueryShape, SynthSpec};
use starqo::xform::XformOptimizer;

fn main() {
    let spec = SynthSpec {
        tables: 5,
        card_range: (500, 5_000),
        index_prob: 0.5,
        ..Default::default()
    };
    let cat = synth_catalog(11, &spec);
    let star_opt = Optimizer::new(cat.clone()).expect("rules compile");
    // Match the repertoires: the transformational rule box has NL/MG/HA and
    // inner materialization.
    let star_config = OptConfig::default()
        .enable("hashjoin")
        .enable("force_projection");

    println!(
        "{:>3} {:>9} {:>10} {:>12} {:>10} {:>10} {:>10}",
        "n", "paradigm", "time(ms)", "rule-apps", "plans", "best$", "fixpoint"
    );
    for n in 2..=5usize {
        let query = query_shape(&cat, QueryShape::Chain, n, true);

        let t = std::time::Instant::now();
        let star = star_opt.optimize(&query, &star_config).expect("star");
        let star_ms = t.elapsed().as_secs_f64() * 1e3;
        println!(
            "{n:>3} {:>9} {star_ms:>10.1} {:>12} {:>10} {:>10.0} {:>10}",
            "STAR",
            star.stats.star_refs,
            star.stats.plans_built,
            star.best.props.cost.total(),
            "yes"
        );

        let xf = XformOptimizer::new().with_budget(2_000);
        let t = std::time::Instant::now();
        let xout = xf.optimize(&cat, &query).expect("xform");
        let xf_ms = t.elapsed().as_secs_f64() * 1e3;
        println!(
            "{n:>3} {:>9} {xf_ms:>10.1} {:>12} {:>10} {:>10.0} {:>10}",
            "XFORM",
            xout.stats.match_attempts,
            xout.stats.plans_generated,
            xout.best.props.cost.total(),
            if xout.stats.budget_exhausted {
                "NO"
            } else {
                "yes"
            }
        );
    }
    println!(
        "\nSTAR references expand like a macro dictionary; transformational rules\n\
         pattern-match every node of every plan generated so far — the gap in\n\
         rule applications is the paper's §1/§6 argument, measured."
    );
}

//! Observability tour: optimize and execute a 3-way join with structured
//! tracing attached, then show
//!
//! 1. the rule-firing events behind every operator of the chosen plan,
//! 2. `EXPLAIN ANALYZE` — estimated CARD/COST against actual rows and time,
//! 3. the per-phase timing and counter summary.
//!
//! The full event stream is also written to `target/trace_plan.jsonl` (one
//! JSON object per line) through a [`JsonLinesSink`] — under `target/` so
//! run artifacts never land in the repo root.
//!
//! ```sh
//! cargo run --example trace_plan
//! ```

use std::sync::Arc;

use starqo::prelude::*;
use starqo::trace::TraceSink;

/// Fan one event stream out to two sinks: a JSON-Lines file (the durable
/// artifact) and an in-memory buffer (so this example can query the events
/// afterwards). Any `TraceSink` composes this way.
struct Tee(JsonLinesSink, Arc<MemorySink>);

impl TraceSink for Tee {
    fn emit(&self, event: &TraceEvent) {
        self.0.emit(event);
        self.1.emit(event);
    }

    fn flush(&self) {
        self.0.flush();
    }
}

fn main() {
    // A 3-table schema: customers place orders for items.
    let cat = Arc::new(
        Catalog::builder()
            .site("hq")
            .table("CUSTOMERS", "hq", StorageKind::Heap, 200)
            .column("CID", DataType::Int, Some(200))
            .column("NAME", DataType::Str, None)
            .column("TIER", DataType::Int, Some(4))
            .table("ORDERS", "hq", StorageKind::Heap, 2_000)
            .column("OID", DataType::Int, Some(2_000))
            .column("CID", DataType::Int, Some(200))
            .column("ITEM", DataType::Int, Some(50))
            .table("ITEMS", "hq", StorageKind::Heap, 50)
            .column("ITEM", DataType::Int, Some(50))
            .column("PRICE", DataType::Double, None)
            .index("ORDERS_CID", "ORDERS", &["CID"], false, false)
            .build()
            .expect("catalog"),
    );
    let mut loader = DatabaseBuilder::new(cat.clone());
    for c in 0..200i64 {
        loader
            .insert(
                "CUSTOMERS",
                vec![
                    Value::Int(c),
                    Value::str(format!("cust{c}")),
                    Value::Int(c % 4),
                ],
            )
            .expect("row");
    }
    for o in 0..2_000i64 {
        loader
            .insert(
                "ORDERS",
                vec![Value::Int(o), Value::Int(o % 200), Value::Int(o % 50)],
            )
            .expect("row");
    }
    for i in 0..50i64 {
        loader
            .insert("ITEMS", vec![Value::Int(i), Value::Double(i as f64 * 2.5)])
            .expect("row");
    }
    let db = loader.build().expect("database");

    let mut metrics = MetricsRegistry::new();
    let query = metrics
        .time(Phase::Parse, || {
            parse_query(
                &cat,
                "SELECT C.NAME, I.PRICE FROM CUSTOMERS C, ORDERS O, ITEMS I \
                 WHERE C.CID = O.CID AND O.ITEM = I.ITEM AND C.TIER = 1",
            )
        })
        .expect("query");

    // Attach the tracer: everything the engine, plan table, Glue, and
    // executor see goes to target/trace_plan.jsonl AND an in-memory buffer.
    let trace_path = std::path::Path::new("target").join("trace_plan.jsonl");
    std::fs::create_dir_all("target").expect("target dir");
    let mem = Arc::new(MemorySink::new());
    let sink = Tee(
        JsonLinesSink::to_file(&trace_path).expect("trace file"),
        mem.clone(),
    );
    let tracer = Tracer::new(sink);

    let optimizer = Optimizer::new(cat.clone()).expect("rules compile");
    let config = OptConfig::default().enable("hashjoin");
    let optimized = optimizer
        .optimize_traced(&query, &config, tracer.clone())
        .expect("optimize");

    // ── 1. rule firings behind the chosen plan ─────────────────────────
    // Each operator of the best plan was produced by one STAR alternative
    // (or by Glue); show that origin next to the matching `alt_fired` event
    // from the trace.
    println!("== rule firings behind the chosen plan ==");
    let events = mem.events();
    let mut nodes = Vec::new();
    optimized
        .best
        .visit(&mut |n| nodes.push((n.op.name(), n.fingerprint())));
    for (op, fp) in nodes {
        let origin = optimized
            .provenance
            .get(&fp)
            .map(String::as_str)
            .unwrap_or("(driver)");
        let fired = events
            .iter()
            .find(|e| match e {
                TraceEvent::AltFired { star, alt, .. } => origin == format!("{star}[alt {alt}]"),
                TraceEvent::GlueRef { .. } => origin == "Glue",
                _ => false,
            })
            .map(|e| e.to_json())
            .unwrap_or_default();
        println!("  {op:<18} <= {origin:<22} {fired}");
    }

    // ── 2. execute with per-node actuals, then EXPLAIN ANALYZE ─────────
    let mut executor = Executor::new(&db, &query);
    executor.set_tracer(tracer.clone());
    executor.enable_node_stats();
    let result = metrics
        .time(Phase::Execute, || executor.run(&optimized.best))
        .expect("execute");
    println!(
        "\n== EXPLAIN ANALYZE ({} result rows) ==",
        result.rows.len()
    );
    let explain = Explain::new(&cat, &query);
    print!(
        "{}",
        explain.analyze(&optimized.best, executor.node_actuals())
    );

    // ── 3. the phase-timing and counter summary ────────────────────────
    let mut summary = optimized.metrics.clone();
    summary.absorb(&metrics.summary());
    println!("\n== phases & counters ==");
    print!("{}", summary.render());

    tracer.flush();
    println!(
        "\nfull event stream: {} ({} events)",
        trace_path.display(),
        mem.events().len()
    );
}

//! Reproduce the paper's Figure 1: the DEPT ⋈ EMP query evaluation plan —
//! a sort-merge join whose outer is `SORT(ACCESS(DEPT, {DNO, MGR},
//! {MGR='Haas'}), DNO)` and whose inner is `GET(ACCESS(Index on EMP.DNO,
//! {TID, DNO}, φ), EMP, {NAME, ADDRESS}, φ)` — straight out of the rules.
//!
//! ```sh
//! cargo run --example figure1_dept_emp
//! ```

use starqo::prelude::*;
use starqo::workload::{dept_emp_catalog, dept_emp_database, dept_emp_query};

fn main() {
    let cat = dept_emp_catalog(false, 10_000);
    let query = dept_emp_query(&cat);
    let optimizer = Optimizer::new(cat.clone()).expect("rules compile");

    // Keep every plan Glue finds satisfying, so the whole alternative space
    // is visible — Figure 1's plan is one of them.
    let config = OptConfig {
        glue_keep_all: true,
        ..Default::default()
    };
    let optimized = optimizer.optimize(&query, &config).expect("optimize");

    let explain = Explain::new(&cat, &query);
    println!(
        "All {} alternatives for the full query:\n",
        optimized.root_alternatives.len()
    );
    for (i, plan) in optimized.root_alternatives.iter().enumerate() {
        println!(
            "--- alternative {} (cost {:.1}) ---",
            i + 1,
            plan.props.cost.total()
        );
        println!("{}", explain.tree(plan));
    }

    let figure1 = optimized
        .root_alternatives
        .iter()
        .find(|p| {
            p.any(&|n| {
                matches!(
                    n.op,
                    Lolepop::Join {
                        flavor: JoinFlavor::MG,
                        ..
                    }
                )
            }) && p.any(&|n| matches!(n.op, Lolepop::Sort { .. }))
                && p.any(&|n| matches!(n.op, Lolepop::Get { .. }))
        })
        .expect("the Figure 1 plan is generated");
    println!("=== Figure 1, functional notation (§2.1) ===");
    println!("{}\n", explain.functional(figure1));
    println!("=== Figure 1, property vector of the root (Figure 2 style) ===");
    println!("{}", explain.property_vector(figure1));

    // Execute it for real.
    let db = dept_emp_database(cat);
    let mut executor = Executor::new(&db, &query);
    let result = executor.run(figure1).expect("figure-1 plan executes");
    println!("Figure 1 plan executed: {} rows.", result.rows.len());
}
